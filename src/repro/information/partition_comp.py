"""The information-theoretic PartitionComp experiment (Theorem 4.5).

Hard distribution mu: P_A uniform over all B_n set partitions of [n],
P_B fixed to the finest partition (1)(2)...(n). Then P_A ∨ P_B = P_A, so
any correct protocol transcript determines P_A -- forcing

    |Pi| >= H(Pi(P_A, P_B)) >= I(P_A; Pi) = H(P_A) - H(P_A | Pi)
         >= (1 - eps) * H(P_A) = (1 - eps) * log2 B_n = Omega(n log n).

This module evaluates every quantity in that chain *exactly* on concrete
protocols: transcripts are enumerated over the full support of mu, the
joint distribution of (P_A, Pi) is formed, and entropies are computed from
it. Combined with the Section 4.3 simulation (t-round BCC algorithm =>
O(t n)-bit protocol), the measured information yields the finite-n version
of the Omega(log n) round bound for ConnectedComponents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.information.entropy import (
    conditional_entropy,
    entropy,
    joint_from_function,
    marginal_x,
    marginal_y,
    mutual_information,
    uniform_distribution,
)
from repro.partitions.bell import bell_number
from repro.partitions.enumeration import enumerate_partitions
from repro.partitions.set_partition import SetPartition
from repro.twoparty.protocol import TwoPartyProtocol


@dataclass(frozen=True)
class PartitionCompReport:
    """All quantities of the Theorem 4.5 chain, exactly evaluated."""

    n: int
    input_entropy: float  # H(P_A) = log2 B_n
    transcript_entropy: float  # H(Pi)
    residual_entropy: float  # H(P_A | Pi)
    information: float  # I(P_A; Pi)
    max_transcript_bits: int  # |Pi|
    error_rate: float  # mu-fraction of inputs answered incorrectly

    def chain_holds(self, tolerance: float = 1e-9) -> bool:
        """The inequality chain |Pi| >= H(Pi) >= I >= H(P_A) - H(P_A|Pi)."""
        return (
            self.max_transcript_bits + tolerance >= self.transcript_entropy
            and self.transcript_entropy + tolerance >= self.information
            and abs(
                self.information - (self.input_entropy - self.residual_entropy)
            ) < 1e-6
        )


def hard_distribution(n: int) -> Dict[SetPartition, float]:
    """Uniform over all B_n partitions (Alice's marginal under mu)."""
    return uniform_distribution(enumerate_partitions(n))


def evaluate_protocol(protocol: TwoPartyProtocol, n: int) -> PartitionCompReport:
    """Run a PartitionComp protocol over the entire hard distribution and
    evaluate the Theorem 4.5 quantities exactly."""
    pb = SetPartition.finest(n)
    x_dist = hard_distribution(n)

    transcripts: Dict[SetPartition, str] = {}
    max_bits = 0
    errors = 0.0
    for pa, weight in x_dist.items():
        result = protocol.run(pa, pb)
        transcripts[pa] = result.transcript_string()
        max_bits = max(max_bits, result.total_bits)
        if result.bob_output != pa or result.alice_output != pa:
            errors += weight

    joint = joint_from_function(x_dist, lambda pa: transcripts[pa])
    return PartitionCompReport(
        n=n,
        input_entropy=entropy(marginal_x(joint)),
        transcript_entropy=entropy(marginal_y(joint)),
        residual_entropy=conditional_entropy(joint),
        information=mutual_information(joint),
        max_transcript_bits=max_bits,
        error_rate=errors,
    )


def information_lower_bound(n: int, error_rate: float) -> float:
    """The bound of Theorem 4.5's proof: I >= (1 - eps) * H(P_A).

    (The proof bounds H(P_A | Pi) <= eps * H(P_A): conditioned on a
    correct transcript the residual entropy is zero, and erring
    transcripts carry at most eps of the mass.)
    """
    return (1.0 - error_rate) * math.log2(bell_number(n))


def implied_round_lower_bound(n: int, information_bits: float) -> float:
    """Rounds >= I / (bits per simulated round) via the Section 4.3
    simulation of a KT-1 BCC(1) ConnectedComponents algorithm, which
    costs 2 * 4n bits per round on G(P_A, P_B)."""
    return information_bits / (8 * n)
