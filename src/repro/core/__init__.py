"""BCC(b) simulator core: model, instances, algorithms, round engine."""

from repro.core.algorithm import (
    NO,
    YES,
    AlgorithmFactory,
    ConstantAlgorithm,
    FunctionalAlgorithm,
    NodeAlgorithm,
    SilentAlgorithm,
)
from repro.core.decision import (
    ErrorEstimate,
    decision_of_run,
    distributional_error,
    labelling_error,
    per_input_error,
    system_decision,
)
from repro.core.instance import BCCInstance, IndexEdge
from repro.core.knowledge import InitialKnowledge
from repro.core.model import BCC1_KT0, BCC1_KT1, SILENT, SILENT_CHAR, BCCModel, message_to_char
from repro.core.randomness import PublicCoin
from repro.core.range_model import (
    RangeModel,
    RangeNodeAlgorithm,
    RangeRunResult,
    RangeSimulator,
)
from repro.core.serialization import (
    instance_from_dict,
    instance_from_json,
    instance_to_dict,
    instance_to_json,
)
from repro.core.simulator import RunResult, Simulator
from repro.core.tracing import first_divergence, render_diff, render_run, render_vertex
from repro.core.transcript import RoundRecord, Transcript, sent_label

__all__ = [
    "AlgorithmFactory",
    "BCC1_KT0",
    "BCC1_KT1",
    "BCCInstance",
    "BCCModel",
    "ConstantAlgorithm",
    "ErrorEstimate",
    "FunctionalAlgorithm",
    "IndexEdge",
    "InitialKnowledge",
    "NO",
    "NodeAlgorithm",
    "PublicCoin",
    "RangeModel",
    "RangeNodeAlgorithm",
    "RangeRunResult",
    "RangeSimulator",
    "RoundRecord",
    "RunResult",
    "SILENT",
    "SILENT_CHAR",
    "SilentAlgorithm",
    "Simulator",
    "Transcript",
    "YES",
    "decision_of_run",
    "distributional_error",
    "first_divergence",
    "instance_from_dict",
    "instance_from_json",
    "instance_to_dict",
    "instance_to_json",
    "labelling_error",
    "message_to_char",
    "per_input_error",
    "render_diff",
    "render_run",
    "render_vertex",
    "sent_label",
    "system_decision",
]
