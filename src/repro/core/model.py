"""Model configuration for the b-bit Broadcast Congested Clique.

A :class:`BCCModel` pins down the two parameters the paper varies:

* ``bandwidth`` -- the number of bits each vertex may broadcast per round
  (``b`` in the paper's BCC(b); the lower bounds are stated for ``b = 1``).
* ``kt`` -- the initial-knowledge level, 0 or 1, using the KT-0 / KT-1
  terminology of Awerbuch et al. In KT-0 the n-1 communication ports at a
  vertex are arbitrarily numbered 1..n-1 and carry no information about the
  vertex at the other end; in KT-1 every port is labelled with the ID of the
  vertex at the other end and every vertex knows all n IDs.

Messages are strings over ``{'0', '1'}`` of length at most ``bandwidth``;
the empty string encodes silence (the paper's ``⊥`` character). For
``bandwidth == 1`` this gives exactly the three-character alphabet
``{0, 1, ⊥}`` used in the paper's transcripts and edge labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgorithmContractError

#: The message that encodes silence (the paper's bottom character).
SILENT = ""

#: Printable form of the silence character, used in labels and reports.
SILENT_CHAR = "⊥"  # ⊥


@dataclass(frozen=True)
class BCCModel:
    """An instantiation of the BCC(b) model at a given knowledge level."""

    bandwidth: int = 1
    kt: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.kt not in (0, 1):
            raise ValueError(f"kt must be 0 or 1, got {self.kt}")

    def validate_message(self, message: str) -> str:
        """Check a broadcast message against the model and return it.

        Raises :class:`AlgorithmContractError` if the message is not a
        0/1-string of length at most ``bandwidth``.
        """
        if not isinstance(message, str):
            raise AlgorithmContractError(
                f"broadcast messages must be str, got {type(message).__name__}"
            )
        if len(message) > self.bandwidth:
            raise AlgorithmContractError(
                f"message {message!r} exceeds bandwidth b={self.bandwidth}"
            )
        if any(c not in "01" for c in message):
            raise AlgorithmContractError(
                f"message {message!r} contains characters outside {{0, 1}}"
            )
        return message

    def alphabet_size(self) -> int:
        """Number of distinct per-round messages, counting silence.

        For b = 1 this is 3 (the ``{0, 1, ⊥}`` alphabet); in general it is
        ``2^(b+1) - 1`` (all 0/1 strings of length 0..b).
        """
        return 2 ** (self.bandwidth + 1) - 1


def message_to_char(message: str) -> str:
    """Render a 1-bit message as one of '0', '1', or the ⊥ character."""
    return SILENT_CHAR if message == SILENT else message


def message_bits(message: str) -> int:
    """Channel cost of one broadcast, in bits.

    Silence costs 0 whether it appears in its on-channel form (the empty
    string) or its rendered form (the ⊥ glyph) -- a crashed vertex's
    forced silences must never be charged the width of the character
    used to *display* them.
    """
    return 0 if message == SILENT or message == SILENT_CHAR else len(message)


#: The canonical model in which all of the paper's lower bounds are stated.
BCC1_KT0 = BCCModel(bandwidth=1, kt=0)
BCC1_KT1 = BCCModel(bandwidth=1, kt=1)
