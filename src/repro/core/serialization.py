"""Instance (de)serialization to plain JSON-compatible dictionaries.

Lets downstream users persist instance corpora (e.g. a hard-distribution
sweep) and reload them elsewhere. The format is explicit and versioned:

    {
      "format": "repro-bcc-instance",
      "version": 1,
      "kt": 0,
      "ids": [...],
      "peers": [{"<port>": <peer index>, ...}, ...],
      "input_edges": [[u, v], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.instance import BCCInstance
from repro.errors import InvalidInstanceError

FORMAT_NAME = "repro-bcc-instance"
FORMAT_VERSION = 1


def instance_to_dict(instance: BCCInstance) -> Dict[str, Any]:
    """A JSON-compatible description of an instance."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kt": instance.kt,
        "ids": list(instance.ids),
        "peers": [
            {str(port): instance.peer_of_port(v, port) for port in instance.port_labels(v)}
            for v in range(instance.n)
        ],
        "input_edges": [list(e) for e in sorted(instance.input_edges)],
    }


def instance_from_dict(data: Dict[str, Any]) -> BCCInstance:
    """Inverse of :func:`instance_to_dict`, fully re-validated."""
    if data.get("format") != FORMAT_NAME:
        raise InvalidInstanceError(f"not a {FORMAT_NAME} document")
    if data.get("version") != FORMAT_VERSION:
        raise InvalidInstanceError(f"unsupported version {data.get('version')!r}")
    peers = [
        {int(port): int(peer) for port, peer in mapping.items()}
        for mapping in data["peers"]
    ]
    return BCCInstance(
        kt=int(data["kt"]),
        ids=[int(x) for x in data["ids"]],
        peers=peers,
        input_edges=[(int(u), int(v)) for u, v in data["input_edges"]],
    )


def instance_to_json(instance: BCCInstance, indent: int = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(instance_to_dict(instance), indent=indent, sort_keys=True)


def instance_from_json(text: str) -> BCCInstance:
    """Parse a JSON string produced by :func:`instance_to_json`."""
    return instance_from_dict(json.loads(text))
