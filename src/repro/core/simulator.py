"""The synchronous round engine for BCC(b) executions.

The simulator is the paper's model made operational: a complete network of
``n`` vertices, each broadcasting at most ``b`` bits per round, with every
broadcast delivered to the other ``n - 1`` vertices through their port to
the sender. It records full per-vertex transcripts so lower-bound machinery
(active edges, edge labels, indistinguishability checks) can be computed on
real executions rather than abstract ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.algorithm import AlgorithmFactory, NodeAlgorithm
from repro.core.instance import BCCInstance
from repro.core.knowledge import InitialKnowledge
from repro.core.model import BCCModel
from repro.core.randomness import PublicCoin
from repro.core.transcript import RoundRecord, Transcript
from repro.costs.ledger import get_ledger, run_cost_summary
from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.spans import get_recorder
from repro.obs.stream import get_bus

if TYPE_CHECKING:  # imported lazily to keep core free of resilience deps
    from repro.net.plan import NetworkEvent, NetworkPlan
    from repro.resilience.faults import FaultEvent, FaultPlan


@dataclass
class RunResult:
    """Everything observable about one execution.

    Attributes
    ----------
    instance:
        The instance that was executed.
    outputs:
        ``outputs[v]`` is vertex index v's output.
    transcripts:
        ``transcripts[v]`` is vertex index v's full transcript.
    rounds_executed:
        Number of rounds actually run (may be fewer than requested when
        every vertex reported ``finished()``).
    broadcast_history:
        ``broadcast_history[t - 1][v]`` is the message vertex v broadcast in
        round t. This global view belongs to the simulator/analyst, never to
        the nodes. Under fault injection this is the *on-channel* view: a
        crashed vertex's entry is the empty broadcast from its crash round
        onward, while delivery faults (bit flips, erasures) appear only in
        the per-receiver transcripts -- exactly the information asymmetry
        an adversarial channel creates.
    fault_events:
        The faults injected during this run (empty for clean runs), in
        injection order. See :mod:`repro.resilience.faults`.
    crashed_vertices:
        Vertex indices crash-stopped at any point during the run.
    failed_vertices:
        Vertex indices whose node algorithm raised while processing
        fault-corrupted input; such nodes fail-stop (silent forever,
        output ``None``). Always empty for clean runs, where node
        exceptions propagate as they did before fault injection existed.
    cost_summary:
        Per-run communication-cost record (total bits, rounds, and a
        per-vertex bits/silent-rounds breakdown -- see
        :func:`repro.costs.ledger.run_cost_summary`), populated only
        when a :class:`~repro.costs.ledger.CostLedger` was active for
        the run; ``None`` otherwise, keeping the disabled path free.
    network_events:
        Delivery anomalies (delays, duplicates, reorders, end-of-run
        drops) injected by a non-pristine
        :class:`~repro.net.NetworkPlan`, in injection order; empty for
        clean and faults-only runs.
    delivery_stats:
        Per-edge delivery counters for edges that carried traffic under
        a non-pristine network plan (see
        :meth:`repro.net.Channel.stats`); empty otherwise.
    """

    instance: BCCInstance
    outputs: Tuple[Any, ...]
    transcripts: Tuple[Transcript, ...]
    rounds_executed: int
    broadcast_history: Tuple[Tuple[str, ...], ...]
    all_finished: bool = False
    fault_events: Tuple["FaultEvent", ...] = ()
    crashed_vertices: Tuple[int, ...] = ()
    failed_vertices: Tuple[int, ...] = ()
    cost_summary: Optional[Dict[str, Any]] = None
    network_events: Tuple["NetworkEvent", ...] = ()
    delivery_stats: Tuple[Dict[str, int], ...] = ()

    def sent_sequence(self, v: int) -> Tuple[str, ...]:
        """The message sequence vertex index ``v`` broadcast."""
        return self.transcripts[v].sent_sequence()

    def total_bits_broadcast(self) -> int:
        """Total bits broadcast by all vertices over the whole run."""
        return sum(t.bits_sent() for t in self.transcripts)

    def state_view(self, v: int, knowledge: InitialKnowledge, t: Optional[int] = None) -> tuple:
        """Hashable state (knowledge + t-round transcript prefix) of vertex v."""
        rounds = self.rounds_executed if t is None else t
        return (knowledge.comparable_view(), self.transcripts[v].prefix_comparable(rounds))


class Simulator:
    """Runs node algorithms on BCC instances under a fixed model.

    Observability is opt-in and costs one ``None`` check per run when
    disabled: pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) or
    install one process-wide via :func:`repro.obs.use_registry` to record
    per-round wall time, messages validated, bits broadcast, and the
    early-stop round; pass ``trace`` (a :class:`repro.obs.RunTrace`) to
    stream structured per-round JSONL events.

    Fault injection is likewise opt-in and costs one ``None`` check per
    round when disabled: pass ``faults`` (a
    :class:`repro.resilience.FaultPlan`) here or per-run to execute under
    a deterministic adversarial channel (bit flips, erasures, crash-stops
    applied between broadcast and delivery). Adversarial runs route
    delivery through a :class:`repro.net.NetworkManager`, so ``faults``
    is one pluggable delivery policy among several: pass ``network`` (a
    :class:`repro.net.NetworkPlan`) to add per-edge delay, duplication,
    and deterministic reordering on top of -- or instead of -- faults.

    Cost accounting follows the same contract: pass ``costs`` (a
    :class:`repro.costs.CostLedger`) or install one process-wide via
    :func:`repro.costs.use_ledger` to attribute every broadcast to its
    (vertex, round, phase) cell and to populate
    ``RunResult.cost_summary`` (mirrored as the trace-v4
    ``cost_summary`` event when a trace is active).

    Live progress streaming is the same contract once more: install an
    :class:`repro.obs.EventBus` via :func:`repro.obs.use_bus` and the
    run publishes ``simulator.run_start`` / ``simulator.round`` /
    ``simulator.run_end`` events as they happen; with no bus installed
    the cost is a single ``None`` check and no payload is built.
    """

    def __init__(
        self,
        model: BCCModel,
        metrics=None,
        trace=None,
        faults: Optional["FaultPlan"] = None,
        costs=None,
        network: Optional["NetworkPlan"] = None,
    ):
        self._model = model
        self._metrics = metrics
        self._trace = trace
        self._faults = faults
        self._costs = costs
        self._network = network

    @property
    def model(self) -> BCCModel:
        return self._model

    def initial_knowledge(self, instance: BCCInstance, v: int, coin: PublicCoin) -> InitialKnowledge:
        """Construct the time-0 knowledge of vertex index ``v``."""
        return InitialKnowledge(
            vertex_id=instance.vertex_id(v),
            n=instance.n,
            bandwidth=self._model.bandwidth,
            kt=instance.kt,
            ports=instance.port_labels(v),
            input_ports=instance.input_ports(v),
            all_ids=tuple(sorted(instance.ids)) if instance.kt == 1 else None,
            coin=coin,
        )

    def run(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        rounds: int,
        coin: Optional[PublicCoin] = None,
        faults: Optional["FaultPlan"] = None,
        network: Optional["NetworkPlan"] = None,
        session=None,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds of the algorithm.

        Stops early after any round in which every vertex reports
        ``finished()``. The same ``coin`` object is handed to every vertex
        (the public-coin model); omit it for a fixed default seed.

        ``faults`` (default: the plan given at construction, usually None)
        runs the execution under a deterministic adversarial channel: the
        plan is applied between broadcast and delivery each round, so
        per-receiver views can diverge. With no plan the clean path is a
        single ``None`` check per round.

        ``network`` (default: the plan given at construction) routes
        delivery through per-edge :class:`repro.net.Channel` objects --
        seeded delay/duplication/reordering composing with ``faults``. A
        network plan may carry its own fault plan; an explicit ``faults``
        argument wins when both name one.

        ``session`` (a :class:`repro.replay.SessionStore`) records every
        round -- broadcasts, per-vertex round digests, fault and delivery
        events, RNG state transitions -- for later replay/rewind. Like the
        other hooks it costs one ``None`` check per round when absent.
        """
        if instance.kt != self._model.kt:
            raise SimulationError(
                f"instance knowledge level KT-{instance.kt} does not match "
                f"model KT-{self._model.kt}"
            )
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        the_coin = coin if coin is not None else PublicCoin()
        plan = faults if faults is not None else self._faults
        net_plan = network if network is not None else self._network
        if plan is None and net_plan is not None:
            plan = net_plan.faults

        # Resolve observability once per run; ``None`` means the disabled
        # fast path (a single extra truthiness check per round). The span
        # recorder follows the same discipline as the metrics registry
        # and the fault hook: one module-level lookup per run, then only
        # local ``is not None`` checks on the hot path.
        metrics = self._metrics if self._metrics is not None else get_registry()
        trace = self._trace
        ledger = self._costs if self._costs is not None else get_ledger()
        bus = get_bus()
        recorder = get_recorder()
        if recorder is None:
            return self._execute(
                instance, factory, rounds, the_coin, plan, net_plan, session,
                metrics, trace, None, ledger, bus,
            )
        run_span = recorder.start(
            "simulator.run",
            n=instance.n,
            kt=instance.kt,
            bandwidth=self._model.bandwidth,
            rounds_budget=rounds,
            faulted=plan is not None,
        )
        try:
            result = self._execute(
                instance, factory, rounds, the_coin, plan, net_plan, session,
                metrics, trace, recorder, ledger, bus,
            )
            run_span.set_attr("rounds_executed", result.rounds_executed)
            return result
        finally:
            # Lenient finish: on an exception mid-round this also closes
            # any still-open round/broadcast/deliver descendants, so the
            # next run's spans cannot nest under a stale parent.
            recorder.finish(run_span)

    def _execute(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        rounds: int,
        the_coin: PublicCoin,
        plan: Optional["FaultPlan"],
        net_plan: Optional["NetworkPlan"],
        session,
        metrics,
        trace,
        recorder,
        ledger,
        bus=None,
    ) -> RunResult:
        """The round engine proper (observability already resolved).

        Adversarial executions (any fault or network plan) route every
        delivery through a :class:`repro.net.NetworkManager`; a bare
        fault plan rides in a *pristine* network plan, whose manager
        allocates no channels and adds no RNG draws, keeping faults-only
        runs bit-identical to the pre-channel-layer engine.
        """
        n = instance.n
        if net_plan is not None:
            net_run = net_plan.begin_run(n, plan)
        elif plan is not None:
            from repro.net.plan import NetworkPlan

            net_plan = NetworkPlan()
            net_run = net_plan.begin_run(n, plan)
        else:
            net_run = None
        fault_run = net_run.fault_run if net_run is not None else None
        networked = net_plan is not None and not net_plan.is_pristine
        # The live event bus rides the same observing branch as metrics
        # and traces: with no bus installed, nothing below constructs a
        # payload -- the disabled path stays one ``is not None`` check.
        observing = metrics is not None or trace is not None or bus is not None
        if bus is not None:
            bus.publish(
                "simulator.run_start",
                {"n": n, "kt": instance.kt, "rounds_budget": rounds},
            )
        if trace is not None:
            start_fields: Dict[str, Any] = {
                "n": n,
                "kt": instance.kt,
                "bandwidth": self._model.bandwidth,
                "rounds_budget": rounds,
            }
            if fault_run is not None:
                start_fields["fault_seed"] = plan.seed
                start_fields["fault_rates"] = {
                    "bit_flip": plan.bit_flip_rate,
                    "erasure": plan.erasure_rate,
                    "crash": plan.crash_rate,
                }
            if networked:
                start_fields["network"] = {
                    "seed": net_plan.seed,
                    "max_delay": net_plan.max_delay,
                    "duplicate_rate": net_plan.duplicate_rate,
                    "reorder": net_plan.reorder,
                }
            trace.emit("run_start", **start_fields)

        nodes: List[NodeAlgorithm] = []
        for v in range(n):
            node = factory()
            node.setup(self.initial_knowledge(instance, v, the_coin))
            nodes.append(node)

        transcripts = [Transcript() for _ in range(n)]
        history: List[Tuple[str, ...]] = []

        executed = 0
        total_bits = 0
        fault_cursor = 0
        net_cursor = 0
        session_fault_cursor = 0
        session_net_cursor = 0
        failed_nodes: set = set()
        done = all(node.finished() for node in nodes)
        for t in range(1, rounds + 1):
            if done:
                break
            round_start = time.perf_counter() if observing else 0.0
            round_span = (
                recorder.start("simulator.round", t=t) if recorder is not None else None
            )
            if net_run is None:
                # The clean hot path: identical to the pre-resilience engine
                # behind local ``is not None`` checks.
                if recorder is not None:
                    phase_span = recorder.start("simulator.broadcast", t=t)
                messages = tuple(
                    self._model.validate_message(nodes[v].broadcast(t)) for v in range(n)
                )
                history.append(messages)
                if recorder is not None:
                    recorder.finish(phase_span)
                    phase_span = recorder.start("simulator.deliver", t=t)
                for v in range(n):
                    received: Dict[int, str] = {}
                    for u in range(n):
                        if u == v:
                            continue
                        received[instance.port_to_peer(v, u)] = messages[u]
                    nodes[v].receive(t, received)
                    transcripts[v].append(RoundRecord(sent=messages[v], received=received))
                if recorder is not None:
                    recorder.finish(phase_span)
                executed = t
                done = all(node.finished() for node in nodes)
            else:
                # Adversarial channel. A node choking on corrupted input is
                # part of the degradation being measured, not a simulator
                # bug: any exception a node raises while computing against
                # faulty messages fail-stops that node (silent forever,
                # output None) instead of killing the execution.
                if recorder is not None:
                    phase_span = recorder.start("simulator.broadcast", t=t)
                collected: List[str] = []
                for v in range(n):
                    if v in failed_nodes:
                        collected.append("")
                        continue
                    try:
                        collected.append(
                            self._model.validate_message(nodes[v].broadcast(t))
                        )
                    except Exception:
                        failed_nodes.add(v)
                        collected.append("")
                # Sender-side faults (crash-stop) first, then the per-edge
                # delivery pipeline (fault filter, then channel) so
                # port-level views can diverge.
                messages = net_run.filter_broadcasts(t, tuple(collected))
                history.append(messages)
                if recorder is not None:
                    recorder.finish(phase_span)
                    phase_span = recorder.start("simulator.deliver", t=t)
                for v in range(n):
                    received = {}
                    for u in range(n):
                        if u == v:
                            continue
                        received[instance.port_to_peer(v, u)] = (
                            net_run.deliver(t, u, v, messages[u])
                        )
                    if v not in failed_nodes:
                        try:
                            nodes[v].receive(t, received)
                        except Exception:
                            failed_nodes.add(v)
                    transcripts[v].append(RoundRecord(sent=messages[v], received=received))
                if recorder is not None:
                    recorder.finish(phase_span)
                executed = t
                done = True
                for v in range(n):
                    if v in failed_nodes:
                        continue  # a failed node makes no further progress
                    try:
                        if not nodes[v].finished():
                            done = False
                    except Exception:
                        failed_nodes.add(v)
            if ledger is not None:
                ledger.record_round(t, messages)
            if observing:
                round_seconds = time.perf_counter() - round_start
                round_bits = sum(len(m) for m in messages)
                total_bits += round_bits
                round_faults = 0
                round_deliveries = 0
                if fault_run is not None:
                    round_faults = fault_run.faults_injected - fault_cursor
                if net_run is not None:
                    round_deliveries = net_run.events_injected - net_cursor
                if metrics is not None:
                    metrics.counter("simulator.rounds_executed").inc()
                    metrics.counter("simulator.messages_validated").inc(n)
                    metrics.counter("simulator.bits_broadcast").inc(round_bits)
                    metrics.histogram("simulator.round_seconds").observe(round_seconds)
                    if round_faults:
                        metrics.counter("simulator.faults_injected").inc(round_faults)
                    if round_deliveries:
                        metrics.counter("simulator.delivery_anomalies").inc(
                            round_deliveries
                        )
                if bus is not None:
                    bus.publish(
                        "simulator.round",
                        {
                            "t": t,
                            "bits": round_bits,
                            "wall_seconds": round_seconds,
                            "faults": round_faults,
                            "deliveries": round_deliveries,
                            "all_finished": done,
                        },
                    )
                if trace is not None:
                    if fault_run is not None:
                        for event in fault_run.events[fault_cursor:]:
                            trace.emit("fault", **event.as_dict())
                    if round_deliveries:
                        for event in net_run.events[net_cursor:]:
                            trace.emit("delivery", **event.as_dict())
                    trace.emit(
                        "round",
                        t=t,
                        bits=round_bits,
                        wall_seconds=round_seconds,
                        all_finished=done,
                        **({"faults": round_faults} if fault_run is not None else {}),
                    )
                if fault_run is not None:
                    fault_cursor = fault_run.faults_injected
                if net_run is not None:
                    net_cursor = net_run.events_injected
            if session is not None:
                session.record_round(
                    t,
                    messages,
                    transcripts,
                    all_finished=done,
                    fault_events=(
                        fault_run.events[session_fault_cursor:]
                        if fault_run is not None
                        else ()
                    ),
                    net_events=(
                        net_run.events[session_net_cursor:]
                        if net_run is not None
                        else ()
                    ),
                    fault_rng=(
                        fault_run.rng_digest() if fault_run is not None else None
                    ),
                    net_rng=net_run.rng_digest() if net_run is not None else None,
                )
                if fault_run is not None:
                    session_fault_cursor = fault_run.faults_injected
                if net_run is not None:
                    session_net_cursor = net_run.events_injected
            if round_span is not None:
                recorder.finish(round_span)

        if net_run is not None:
            # Close every channel: copies still in flight become recorded
            # "dropped" delivery events (a no-op for pristine managers).
            net_run.finish(executed)
            if trace is not None and net_run.events_injected > net_cursor:
                for event in net_run.events[net_cursor:]:
                    trace.emit("delivery", **event.as_dict())
        cost_summary = (
            run_cost_summary(transcripts, executed) if ledger is not None else None
        )
        if metrics is not None:
            metrics.counter("simulator.runs").inc()
            if done and executed < rounds:
                metrics.gauge("simulator.early_stop_round").set(executed)
                metrics.counter("simulator.early_stops").inc()
        if bus is not None:
            bus.publish(
                "simulator.run_end",
                {
                    "rounds_executed": executed,
                    "all_finished": done,
                    "total_bits": total_bits,
                },
            )
        if trace is not None:
            if cost_summary is not None:
                trace.emit("cost_summary", **cost_summary)
            end_fields: Dict[str, Any] = {
                "rounds_executed": executed,
                "all_finished": done,
                "total_bits": total_bits,
            }
            if fault_run is not None:
                end_fields["faults_injected"] = fault_run.faults_injected
                end_fields["crashed_vertices"] = fault_run.crashed_vertices
                end_fields["failed_vertices"] = tuple(sorted(failed_nodes))
            if networked:
                end_fields["delivery_anomalies"] = net_run.events_injected
            trace.emit("run_end", **end_fields)

        if net_run is None:
            outputs = tuple(nodes[v].output() for v in range(n))
        else:
            collected_out: List[Any] = []
            for v in range(n):
                if v in failed_nodes:
                    collected_out.append(None)
                    continue
                try:
                    collected_out.append(nodes[v].output())
                except Exception:
                    failed_nodes.add(v)
                    collected_out.append(None)
            outputs = tuple(collected_out)
        return RunResult(
            instance=instance,
            outputs=outputs,
            transcripts=tuple(transcripts),
            rounds_executed=executed,
            broadcast_history=tuple(history),
            all_finished=done,
            fault_events=tuple(fault_run.events) if fault_run is not None else (),
            crashed_vertices=fault_run.crashed_vertices if fault_run is not None else (),
            failed_vertices=tuple(sorted(failed_nodes)),
            cost_summary=cost_summary,
            network_events=tuple(net_run.events) if net_run is not None else (),
            delivery_stats=(
                tuple(net_run.delivery_stats()) if net_run is not None else ()
            ),
        )

    def run_until_done(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        max_rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RunResult:
        """Run until every vertex is finished, or raise after ``max_rounds``.

        Unlike :meth:`run`, exhausting the budget without global completion
        is treated as an error; use this for upper-bound algorithms whose
        round complexity is itself the measured quantity.
        """
        result = self.run(instance, factory, max_rounds, coin)
        if not result.all_finished:
            raise SimulationError(
                f"algorithm did not finish within {max_rounds} rounds"
            )
        return result
