"""The synchronous round engine for BCC(b) executions.

The simulator is the paper's model made operational: a complete network of
``n`` vertices, each broadcasting at most ``b`` bits per round, with every
broadcast delivered to the other ``n - 1`` vertices through their port to
the sender. It records full per-vertex transcripts so lower-bound machinery
(active edges, edge labels, indistinguishability checks) can be computed on
real executions rather than abstract ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.algorithm import AlgorithmFactory, NodeAlgorithm
from repro.core.instance import BCCInstance
from repro.core.knowledge import InitialKnowledge
from repro.core.model import BCCModel
from repro.core.randomness import PublicCoin
from repro.core.transcript import RoundRecord, Transcript
from repro.errors import SimulationError


@dataclass
class RunResult:
    """Everything observable about one execution.

    Attributes
    ----------
    instance:
        The instance that was executed.
    outputs:
        ``outputs[v]`` is vertex index v's output.
    transcripts:
        ``transcripts[v]`` is vertex index v's full transcript.
    rounds_executed:
        Number of rounds actually run (may be fewer than requested when
        every vertex reported ``finished()``).
    broadcast_history:
        ``broadcast_history[t - 1][v]`` is the message vertex v broadcast in
        round t. This global view belongs to the simulator/analyst, never to
        the nodes.
    """

    instance: BCCInstance
    outputs: Tuple[Any, ...]
    transcripts: Tuple[Transcript, ...]
    rounds_executed: int
    broadcast_history: Tuple[Tuple[str, ...], ...]
    all_finished: bool = False

    def sent_sequence(self, v: int) -> Tuple[str, ...]:
        """The message sequence vertex index ``v`` broadcast."""
        return self.transcripts[v].sent_sequence()

    def total_bits_broadcast(self) -> int:
        """Total bits broadcast by all vertices over the whole run."""
        return sum(t.bits_sent() for t in self.transcripts)

    def state_view(self, v: int, knowledge: InitialKnowledge, t: Optional[int] = None) -> tuple:
        """Hashable state (knowledge + t-round transcript prefix) of vertex v."""
        rounds = self.rounds_executed if t is None else t
        return (knowledge.comparable_view(), self.transcripts[v].prefix_comparable(rounds))


class Simulator:
    """Runs node algorithms on BCC instances under a fixed model."""

    def __init__(self, model: BCCModel):
        self._model = model

    @property
    def model(self) -> BCCModel:
        return self._model

    def initial_knowledge(self, instance: BCCInstance, v: int, coin: PublicCoin) -> InitialKnowledge:
        """Construct the time-0 knowledge of vertex index ``v``."""
        return InitialKnowledge(
            vertex_id=instance.vertex_id(v),
            n=instance.n,
            bandwidth=self._model.bandwidth,
            kt=instance.kt,
            ports=instance.port_labels(v),
            input_ports=instance.input_ports(v),
            all_ids=tuple(sorted(instance.ids)) if instance.kt == 1 else None,
            coin=coin,
        )

    def run(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds of the algorithm.

        Stops early after any round in which every vertex reports
        ``finished()``. The same ``coin`` object is handed to every vertex
        (the public-coin model); omit it for a fixed default seed.
        """
        if instance.kt != self._model.kt:
            raise SimulationError(
                f"instance knowledge level KT-{instance.kt} does not match "
                f"model KT-{self._model.kt}"
            )
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        the_coin = coin if coin is not None else PublicCoin()
        n = instance.n

        nodes: List[NodeAlgorithm] = []
        for v in range(n):
            node = factory()
            node.setup(self.initial_knowledge(instance, v, the_coin))
            nodes.append(node)

        transcripts = [Transcript() for _ in range(n)]
        history: List[Tuple[str, ...]] = []

        executed = 0
        done = all(node.finished() for node in nodes)
        for t in range(1, rounds + 1):
            if done:
                break
            messages = tuple(
                self._model.validate_message(nodes[v].broadcast(t)) for v in range(n)
            )
            history.append(messages)
            for v in range(n):
                received: Dict[int, str] = {}
                for u in range(n):
                    if u == v:
                        continue
                    received[instance.port_to_peer(v, u)] = messages[u]
                nodes[v].receive(t, received)
                transcripts[v].append(RoundRecord(sent=messages[v], received=received))
            executed = t
            done = all(node.finished() for node in nodes)

        outputs = tuple(nodes[v].output() for v in range(n))
        return RunResult(
            instance=instance,
            outputs=outputs,
            transcripts=tuple(transcripts),
            rounds_executed=executed,
            broadcast_history=tuple(history),
            all_finished=done,
        )

    def run_until_done(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        max_rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RunResult:
        """Run until every vertex is finished, or raise after ``max_rounds``.

        Unlike :meth:`run`, exhausting the budget without global completion
        is treated as an error; use this for upper-bound algorithms whose
        round complexity is itself the measured quantity.
        """
        result = self.run(instance, factory, max_rounds, coin)
        if not result.all_finished:
            raise SimulationError(
                f"algorithm did not finish within {max_rounds} rounds"
            )
        return result
