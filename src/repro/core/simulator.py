"""The synchronous round engine for BCC(b) executions.

The simulator is the paper's model made operational: a complete network of
``n`` vertices, each broadcasting at most ``b`` bits per round, with every
broadcast delivered to the other ``n - 1`` vertices through their port to
the sender. It records full per-vertex transcripts so lower-bound machinery
(active edges, edge labels, indistinguishability checks) can be computed on
real executions rather than abstract ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.algorithm import AlgorithmFactory, NodeAlgorithm
from repro.core.instance import BCCInstance
from repro.core.knowledge import InitialKnowledge
from repro.core.model import BCCModel
from repro.core.randomness import PublicCoin
from repro.core.transcript import RoundRecord, Transcript
from repro.errors import SimulationError
from repro.obs.metrics import get_registry


@dataclass
class RunResult:
    """Everything observable about one execution.

    Attributes
    ----------
    instance:
        The instance that was executed.
    outputs:
        ``outputs[v]`` is vertex index v's output.
    transcripts:
        ``transcripts[v]`` is vertex index v's full transcript.
    rounds_executed:
        Number of rounds actually run (may be fewer than requested when
        every vertex reported ``finished()``).
    broadcast_history:
        ``broadcast_history[t - 1][v]`` is the message vertex v broadcast in
        round t. This global view belongs to the simulator/analyst, never to
        the nodes.
    """

    instance: BCCInstance
    outputs: Tuple[Any, ...]
    transcripts: Tuple[Transcript, ...]
    rounds_executed: int
    broadcast_history: Tuple[Tuple[str, ...], ...]
    all_finished: bool = False

    def sent_sequence(self, v: int) -> Tuple[str, ...]:
        """The message sequence vertex index ``v`` broadcast."""
        return self.transcripts[v].sent_sequence()

    def total_bits_broadcast(self) -> int:
        """Total bits broadcast by all vertices over the whole run."""
        return sum(t.bits_sent() for t in self.transcripts)

    def state_view(self, v: int, knowledge: InitialKnowledge, t: Optional[int] = None) -> tuple:
        """Hashable state (knowledge + t-round transcript prefix) of vertex v."""
        rounds = self.rounds_executed if t is None else t
        return (knowledge.comparable_view(), self.transcripts[v].prefix_comparable(rounds))


class Simulator:
    """Runs node algorithms on BCC instances under a fixed model.

    Observability is opt-in and costs one ``None`` check per run when
    disabled: pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) or
    install one process-wide via :func:`repro.obs.use_registry` to record
    per-round wall time, messages validated, bits broadcast, and the
    early-stop round; pass ``trace`` (a :class:`repro.obs.RunTrace`) to
    stream structured per-round JSONL events.
    """

    def __init__(self, model: BCCModel, metrics=None, trace=None):
        self._model = model
        self._metrics = metrics
        self._trace = trace

    @property
    def model(self) -> BCCModel:
        return self._model

    def initial_knowledge(self, instance: BCCInstance, v: int, coin: PublicCoin) -> InitialKnowledge:
        """Construct the time-0 knowledge of vertex index ``v``."""
        return InitialKnowledge(
            vertex_id=instance.vertex_id(v),
            n=instance.n,
            bandwidth=self._model.bandwidth,
            kt=instance.kt,
            ports=instance.port_labels(v),
            input_ports=instance.input_ports(v),
            all_ids=tuple(sorted(instance.ids)) if instance.kt == 1 else None,
            coin=coin,
        )

    def run(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds of the algorithm.

        Stops early after any round in which every vertex reports
        ``finished()``. The same ``coin`` object is handed to every vertex
        (the public-coin model); omit it for a fixed default seed.
        """
        if instance.kt != self._model.kt:
            raise SimulationError(
                f"instance knowledge level KT-{instance.kt} does not match "
                f"model KT-{self._model.kt}"
            )
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        the_coin = coin if coin is not None else PublicCoin()
        n = instance.n

        # Resolve observability once per run; ``None`` means the disabled
        # fast path (a single extra truthiness check per round).
        metrics = self._metrics if self._metrics is not None else get_registry()
        trace = self._trace
        observing = metrics is not None or trace is not None
        if trace is not None:
            trace.emit(
                "run_start",
                n=n,
                kt=instance.kt,
                bandwidth=self._model.bandwidth,
                rounds_budget=rounds,
            )

        nodes: List[NodeAlgorithm] = []
        for v in range(n):
            node = factory()
            node.setup(self.initial_knowledge(instance, v, the_coin))
            nodes.append(node)

        transcripts = [Transcript() for _ in range(n)]
        history: List[Tuple[str, ...]] = []

        executed = 0
        total_bits = 0
        done = all(node.finished() for node in nodes)
        for t in range(1, rounds + 1):
            if done:
                break
            round_start = time.perf_counter() if observing else 0.0
            messages = tuple(
                self._model.validate_message(nodes[v].broadcast(t)) for v in range(n)
            )
            history.append(messages)
            for v in range(n):
                received: Dict[int, str] = {}
                for u in range(n):
                    if u == v:
                        continue
                    received[instance.port_to_peer(v, u)] = messages[u]
                nodes[v].receive(t, received)
                transcripts[v].append(RoundRecord(sent=messages[v], received=received))
            executed = t
            done = all(node.finished() for node in nodes)
            if observing:
                round_seconds = time.perf_counter() - round_start
                round_bits = sum(len(m) for m in messages)
                total_bits += round_bits
                if metrics is not None:
                    metrics.counter("simulator.rounds_executed").inc()
                    metrics.counter("simulator.messages_validated").inc(n)
                    metrics.counter("simulator.bits_broadcast").inc(round_bits)
                    metrics.histogram("simulator.round_seconds").observe(round_seconds)
                if trace is not None:
                    trace.emit(
                        "round",
                        t=t,
                        bits=round_bits,
                        wall_seconds=round_seconds,
                        all_finished=done,
                    )

        if metrics is not None:
            metrics.counter("simulator.runs").inc()
            if done and executed < rounds:
                metrics.gauge("simulator.early_stop_round").set(executed)
                metrics.counter("simulator.early_stops").inc()
        if trace is not None:
            trace.emit(
                "run_end",
                rounds_executed=executed,
                all_finished=done,
                total_bits=total_bits,
            )

        outputs = tuple(nodes[v].output() for v in range(n))
        return RunResult(
            instance=instance,
            outputs=outputs,
            transcripts=tuple(transcripts),
            rounds_executed=executed,
            broadcast_history=tuple(history),
            all_finished=done,
        )

    def run_until_done(
        self,
        instance: BCCInstance,
        factory: AlgorithmFactory,
        max_rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RunResult:
        """Run until every vertex is finished, or raise after ``max_rounds``.

        Unlike :meth:`run`, exhausting the budget without global completion
        is treated as an error; use this for upper-bound algorithms whose
        round complexity is itself the measured quantity.
        """
        result = self.run(instance, factory, max_rounds, coin)
        if not result.all_finished:
            raise SimulationError(
                f"algorithm did not finish within {max_rounds} rounds"
            )
        return result
