"""Per-vertex transcripts of a BCC execution.

After t rounds, the transcript of a vertex consists of the at most ``t * b``
bits it sent and the at most ``(n - 1) * t * b`` bits it received, *along
with the ports they were received from* (Section 1.2). The transcript plus
the initial knowledge is the vertex's *state*, and two instances are
indistinguishable to an algorithm after t rounds exactly when every vertex
has the same state in both runs (the property exercised by Lemma 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.model import SILENT, SILENT_CHAR, message_bits, message_to_char


@dataclass(frozen=True)
class RoundRecord:
    """What one vertex sent and received in one round.

    ``received`` maps *port label* -> message; silence is the empty string.
    """

    sent: str
    received: Mapping[int, str]

    def received_key(self) -> Tuple[Tuple[int, str], ...]:
        """Canonical hashable form of the received map."""
        return tuple(sorted(self.received.items()))

    def comparable(self) -> tuple:
        return (self.sent, self.received_key())


class Transcript:
    """The ordered sequence of :class:`RoundRecord` for one vertex."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        self._records.append(record)

    @property
    def rounds(self) -> int:
        return len(self._records)

    def record(self, round_index: int) -> RoundRecord:
        """The record of round ``round_index`` (1-based)."""
        if not 1 <= round_index <= len(self._records):
            raise IndexError(
                f"round {round_index} not in transcript of {len(self._records)} rounds"
            )
        return self._records[round_index - 1]

    def sent_sequence(self) -> Tuple[str, ...]:
        """The messages this vertex broadcast, in round order.

        This is exactly the sequence ``x`` (or ``y``) in the paper's notion
        of an *active edge*: the directed edge (v, u) is active with respect
        to (x, y) iff v's sent sequence is x and u's is y.
        """
        return tuple(r.sent for r in self._records)

    def sent_string(self) -> str:
        """Sent sequence rendered over the {0, 1, ⊥} alphabet."""
        return "".join(message_to_char(r.sent) for r in self._records)

    def comparable(self) -> tuple:
        """Hashable form of the entire transcript, for state comparison."""
        return tuple(r.comparable() for r in self._records)

    def prefix_comparable(self, t: int) -> tuple:
        """Hashable form of the first ``t`` rounds of the transcript."""
        return tuple(r.comparable() for r in self._records[:t])

    def bits_sent(self) -> int:
        """Total number of bits this vertex broadcast.

        Silence counts 0 in **both** encodings -- the on-channel empty
        string and the rendered ⊥ glyph -- so a transcript rebuilt from a
        rendered form (replay tooling, fault reports) agrees with the
        live one, and a crashed vertex's forced silences never inflate
        the total by the display width of ⊥.
        """
        return sum(message_bits(r.sent) for r in self._records)

    def silence_count(self) -> int:
        """Rounds in which this vertex broadcast nothing (the paper's ⊥)."""
        return sum(
            1 for r in self._records if r.sent == SILENT or r.sent == SILENT_CHAR
        )

    def bits_received(self) -> int:
        """Total number of bits received across all ports and rounds."""
        return sum(
            sum(message_bits(m) for m in r.received.values()) for r in self._records
        )

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"Transcript(rounds={len(self._records)}, sent={self.sent_string()!r})"


def sent_label(head_transcript: Transcript, tail_transcript: Transcript) -> str:
    """The 2t-character label of a directed edge (Theorem 3.5).

    Given a t-round execution, the label of a directed edge (v, u)
    concatenates the t characters broadcast by the head v and then the t
    characters broadcast by the tail u, each over the {0, 1, ⊥} alphabet.
    """
    return head_transcript.sent_string() + tail_transcript.sent_string()
