"""Initial knowledge handed to a node algorithm at time 0.

Per Section 1.2 of the paper, the initial knowledge of a vertex v is:

* its own ID;
* its port labels and which ports correspond to input-graph edges;
* (KT-1 only) the IDs of all n vertices -- and, because KT-1 ports *are*
  peer IDs, the IDs of its input-graph neighbors;
* an arbitrarily long random string (here: a :class:`PublicCoin`).

Crucially the knowledge object does **not** contain the vertex's simulation
index or the global wiring; node algorithms are information-theoretically
limited to exactly what the model grants them. The simulator constructs
these objects; algorithms only read them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.core.randomness import PublicCoin


@dataclass(frozen=True)
class InitialKnowledge:
    """Everything a vertex knows before the first round."""

    #: The vertex's own ID.
    vertex_id: int
    #: Number of vertices in the network (known in both KT-0 and KT-1).
    n: int
    #: Broadcast bandwidth b of the model.
    bandwidth: int
    #: Knowledge level of the instance (0 or 1).
    kt: int
    #: All port labels at this vertex, sorted ascending.
    ports: Tuple[int, ...]
    #: The subset of ports that carry input-graph edges.
    input_ports: FrozenSet[int]
    #: All n vertex IDs (KT-1 only; None in KT-0), sorted ascending.
    all_ids: Optional[Tuple[int, ...]]
    #: The shared public-coin random string.
    coin: PublicCoin = field(compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.kt == 0 and self.all_ids is not None:
            raise ValueError("KT-0 knowledge must not include the global ID list")
        if self.kt == 1 and self.all_ids is None:
            raise ValueError("KT-1 knowledge must include the global ID list")

    @property
    def input_degree(self) -> int:
        """Degree of this vertex in the input graph."""
        return len(self.input_ports)

    def neighbor_ids(self) -> FrozenSet[int]:
        """IDs of input-graph neighbors (KT-1 only, where ports are IDs)."""
        if self.kt != 1:
            raise ValueError("neighbor IDs are only known at knowledge level KT-1")
        return self.input_ports

    def comparable_view(self) -> tuple:
        """A hashable summary used by the indistinguishability checker.

        Two vertices are in the same initial state iff these views are
        equal; the coin is shared across compared runs and therefore
        deliberately excluded (as is anything a node cannot observe).
        """
        return (
            self.vertex_id,
            self.n,
            self.bandwidth,
            self.kt,
            self.ports,
            self.input_ports,
            self.all_ids,
        )
