"""The range-parameterized congested clique of Becker et al. (Section 1.3).

The paper situates BCC(b) inside a spectrum: RCC(b, r) lets every vertex
send up to ``r`` *distinct* b-bit messages per round, partitioning its
ports among them. ``r = 1`` is exactly BCC(b) (one message to everyone);
``r = n - 1`` is the full congested clique CC(b) (a private message per
port). Becker et al. show problems (pairwise set disjointness) whose
complexity strictly improves with every increase of r -- the structural
reason the paper's "bottleneck" arguments can work in BCC but provably
cannot in CC.

This module implements the RCC(b, r) round engine (a generalization of
:class:`repro.core.simulator.Simulator`) and accounting helpers; a
one-round-per-message *transpose* demonstration of the r = 1 vs r = n - 1
separation lives in :mod:`repro.algorithms.transpose`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.instance import BCCInstance
from repro.core.knowledge import InitialKnowledge
from repro.core.model import BCCModel
from repro.core.randomness import PublicCoin
from repro.core.transcript import RoundRecord, Transcript
from repro.errors import AlgorithmContractError, SimulationError


@dataclass(frozen=True)
class RangeModel:
    """RCC(b, r): bandwidth b, knowledge level kt, message range r."""

    bandwidth: int = 1
    kt: int = 0
    message_range: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.kt not in (0, 1):
            raise ValueError(f"kt must be 0 or 1, got {self.kt}")
        if self.message_range < 1:
            raise ValueError(f"range must be >= 1, got {self.message_range}")

    def base_model(self) -> BCCModel:
        return BCCModel(bandwidth=self.bandwidth, kt=self.kt)

    def is_broadcast(self) -> bool:
        return self.message_range == 1

    def is_full_clique(self, n: int) -> bool:
        return self.message_range >= n - 1


#: A range broadcast: message -> ports it is sent on. At most r distinct
#: messages; every port must be covered exactly once. The shorthand of
#: returning a plain ``str`` means "this one message on every port".
RangeBroadcast = Mapping[str, Sequence[int]]


class RangeNodeAlgorithm(ABC):
    """One vertex's program in an RCC(b, r) execution."""

    def setup(self, knowledge: InitialKnowledge) -> None:
        self.knowledge = knowledge

    @abstractmethod
    def send(self, round_index: int):
        """Return either a single message (broadcast to all ports) or a
        mapping message -> list of port labels."""

    @abstractmethod
    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        """Messages received this round, keyed by this vertex's ports."""

    def finished(self) -> bool:
        return False

    @abstractmethod
    def output(self) -> Any:
        """The vertex's final output."""


@dataclass
class RangeRunResult:
    """Observable outcome of an RCC execution."""

    instance: BCCInstance
    outputs: Tuple[Any, ...]
    transcripts: Tuple[Transcript, ...]
    rounds_executed: int
    distinct_messages_used: int  # max over vertices and rounds


class RangeSimulator:
    """The RCC(b, r) synchronous round engine."""

    def __init__(self, model: RangeModel):
        self._model = model

    @property
    def model(self) -> RangeModel:
        return self._model

    def _normalize(self, raw, ports: Sequence[int]) -> Dict[int, str]:
        """Validate a vertex's send() result into a port -> message map."""
        base = self._model.base_model()
        if isinstance(raw, str):
            base.validate_message(raw)
            return {p: raw for p in ports}
        if not isinstance(raw, Mapping):
            raise AlgorithmContractError(
                f"send() must return a str or a mapping, got {type(raw).__name__}"
            )
        if len(raw) > self._model.message_range:
            raise AlgorithmContractError(
                f"{len(raw)} distinct messages exceed range r={self._model.message_range}"
            )
        assignment: Dict[int, str] = {}
        for message, its_ports in raw.items():
            base.validate_message(message)
            for p in its_ports:
                if p in assignment:
                    raise AlgorithmContractError(f"port {p} assigned two messages")
                assignment[p] = message
        missing = set(ports) - set(assignment)
        if missing:
            # uncovered ports receive silence
            for p in missing:
                assignment[p] = ""
            if len(set(assignment.values())) > self._model.message_range:
                raise AlgorithmContractError(
                    "implicit silence on uncovered ports exceeds the range"
                )
        extra = set(assignment) - set(ports)
        if extra:
            raise AlgorithmContractError(f"unknown ports {sorted(extra)}")
        return assignment

    def run(
        self,
        instance: BCCInstance,
        factory,
        rounds: int,
        coin: Optional[PublicCoin] = None,
    ) -> RangeRunResult:
        if instance.kt != self._model.kt:
            raise SimulationError(
                f"instance knowledge level KT-{instance.kt} does not match "
                f"model KT-{self._model.kt}"
            )
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        the_coin = coin if coin is not None else PublicCoin()
        n = instance.n
        base_sim_knowledge = []
        nodes: List[RangeNodeAlgorithm] = []
        for v in range(n):
            node = factory()
            knowledge = InitialKnowledge(
                vertex_id=instance.vertex_id(v),
                n=n,
                bandwidth=self._model.bandwidth,
                kt=instance.kt,
                ports=instance.port_labels(v),
                input_ports=instance.input_ports(v),
                all_ids=tuple(sorted(instance.ids)) if instance.kt == 1 else None,
                coin=the_coin,
            )
            node.setup(knowledge)
            nodes.append(node)
            base_sim_knowledge.append(knowledge)

        transcripts = [Transcript() for _ in range(n)]
        executed = 0
        max_distinct = 0
        done = all(node.finished() for node in nodes)
        for t in range(1, rounds + 1):
            if done:
                break
            # sender v's per-port assignment, keyed by v's own port labels
            assignments: List[Dict[int, str]] = []
            for v in range(n):
                assignment = self._normalize(nodes[v].send(t), instance.port_labels(v))
                assignments.append(assignment)
                max_distinct = max(max_distinct, len(set(assignment.values())))
            for v in range(n):
                received: Dict[int, str] = {}
                for u in range(n):
                    if u == v:
                        continue
                    # u sends to v whatever u assigned to u's port toward v
                    received[instance.port_to_peer(v, u)] = assignments[u][
                        instance.port_to_peer(u, v)
                    ]
                nodes[v].receive(t, received)
                sent_summary = "|".join(
                    f"{p}:{m}" for p, m in sorted(assignments[v].items())
                )
                transcripts[v].append(
                    RoundRecord(sent=sent_summary if not self._model.is_broadcast() else assignments[v][instance.port_labels(v)[0]], received=received)
                )
            executed = t
            done = all(node.finished() for node in nodes)

        return RangeRunResult(
            instance=instance,
            outputs=tuple(node.output() for node in nodes),
            transcripts=tuple(transcripts),
            rounds_executed=executed,
            distinct_messages_used=max_distinct,
        )
