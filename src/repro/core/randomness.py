"""Public-coin randomness for BCC algorithms.

The paper's lower bounds are proved in the public-coin model: every vertex
sees the *same* arbitrarily long random string. :class:`PublicCoin`
implements that string as a deterministic stream derived from a seed via
SHA-256 in counter mode, so that

* every vertex of a run draws identical values for identical queries,
* two runs with the same seed are bit-for-bit reproducible (which the
  indistinguishability checker relies on when comparing a run on an
  instance ``I`` with a run on its crossing ``I(e1, e2)``), and
* algorithms can draw *named* sub-streams (e.g. one hash function per
  sketch level) without coordinating offsets.

Private-coin algorithms can be modelled by deriving a per-vertex stream
with ``coin.substream(str(vertex_id))``; lower bounds proved against public
coins dominate private-coin bounds, as the paper notes.
"""

from __future__ import annotations

import hashlib
from typing import List


class PublicCoin:
    """A reproducible, shared source of random bits keyed by a seed."""

    __slots__ = ("_seed",)

    def __init__(self, seed: str = "repro-public-coin"):
        self._seed = seed

    @property
    def seed(self) -> str:
        return self._seed

    def substream(self, name: str) -> "PublicCoin":
        """A derived coin; distinct names give independent-looking streams."""
        return PublicCoin(f"{self._seed}/{name}")

    def _block(self, key: str, counter: int) -> bytes:
        material = f"{self._seed}|{key}|{counter}".encode("utf-8")
        return hashlib.sha256(material).digest()

    def bits(self, key: str, count: int) -> List[int]:
        """Return ``count`` pseudorandom bits for the given query key."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out: List[int] = []
        counter = 0
        while len(out) < count:
            block = self._block(key, counter)
            for byte in block:
                for shift in range(8):
                    out.append((byte >> shift) & 1)
                    if len(out) == count:
                        return out
            counter += 1
        return out

    def bit(self, key: str) -> int:
        """A single pseudorandom bit."""
        return self.bits(key, 1)[0]

    def randint(self, key: str, low: int, high: int) -> int:
        """A pseudorandom integer in the inclusive range [low, high].

        Uses rejection sampling over 64-bit blocks so the distribution is
        exactly uniform.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        counter = 0
        while True:
            block = self._block(f"int|{key}", counter)
            value = int.from_bytes(block[:8], "big")
            limit = (2**64 // span) * span
            if value < limit:
                return low + (value % span)
            counter += 1

    def random(self, key: str) -> float:
        """A pseudorandom float in [0, 1) with 53 bits of precision."""
        block = self._block(f"float|{key}", 0)
        mantissa = int.from_bytes(block[:8], "big") >> 11
        return mantissa / float(1 << 53)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PublicCoin):
            return NotImplemented
        return self._seed == other._seed

    def __hash__(self) -> int:
        return hash(("PublicCoin", self._seed))

    def __repr__(self) -> str:
        return f"PublicCoin(seed={self._seed!r})"
