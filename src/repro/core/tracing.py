"""Human-readable execution traces.

Debugging a distributed lower-bound argument usually means staring at who
said what when; this module renders a :class:`RunResult` as a
round-by-round table over the {0, 1, ⊥} alphabet and can diff two runs
(e.g. an instance and its crossing) highlighting the first divergence.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.model import message_to_char
from repro.core.simulator import RunResult


def render_run(result: RunResult, max_rounds: Optional[int] = None) -> str:
    """A table: rows = rounds, columns = vertices (by index), entries =
    broadcast characters."""
    n = result.instance.n
    rounds = result.rounds_executed if max_rounds is None else min(
        max_rounds, result.rounds_executed
    )
    header = "round | " + " ".join(f"v{v:<3d}" for v in range(n))
    lines = [header, "-" * len(header)]
    for t in range(rounds):
        chars = " ".join(
            f"{message_to_char(result.broadcast_history[t][v]):<4s}" for v in range(n)
        )
        lines.append(f"{t + 1:5d} | {chars}")
    outputs = " ".join(f"{str(out):<4s}" for out in result.outputs)
    lines.append("-" * len(header))
    lines.append(f"  out | {outputs}")
    return "\n".join(lines)


def render_vertex(result: RunResult, v: int) -> str:
    """One vertex's transcript: sent characters and per-port receipts."""
    transcript = result.transcripts[v]
    lines = [f"vertex index {v} (ID {result.instance.vertex_id(v)})"]
    for t in range(1, transcript.rounds + 1):
        record = transcript.record(t)
        received = ", ".join(
            f"{port}<-{message_to_char(msg)}"
            for port, msg in sorted(record.received.items())
        )
        lines.append(
            f"  round {t}: sent {message_to_char(record.sent)}; received {received}"
        )
    lines.append(f"  output: {result.outputs[v]!r}")
    return "\n".join(lines)


def first_divergence(
    run_a: RunResult, run_b: RunResult
) -> Optional[Tuple[int, int]]:
    """The earliest (round, vertex) where the two broadcast histories
    differ, or None if they are truly identical.

    Two sentinel vertex values mark shape mismatches: ``(t, -1)`` when
    the runs have different lengths (first round past the common prefix)
    and ``(1, -2)`` when they have different widths (``n`` mismatch --
    vertices beyond ``min(n_a, n_b)`` exist in only one run, so the
    histories differ from the first round onward and are never
    "identical")."""
    rounds = min(run_a.rounds_executed, run_b.rounds_executed)
    n = min(run_a.instance.n, run_b.instance.n)
    for t in range(rounds):
        for v in range(n):
            if run_a.broadcast_history[t][v] != run_b.broadcast_history[t][v]:
                return (t + 1, v)
    if run_a.instance.n != run_b.instance.n:
        return (1, -2)
    if run_a.rounds_executed != run_b.rounds_executed:
        return (rounds + 1, -1)
    return None


def render_diff(run_a: RunResult, run_b: RunResult, label_a: str = "A", label_b: str = "B") -> str:
    """Side-by-side character diff of two runs' broadcast histories."""
    divergence = first_divergence(run_a, run_b)
    n = min(run_a.instance.n, run_b.instance.n)
    rounds = min(run_a.rounds_executed, run_b.rounds_executed)
    lines = [f"diff {label_a} vs {label_b} (n = {n}, rounds = {rounds})"]
    for t in range(rounds):
        row_a = "".join(message_to_char(run_a.broadcast_history[t][v]) for v in range(n))
        row_b = "".join(message_to_char(run_b.broadcast_history[t][v]) for v in range(n))
        marker = "" if row_a == row_b else "   <-- differs"
        lines.append(f"  round {t + 1}: {label_a}={row_a}  {label_b}={row_b}{marker}")
    if divergence is None:
        lines.append("  histories identical")
    else:
        t, v = divergence
        if v >= 0:
            where = f"vertex {v}"
        elif v == -1:
            where = "run lengths"
        else:
            where = (
                f"run widths (n = {run_a.instance.n} vs {run_b.instance.n})"
            )
        lines.append(f"  first divergence: round {t}, {where}")
    return "\n".join(lines)
