"""BCC instances: the clique network, its port wiring, and the input graph.

A size-n instance consists of (Section 1.2 of the paper):

* ``n`` vertices, each with a unique ID;
* a complete communication network: every pair of vertices is joined by a
  *network edge*;
* a port numbering: each vertex has ``n - 1`` communication ports, one per
  network edge. In a **KT-0** instance the ports at a vertex are labelled
  ``1 .. n-1`` in an arbitrary manner that has *nothing to do with IDs*.
  In a **KT-1** instance the port of the edge {u, v} at u is labelled with
  ID(v) (so port labels reveal neighbor IDs);
* an *input graph*: a subset of the network edges. Each vertex knows which
  of its ports carry input edges.

Internally vertices are indexed ``0 .. n-1``; the index is a simulation
artifact that is never exposed to node algorithms (which only see IDs,
ports, and messages). The wiring is stored as, for each vertex index ``v``,
a bijection between port labels and peer vertex indices.

The class is immutable; the crossing operator in :mod:`repro.crossing`
produces new instances via :meth:`BCCInstance.replace`.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph

#: An input edge as a canonical (low index, high index) pair.
IndexEdge = Tuple[int, int]


def _canonical_edge(u: int, v: int) -> IndexEdge:
    if u == v:
        raise InvalidInstanceError(f"self-loop at vertex index {u}")
    return (u, v) if u < v else (v, u)


class BCCInstance:
    """An immutable KT-0 or KT-1 instance of the BCC model.

    Parameters
    ----------
    kt:
        Knowledge level, 0 or 1.
    ids:
        ``ids[v]`` is the ID of vertex index ``v``. IDs must be distinct
        non-negative integers.
    peers:
        ``peers[v]`` maps each port label of vertex ``v`` to the peer
        vertex index reached through that port. For KT-0 the label set at
        every vertex must be ``{1, .., n-1}``; for KT-1 the label of the
        port to peer ``u`` must be ``ids[u]``.
    input_edges:
        The input graph as canonical index pairs.
    """

    __slots__ = ("_n", "_kt", "_ids", "_peers", "_ports", "_input_edges", "_id_to_index")

    def __init__(
        self,
        kt: int,
        ids: Sequence[int],
        peers: Sequence[Dict[int, int]],
        input_edges: Iterable[IndexEdge],
    ):
        self._kt = kt
        self._ids: Tuple[int, ...] = tuple(ids)
        self._n = len(self._ids)
        self._peers: Tuple[Dict[int, int], ...] = tuple(dict(p) for p in peers)
        self._input_edges: FrozenSet[IndexEdge] = frozenset(
            _canonical_edge(u, v) for u, v in input_edges
        )
        # inverse wiring: _ports[v][u] = port label of the edge {v, u} at v
        self._ports: Tuple[Dict[int, int], ...] = tuple(
            {peer: port for port, peer in p.items()} for p in self._peers
        )
        self._id_to_index: Dict[int, int] = {vid: v for v, vid in enumerate(self._ids)}
        self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def kt1_from_graph(graph: Graph, ids: Optional[Sequence[int]] = None) -> "BCCInstance":
        """Build a KT-1 instance whose input graph is ``graph``.

        ``graph`` must have vertex set ``{0, .., n-1}`` (vertex indices).
        If ``ids`` is omitted, vertex index ``v`` receives ID ``v``.
        In KT-1 the wiring is forced: the port of {u, v} at u is ID(v).
        """
        n = graph.vertex_count
        _check_index_vertex_set(graph, n)
        the_ids = tuple(range(n)) if ids is None else tuple(ids)
        if len(the_ids) != n:
            raise InvalidInstanceError(f"need {n} ids, got {len(the_ids)}")
        peers = [{the_ids[u]: u for u in range(n) if u != v} for v in range(n)]
        edges = [_canonical_edge(u, v) for u, v in graph.edges()]
        return BCCInstance(1, the_ids, peers, edges)

    @staticmethod
    def kt0_from_graph(
        graph: Graph,
        ids: Optional[Sequence[int]] = None,
        rng: Optional[random.Random] = None,
    ) -> "BCCInstance":
        """Build a KT-0 instance whose input graph is ``graph``.

        The port numbering is the canonical *rotation wiring* -- the port of
        the network edge {v, u} at v is ``(u - v) mod n`` -- optionally
        shuffled per-vertex by ``rng`` to produce an arbitrary numbering.
        The rotation wiring is symmetric-free and has no relation to IDs,
        as the KT-0 model requires.
        """
        n = graph.vertex_count
        _check_index_vertex_set(graph, n)
        the_ids = tuple(range(n)) if ids is None else tuple(ids)
        if len(the_ids) != n:
            raise InvalidInstanceError(f"need {n} ids, got {len(the_ids)}")
        peers: List[Dict[int, int]] = []
        for v in range(n):
            labels = list(range(1, n))
            if rng is not None:
                rng.shuffle(labels)
            mapping = {}
            for offset in range(1, n):
                u = (v + offset) % n
                mapping[labels[offset - 1]] = u
            peers.append(mapping)
        edges = [_canonical_edge(u, v) for u, v in graph.edges()]
        return BCCInstance(0, the_ids, peers, edges)

    def replace(
        self,
        peers: Optional[Sequence[Dict[int, int]]] = None,
        input_edges: Optional[Iterable[IndexEdge]] = None,
    ) -> "BCCInstance":
        """Return a copy with the wiring and/or input graph replaced."""
        return BCCInstance(
            self._kt,
            self._ids,
            self._peers if peers is None else peers,
            self._input_edges if input_edges is None else input_edges,
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self._n
        if n < 2:
            raise InvalidInstanceError(f"an instance needs >= 2 vertices, got {n}")
        if len(set(self._ids)) != n:
            raise InvalidInstanceError("vertex IDs must be distinct")
        if any(i < 0 for i in self._ids):
            raise InvalidInstanceError("vertex IDs must be non-negative")
        if len(self._peers) != n:
            raise InvalidInstanceError(
                f"wiring has {len(self._peers)} vertices, expected {n}"
            )
        for v, mapping in enumerate(self._peers):
            peer_set = set(mapping.values())
            if peer_set != set(range(n)) - {v}:
                raise InvalidInstanceError(
                    f"vertex {v}: ports must reach every other vertex exactly once"
                )
            if self._kt == 0:
                if set(mapping.keys()) != set(range(1, n)):
                    raise InvalidInstanceError(
                        f"vertex {v}: KT-0 port labels must be 1..{n - 1}"
                    )
            else:
                expected = {self._ids[u] for u in range(n) if u != v}
                if set(mapping.keys()) != expected:
                    raise InvalidInstanceError(
                        f"vertex {v}: KT-1 port labels must be the peer IDs"
                    )
                for port, u in mapping.items():
                    if port != self._ids[u]:
                        raise InvalidInstanceError(
                            f"vertex {v}: port {port} must reach the vertex with that ID"
                        )
        for u, v in self._input_edges:
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidInstanceError(f"input edge ({u}, {v}) out of range")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def kt(self) -> int:
        return self._kt

    @property
    def ids(self) -> Tuple[int, ...]:
        return self._ids

    @property
    def input_edges(self) -> FrozenSet[IndexEdge]:
        return self._input_edges

    def vertex_id(self, v: int) -> int:
        """The ID of vertex index ``v``."""
        return self._ids[v]

    def index_of_id(self, vertex_id: int) -> int:
        """The vertex index carrying the given ID."""
        return self._id_to_index[vertex_id]

    def peer_of_port(self, v: int, port: int) -> int:
        """The vertex index at the far end of ``port`` at vertex ``v``."""
        return self._peers[v][port]

    def port_to_peer(self, v: int, u: int) -> int:
        """The port label at ``v`` of the network edge {v, u}."""
        return self._ports[v][u]

    def port_labels(self, v: int) -> Tuple[int, ...]:
        """All port labels at vertex ``v``, sorted."""
        return tuple(sorted(self._peers[v].keys()))

    def input_ports(self, v: int) -> FrozenSet[int]:
        """The port labels at ``v`` that carry input-graph edges."""
        ports = set()
        for u, w in self._input_edges:
            if u == v:
                ports.add(self._ports[v][w])
            elif w == v:
                ports.add(self._ports[v][u])
        return frozenset(ports)

    def input_neighbors(self, v: int) -> FrozenSet[int]:
        """Vertex indices adjacent to ``v`` in the input graph."""
        nbrs = set()
        for u, w in self._input_edges:
            if u == v:
                nbrs.add(w)
            elif w == v:
                nbrs.add(u)
        return frozenset(nbrs)

    def input_degree(self, v: int) -> int:
        return len(self.input_neighbors(v))

    def input_graph(self) -> Graph:
        """The input graph over vertex indices as a :class:`Graph`."""
        return Graph(range(self._n), self._input_edges)

    def has_input_edge(self, u: int, v: int) -> bool:
        return _canonical_edge(u, v) in self._input_edges

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BCCInstance):
            return NotImplemented
        return (
            self._kt == other._kt
            and self._ids == other._ids
            and self._peers == other._peers
            and self._input_edges == other._input_edges
        )

    def __hash__(self) -> int:
        wiring_key = tuple(tuple(sorted(p.items())) for p in self._peers)
        return hash((self._kt, self._ids, wiring_key, self._input_edges))

    def __repr__(self) -> str:
        return (
            f"BCCInstance(kt={self._kt}, n={self._n}, "
            f"input_edges={len(self._input_edges)})"
        )


def _check_index_vertex_set(graph: Graph, n: int) -> None:
    if set(graph.vertices()) != set(range(n)):
        raise InvalidInstanceError(
            "instance input graphs must use vertex indices 0..n-1"
        )
