"""The node-algorithm contract for BCC executions.

A BCC algorithm is specified *locally*: every vertex runs the same program,
parameterized only by its initial knowledge. The simulator instantiates one
:class:`NodeAlgorithm` per vertex via a factory and drives the synchronous
round loop:

1. ``setup(knowledge)`` once, before round 1;
2. for each round t = 1, 2, ...: every vertex's ``broadcast(t)`` is
   collected, then every vertex's ``receive(t, messages)`` is invoked with
   the port-labelled messages of the other n - 1 vertices;
3. after the final round, ``output()`` is read.

(The paper phrases delivery as "received at the beginning of round t + 1";
folding delivery into the end of round t is the same schedule, just
re-labelled, and keeps transcripts aligned with round indices.)

Algorithms signal early termination by returning True from ``finished()``;
the simulator stops after the first round in which *all* vertices are
finished. Decision problems return the strings ``"YES"``/``"NO"`` from
``output()``; ConnectedComponents algorithms return a hashable label.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping

from repro.core.knowledge import InitialKnowledge

#: Vertex outputs for decision problems.
YES = "YES"
NO = "NO"


class NodeAlgorithm(ABC):
    """One vertex's program in a BCC execution."""

    def setup(self, knowledge: InitialKnowledge) -> None:
        """Receive the initial knowledge. Default: store it as ``self.knowledge``."""
        self.knowledge = knowledge

    @abstractmethod
    def broadcast(self, round_index: int) -> str:
        """The message to broadcast in round ``round_index`` (1-based).

        Return a 0/1-string of length at most the model bandwidth; the
        empty string means silence (the paper's ⊥ character).
        """

    @abstractmethod
    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        """Consume the round's broadcasts, keyed by this vertex's port label."""

    def finished(self) -> bool:
        """True once this vertex needs no further rounds (default: never)."""
        return False

    @abstractmethod
    def output(self) -> Any:
        """The vertex's output after the execution ends."""


#: A factory building one fresh NodeAlgorithm per vertex.
AlgorithmFactory = Callable[[], NodeAlgorithm]


class SilentAlgorithm(NodeAlgorithm):
    """A vertex that never speaks and always answers YES.

    Useful as the degenerate 0-round algorithm in lower-bound experiments:
    by Lemma 3.4 it cannot distinguish any crossed pair of instances.
    """

    def broadcast(self, round_index: int) -> str:
        return ""

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        pass

    def output(self) -> str:
        return YES


class ConstantAlgorithm(NodeAlgorithm):
    """A vertex that broadcasts a fixed character forever and answers YES.

    Another degenerate adversary target: every edge ends up with the same
    2t-character label, making the entire edge set active.
    """

    def __init__(self, character: str = "1"):
        self._character = character

    def broadcast(self, round_index: int) -> str:
        return self._character

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        pass

    def output(self) -> str:
        return YES


class FunctionalAlgorithm(NodeAlgorithm):
    """Adapter turning three callables into a NodeAlgorithm.

    Convenient for small experiments and tests::

        factory = lambda: FunctionalAlgorithm(
            broadcast=lambda self, t: "1" if t == 1 else "",
            receive=lambda self, t, msgs: None,
            output=lambda self: YES,
        )
    """

    def __init__(self, broadcast, receive, output, finished=None):
        self._broadcast = broadcast
        self._receive = receive
        self._output = output
        self._finished = finished

    def broadcast(self, round_index: int) -> str:
        return self._broadcast(self, round_index)

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        self._receive(self, round_index, messages)

    def finished(self) -> bool:
        return bool(self._finished and self._finished(self))

    def output(self) -> Any:
        return self._output(self)
