"""Decision semantics and Monte-Carlo error estimation.

For a decision problem the *system* output of a BCC run is YES iff every
vertex outputs YES (Section 1.2). An ε-error Monte Carlo algorithm must,
on every individual input, produce the correct system output with
probability > 1 - ε over the shared random string. This module provides
those semantics plus estimators for

* per-input error probability (over sampled public-coin seeds), and
* distributional error (the quantity in Yao's minimax theorem): the
  μ-weighted fraction of inputs on which a deterministic algorithm errs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.core.algorithm import NO, YES, AlgorithmFactory
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import RunResult, Simulator


def system_decision(outputs: Iterable[str]) -> str:
    """Combine vertex outputs: YES iff all vertices said YES."""
    return YES if all(out == YES for out in outputs) else NO


def decision_of_run(result: RunResult) -> str:
    """System decision of a completed run."""
    return system_decision(result.outputs)


@dataclass(frozen=True)
class ErrorEstimate:
    """Result of a Monte-Carlo error estimation."""

    errors: int
    trials: int

    @property
    def rate(self) -> float:
        return self.errors / self.trials if self.trials else 0.0


def per_input_error(
    simulator: Simulator,
    instance: BCCInstance,
    factory: AlgorithmFactory,
    rounds: int,
    expected: str,
    seeds: Sequence[str],
) -> ErrorEstimate:
    """Estimate Pr[wrong system output] on one input over public coins.

    ``expected`` is the correct decision (YES/NO) for this instance; each
    seed induces one deterministic execution.
    """
    errors = 0
    for seed in seeds:
        result = simulator.run(instance, factory, rounds, coin=PublicCoin(seed))
        if decision_of_run(result) != expected:
            errors += 1
    return ErrorEstimate(errors=errors, trials=len(seeds))


def distributional_error(
    simulator: Simulator,
    weighted_inputs: Sequence[Tuple[BCCInstance, str, float]],
    factory: AlgorithmFactory,
    rounds: int,
    coin: Optional[PublicCoin] = None,
) -> float:
    """μ-weighted error of a (deterministic) algorithm over a distribution.

    ``weighted_inputs`` is a sequence of (instance, correct decision,
    probability mass) triples; masses should sum to 1 but are normalized
    defensively. This is the distributional complexity quantity D^μ_ε from
    Yao's minimax theorem (Theorem 2.2).
    """
    total = sum(w for _, _, w in weighted_inputs)
    if total <= 0:
        raise ValueError("distribution has no mass")
    err = 0.0
    for instance, expected, weight in weighted_inputs:
        result = simulator.run(instance, factory, rounds, coin=coin)
        if decision_of_run(result) != expected:
            err += weight
    return err / total


def labelling_error(
    simulator: Simulator,
    weighted_inputs: Sequence[Tuple[BCCInstance, float]],
    factory: AlgorithmFactory,
    rounds: int,
    verifier: Callable[[BCCInstance, Tuple], bool],
    coin: Optional[PublicCoin] = None,
) -> float:
    """μ-weighted error for labelling problems (ConnectedComponents).

    ``verifier(instance, outputs)`` must return True iff the vector of
    vertex outputs is a correct labelling for the instance.
    """
    total = sum(w for _, w in weighted_inputs)
    if total <= 0:
        raise ValueError("distribution has no mass")
    err = 0.0
    for instance, weight in weighted_inputs:
        result = simulator.run(instance, factory, rounds, coin=coin)
        if not verifier(instance, result.outputs):
            err += weight
    return err / total
