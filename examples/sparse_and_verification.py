#!/usr/bin/env python3
"""Extensions around the paper: sparse graphs, verification, and ranges.

Three vignettes from the paper's margins, all executable:

1. **Uniformly sparse graphs** (the tightness remark of Section 1.1):
   the peeling algorithm solves Connectivity in polylog BCC(1) rounds for
   bounded *arboricity* -- including a star whose hub has degree n - 1,
   where the bounded-degree exchange is useless.
2. **Proof-labeling schemes** (Section 1.3): the spanning-tree scheme
   verifies connectivity with O(log n)-bit labels, and any t-round BCC(1)
   algorithm becomes a 2t-bit scheme -- the bridge from verification
   lower bounds to round lower bounds.
3. **The range spectrum** (Becker et al., Section 1.3): transpose takes
   one round at range r = 2 but ceil((n-1)/b) rounds at r = 1 (broadcast),
   the bandwidth cliff that separates CC from BCC.

    python examples/sparse_and_verification.py
"""

import random

from repro.core import BCC1_KT1, BCCInstance, Simulator, decision_of_run
from repro.core.range_model import RangeModel, RangeSimulator
from repro.algorithms import (
    broadcast_lower_bound_rounds,
    connectivity_factory,
    id_bit_width,
    neighbor_exchange_rounds,
    peeling_connectivity_factory,
    peeling_round_budget,
    transpose_correct,
    transpose_factory,
)
from repro.graphs import Graph, bounded_arboricity_graph, one_cycle
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.pls import SpanningTreePLS, TranscriptPLS


def sparse_demo() -> None:
    print("== 1. Bounded arboricity: peeling vs bounded-degree exchange ==")
    n = 16
    sim = Simulator(BCC1_KT1)
    star = Graph(range(n), [(0, i) for i in range(1, n)])
    inst = BCCInstance.kt1_from_graph(star)
    res = sim.run_until_done(
        inst, peeling_connectivity_factory(1), peeling_round_budget(n, 1)
    )
    print(f"  star (hub degree {n - 1}, arboricity 1):")
    print(f"    peeling        -> {decision_of_run(res)} in {res.rounds_executed} rounds")
    print(f"    NeighborExchange would need max_degree = {n - 1}: "
          f"{neighbor_exchange_rounds(1, n - 1, id_bit_width(n - 1))} rounds")

    rng = random.Random(5)
    g = bounded_arboricity_graph(20, 2, rng)
    inst2 = BCCInstance.kt1_from_graph(g)
    res2 = sim.run_until_done(
        inst2, peeling_connectivity_factory(2), peeling_round_budget(20, 2)
    )
    print(
        f"  random arboricity-2 graph (max degree {g.max_degree()}): "
        f"{decision_of_run(res2)} in {res2.rounds_executed} rounds"
    )

    # the [MT16]-style deterministic sketch: ONE fixed-size burst
    from repro.algorithms import mt16_connectivity_factory, mt16_rounds

    res3 = sim.run_until_done(
        inst2, mt16_connectivity_factory(2), mt16_rounds(2) + 1
    )
    print(
        f"  same graph, deterministic syndrome sketch: "
        f"{decision_of_run(res3)} in {res3.rounds_executed} rounds "
        f"(one {mt16_rounds(2)}-bit burst; the paper's tightness witness)"
    )


def pls_demo() -> None:
    print("\n== 2. Proof-labeling schemes (Section 1.3) ==")
    n = 12
    scheme = SpanningTreePLS()
    yes_inst = one_cycle_instance(n, kt=1)
    labels = scheme.prove(yes_inst)
    print(f"  spanning-tree scheme, n = {n}:")
    print(f"    honest labels ({scheme.verification_complexity(yes_inst)} bits) "
          f"accepted: {scheme.run(yes_inst, labels).accepted}")
    no_inst = two_cycle_instance(n, 5, kt=1)
    print(f"    forged labels on a disconnected instance rejected: "
          f"{scheme.soundness_holds(no_inst, labels)}")

    rounds = neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
    transcript_scheme = TranscriptPLS(
        Simulator(BCC1_KT1), connectivity_factory(2), rounds
    )
    print(f"  transcript scheme from the Theta(log n) algorithm:")
    print(f"    labels are 2t = {transcript_scheme.verification_complexity()} bits")
    print(f"    completeness: {transcript_scheme.completeness_holds(yes_inst)}")
    print(f"    soundness on the NO instance: "
          f"{transcript_scheme.soundness_holds(no_inst, transcript_scheme.prove(no_inst))}")
    print("    => a PLS verification lower bound forces t = Omega(log n).")


def range_demo() -> None:
    print("\n== 3. The range spectrum (Becker et al.) ==")
    n = 8
    rng = random.Random(11)
    inputs = {
        i: {j: rng.choice("01") for j in range(n) if j != i} for i in range(n)
    }
    inst = BCCInstance.kt1_from_graph(one_cycle(n))

    fast = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=2))
    res_fast = fast.run(inst, transpose_factory(inputs, use_range=True), 3)
    out_fast = {res_fast.instance.vertex_id(v): res_fast.outputs[v] for v in range(n)}

    slow = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=1))
    res_slow = slow.run(inst, transpose_factory(inputs, use_range=False), 3 * n)
    out_slow = {res_slow.instance.vertex_id(v): res_slow.outputs[v] for v in range(n)}

    print(f"  transpose of {n}x{n - 1} addressed bits:")
    print(f"    range r = 2: {res_fast.rounds_executed} round, "
          f"correct: {transpose_correct(inputs, out_fast)}")
    print(f"    range r = 1: {res_slow.rounds_executed} rounds "
          f"(information bound: {broadcast_lower_bound_rounds(n, 1)}), "
          f"correct: {transpose_correct(inputs, out_slow)}")
    print("    => the bandwidth cliff that keeps 'bottleneck' arguments")
    print("       alive in BCC but kills them in CC.")


if __name__ == "__main__":
    sparse_demo()
    pls_demo()
    range_demo()
