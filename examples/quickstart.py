#!/usr/bin/env python3
"""Quickstart: the BCC(1) model, cycles, and the Omega(log n) story.

Runs in a few seconds and walks through the core objects:

1. build a KT-0 TwoCycle instance (one cycle vs two cycles);
2. run a real BCC(1) algorithm (neighborhood exchange) to solve it in
   Theta(log n) rounds;
3. let the paper's crossing adversary defeat the same algorithm when its
   round budget is cut -- the lower bound in action.

    python examples/quickstart.py
"""

from repro.core import BCC1_KT0, Simulator, decision_of_run
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.lowerbounds import find_fooling_pairs
from repro.problems import TwoCycle


def main() -> None:
    n = 16
    simulator = Simulator(BCC1_KT0)
    problem = TwoCycle()

    print(f"== TwoCycle in BCC(1), KT-0, n = {n} ==")
    yes_instance = one_cycle_instance(n, kt=0)
    no_instance = two_cycle_instance(n, 7, kt=0)
    assert problem.promise(yes_instance) and problem.promise(no_instance)

    # --- the upper bound: Theta(log n) rounds suffice on 2-regular inputs
    budget = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
    print(f"\nNeighborExchange schedule: {budget} rounds (= 3 * ID width)")
    for name, inst in [("one cycle", yes_instance), ("two cycles", no_instance)]:
        result = simulator.run_until_done(inst, connectivity_factory(2), budget + 1)
        print(
            f"  {name:10s} -> decision {decision_of_run(result):3s} "
            f"in {result.rounds_executed} rounds "
            f"({result.total_bits_broadcast()} bits broadcast total)"
        )

    # --- the lower bound: cut the budget and the crossing adversary wins
    print("\nCrossing adversary vs the same algorithm, truncated:")
    for rounds in (1, 2, budget // 2, budget):
        pairs = find_fooling_pairs(
            simulator, connectivity_factory(2), yes_instance, rounds, limit=3
        )
        verdict = (
            f"FOOLED ({len(pairs)}+ crossed NO-instances it cannot distinguish)"
            if pairs
            else "safe (no fooling pair exists)"
        )
        print(f"  t = {rounds:3d}: {verdict}")

    print(
        "\nThe adversary wins at every t below the Theta(log n) schedule and"
        "\nloses exactly when the algorithm completes -- Theorem 3.1 made"
        "\noperational, tight against the upper bound."
    )


if __name__ == "__main__":
    main()
