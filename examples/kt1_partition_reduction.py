#!/usr/bin/env python3
"""The KT-1 reduction pipeline (Section 4): Figure 2 to Theorem 4.4.

1. rebuild both Figure 2 graphs from the paper's exact example inputs and
   verify Theorem 4.3 (components <-> join);
2. certify rank(M_5) = B_5 and rank(E_8) = 105 (Theorem 2.3 / Lemma 4.1);
3. run the Section 4.3 simulation: Alice and Bob jointly execute a real
   KT-1 BCC(1) algorithm on G(P_A, P_B) and read off the join, at exactly
   Theta(n) bits per simulated round;
4. print the implied Omega(log N) round bounds next to the measured
   upper-bound rounds.

    python examples/kt1_partition_reduction.py
"""

from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
from repro.lowerbounds import multicycle_round_bound
from repro.partitions import (
    SetPartition,
    bell_number,
    m_matrix_is_full_rank,
    e_matrix_is_full_rank,
    perfect_matching_count,
)
from repro.twoparty import (
    BCCSimulationProtocol,
    build_partition_reduction,
    build_two_partition_reduction,
    simulation_bits_per_round,
)


def figure_2_demo() -> None:
    print("== Figure 2 (left): Partition -> 2-party Connectivity ==")
    pa = SetPartition.from_string(8, "(1,2,3)(4,5,6)(7,8)")
    pb = SetPartition.from_string(8, "(1,2,6)(3,4,7)(5,8)")
    red = build_partition_reduction(pa, pb)
    print(f"  P_A = {pa}")
    print(f"  P_B = {pb}")
    print(f"  P_A v P_B = {pa.join(pb)}")
    print(f"  components of G(P_A, P_B) on L induce: {red.induced_partition_on_l()}")
    print(f"  G connected: {red.is_connected()} (join trivial: {pa.join(pb).is_coarsest()})")

    print("\n== Figure 2 (right): TwoPartition -> 2-party MultiCycle ==")
    pa2 = SetPartition.from_string(8, "(1,2)(3,4)(5,6)(7,8)")
    pb2 = SetPartition.from_string(8, "(1,3)(2,4)(5,7)(6,8)")
    red2 = build_two_partition_reduction(pa2, pb2)
    lengths = sorted(len(c) for c in red2.graph.cycle_decomposition())
    print(f"  2-regular: {red2.graph.is_regular(2)}, cycle lengths: {lengths}")
    print(f"  induced partition: {red2.induced_partition_on_l()} = join: {pa2.join(pb2)}")


def rank_demo() -> None:
    print("\n== Rank certificates (Theorem 2.3 / Lemma 4.1) ==")
    print(f"  rank(M_5) = B_5 = {bell_number(5)}: {m_matrix_is_full_rank(5)}")
    print(f"  rank(E_8) = 8!/(2^4 4!) = {perfect_matching_count(8)}: {e_matrix_is_full_rank(8)}")


def simulation_demo() -> None:
    n = 8
    pa = SetPartition.from_string(8, "(1,2)(3,4)(5,6)(7,8)")
    pb = SetPartition.from_string(8, "(1,3)(2,4)(5,7)(6,8)")
    rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    print(f"\n== Section 4.3: Alice/Bob simulate a KT-1 BCC(1) algorithm ==")
    proto = BCCSimulationProtocol(
        "two_partition", components_factory(2), rounds, mode="components"
    )
    result = proto.run(pa, pb)
    per_round = simulation_bits_per_round("two_partition", n)
    print(f"  simulated BCC rounds: {rounds}")
    print(f"  protocol bits: {result.total_bits} (= {rounds} rounds x {per_round} bits)")
    print(f"  Alice outputs P_A v P_B = {result.alice_output}")
    print(f"  Bob   outputs P_A v P_B = {result.bob_output}")

    print("\n== Theorem 4.4: the implied round bounds ==")
    print(f"  {'N':>6s}  {'CC bits':>10s}  {'rounds >=':>10s}  {'upper bound':>12s}")
    for m in (8, 32, 128):
        row = multicycle_round_bound(m)
        upper = neighbor_exchange_rounds(1, 2, id_bit_width(3 * m))
        print(
            f"  {2 * m:6d}  {row.cc_bits:10.1f}  {row.round_lower_bound:10.3f}"
            f"  {upper:12d}"
        )
    print("  (lower bound below, upper bound above -- both Theta(log N))")


if __name__ == "__main__":
    figure_2_demo()
    rank_demo()
    simulation_demo()
