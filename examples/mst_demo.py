#!/usr/bin/env python3
"""MST in the broadcast clique: the paper's companion problem.

The introduction contrasts BCC(b) with the unicast clique, where MST
takes O(1) rounds [JN18]. In the broadcast model the natural algorithm is
Boruvka at one edge-proposal per vertex per phase. This example runs the
library's distributed Boruvka MST on random weighted graphs, checks it
edge-for-edge against the sequential Kruskal ground truth, and reports the
O(log n) phase count.

    python examples/mst_demo.py
"""

import random

from repro.core import BCCInstance, BCCModel, Simulator
from repro.algorithms import boruvka_mst_factory, mst_bandwidth, mst_max_rounds
from repro.graphs import forest_weight, gnp_random_graph, kruskal, random_weights


def main() -> None:
    rng = random.Random(42)
    print("== Distributed Boruvka MST vs sequential Kruskal ==\n")
    print(f"  {'n':>4s}  {'edges':>6s}  {'rounds':>7s}  {'budget':>7s}  "
          f"{'weight':>9s}  {'identical':>9s}")
    for n in (8, 12, 16, 24):
        g = gnp_random_graph(n, 0.35, rng)
        weights = {e: int(w) for e, w in random_weights(g, rng).items()}
        inst = BCCInstance.kt1_from_graph(g)
        sim = Simulator(BCCModel(bandwidth=mst_bandwidth(n), kt=1))
        res = sim.run_until_done(
            inst, boruvka_mst_factory(weights), mst_max_rounds(n) + 2
        )
        float_weights = {e: float(w) for e, w in weights.items()}
        truth = kruskal(g, float_weights)
        distributed = set(res.outputs[0])
        print(
            f"  {n:4d}  {g.edge_count:6d}  {res.rounds_executed:7d}  "
            f"{mst_max_rounds(n):7d}  "
            f"{forest_weight(distributed, float_weights):9.0f}  "
            f"{str(distributed == truth):>9s}"
        )
    print(
        "\n  One broadcast proposal per vertex per phase, O(log n) phases;"
        "\n  every vertex ends holding the same (exact) minimum forest."
        "\n  In BCC(1) each proposal costs Theta(log n) rounds of bits, so"
        "\n  this sits right at the paper's Omega(log n) frontier."
    )


if __name__ == "__main__":
    main()
