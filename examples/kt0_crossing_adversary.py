#!/usr/bin/env python3
"""The KT-0 edge-crossing machinery end to end (Section 3).

Recreates Figure 1 (a port-preserving crossing) on a live instance,
validates Lemma 3.4 on real transcripts, and then runs the Theorem 3.5
star adversary against three algorithms of increasing strength, printing
the forced error of each.

    python examples/kt0_crossing_adversary.py
"""

from repro.core import (
    BCC1_KT0,
    ConstantAlgorithm,
    SilentAlgorithm,
    Simulator,
    distributional_error,
)
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.crossing import check_lemma_3_4, cross
from repro.instances import one_cycle_instance
from repro.lowerbounds import fool_algorithm, star_distribution, theorem_3_5_error_bound


def figure_1_demo() -> None:
    n = 12
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (5, 6)
    crossed = cross(inst, e1, e2)
    print(f"== Figure 1: crossing edges {e1} and {e2} of a {n}-cycle ==")
    comps = sorted(len(c) for c in crossed.input_graph().connected_components())
    print(f"  input graph after crossing: two cycles of sizes {comps}")
    same_ports = all(inst.input_ports(v) == crossed.input_ports(v) for v in range(n))
    print(f"  every vertex keeps identical input ports: {same_ports}")

    premise, conclusion = check_lemma_3_4(
        Simulator(BCC1_KT0), inst, crossed, ConstantAlgorithm, e1, e2, rounds=6
    )
    print(f"  Lemma 3.4 on a live run: premise={premise}, indistinguishable={conclusion}")


def star_adversary_demo() -> None:
    n = 30
    sim = Simulator(BCC1_KT0)
    print(f"\n== Theorem 3.5 star adversary, n = {n} ==")
    print(f"  closed-form error floor at t=1: {theorem_3_5_error_bound(n, 1):.4f}")

    full = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
    algorithms = [
        ("silent (never speaks)", SilentAlgorithm, 3),
        ("constant (always '1')", ConstantAlgorithm, 3),
        ("neighbor-exchange, truncated", connectivity_factory(2), 4),
        ("neighbor-exchange, full schedule", connectivity_factory(2), full),
    ]
    for name, factory, rounds in algorithms:
        report = fool_algorithm(sim, factory, n, rounds)
        print(
            f"  {name:34s} t={rounds:3d}: |S'|={report.largest_class_size:2d}, "
            f"fooled pairs={report.fooled_pairs:3d}, "
            f"achieved error={report.achieved_error:.3f}"
        )

    # the same story via measured distributional error on the distribution
    dist = star_distribution(n)
    err = distributional_error(sim, dist, SilentAlgorithm, rounds=3)
    print(f"\n  measured distributional error of the silent algorithm: {err:.3f}")
    print("  (exactly the NO-side mass: it answers YES everywhere)")


if __name__ == "__main__":
    figure_1_demo()
    star_adversary_demo()
