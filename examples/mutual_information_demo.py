#!/usr/bin/env python3
"""Theorem 4.5 end to end: information forces Omega(log n) rounds.

Evaluates the exact mutual information I(P_A; Pi) of PartitionComp
protocols over the full hard distribution (P_A uniform, P_B the finest
partition), including a *real* KT-1 BCC(1) ConnectedComponents algorithm
driven through the Section 4.3 simulation, and an artificially lossy
protocol demonstrating the (1 - eps) H(P_A) floor.

    python examples/mutual_information_demo.py
"""

from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
from repro.information import evaluate_protocol, information_lower_bound
from repro.lowerbounds import components_round_bound, measure_bcc_algorithm_information
from repro.partitions import log2_bell
from repro.twoparty import LossyPartitionCompProtocol, TrivialPartitionCompProtocol


def main() -> None:
    n = 5
    print(f"== PartitionComp hard distribution, n = {n} (B_n partitions) ==")
    print(f"  H(P_A) = log2 B_{n} = {log2_bell(n):.3f} bits\n")

    print("Error-free trivial protocol:")
    report = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
    print(f"  I(P_A; Pi)      = {report.information:.3f} bits (= H(P_A))")
    print(f"  H(P_A | Pi)     = {report.residual_entropy:.3e} bits")
    print(f"  max |Pi|        = {report.max_transcript_bits} bits >= I: {report.chain_holds()}")

    print("\nLossy protocols (the constant-error regime of Theorem 4.5):")
    for eps in (0.2, 0.4, 0.6):
        rep = evaluate_protocol(LossyPartitionCompProtocol(n, eps), n)
        floor = information_lower_bound(n, rep.error_rate)
        print(
            f"  eps~{eps:.1f}: measured error {rep.error_rate:.3f}, "
            f"I = {rep.information:.3f} >= (1-eps) H = {floor:.3f}"
        )

    print("\nA real KT-1 BCC(1) ConnectedComponents algorithm, simulated:")
    m = 4
    w = id_bit_width(4 * m)
    rounds = neighbor_exchange_rounds(1, m + 1, w)
    real = measure_bcc_algorithm_information(components_factory(m + 1, id_bits=w), m, rounds)
    print(
        f"  n = {m}: {rounds} BCC rounds, error {real.error_rate:.0%}, "
        f"I = {real.information:.3f} = H(P_A) = {real.input_entropy:.3f}"
    )

    print("\nImplied round lower bounds (eps = 1/3):")
    print(f"  {'n':>6s}  {'(1-eps) log2 B_n':>18s}  {'rounds >=':>10s}")
    for k in (8, 32, 128, 512):
        row = components_round_bound(k)
        print(f"  {k:6d}  {row.information_bound_bits:18.1f}  {row.round_lower_bound:10.3f}")
    print("  growing as Theta(log n): Theorem 4.5.")


if __name__ == "__main__":
    main()
