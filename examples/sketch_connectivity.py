#!/usr/bin/env python3
"""Linear-sketch connectivity in the broadcast clique (upper-bound family).

The paper's tightness remark cites sketching upper bounds; this example
runs the library's AGM-style randomized sketch algorithm on random graphs
of growing density, next to the Theta(n) full-adjacency baseline and the
Theta(log n) neighborhood exchange (which needs bounded degree) --
showing where each comparator applies and who wins.

    python examples/sketch_connectivity.py
"""

import random

from repro.core import BCC1_KT1, BCCInstance, BCCModel, PublicCoin, Simulator
from repro.algorithms import (
    agm_components_factory,
    agm_total_rounds,
    components_factory,
    full_adjacency_components_factory,
    id_bit_width,
    neighbor_exchange_rounds,
)
from repro.graphs import gnp_random_graph, labels_agree_with_components, one_cycle


def main() -> None:
    rng = random.Random(2024)
    n = 12
    bandwidth = 32

    print(f"== Sketch connectivity on G({n}, p), BCC({bandwidth}), KT-1 ==\n")
    sim = Simulator(BCCModel(bandwidth=bandwidth, kt=1))
    for p in (0.08, 0.2, 0.5):
        g = gnp_random_graph(n, p, rng)
        inst = BCCInstance.kt1_from_graph(g)
        res = sim.run_until_done(
            inst, agm_components_factory(), 5000, coin=PublicCoin(f"demo-{p}")
        )
        valid = labels_agree_with_components(
            g, {v: res.outputs[v] for v in range(n)}
        )
        comps = len(set(res.outputs))
        print(
            f"  p = {p:.2f}: {g.edge_count:3d} edges, {comps} components found, "
            f"labels valid: {valid}, rounds: {res.rounds_executed}"
        )

    print("\n== Round complexity of the three upper bounds on a cycle ==")
    print(f"  {'n':>5s}  {'NeighborExchange/BCC(1)':>24s}  {'FullAdjacency/BCC(1)':>21s}  {'AGM/BCC(32)':>12s}")
    for m in (16, 64, 256, 1024):
        ne = neighbor_exchange_rounds(1, 2, id_bit_width(m - 1))
        print(f"  {m:5d}  {ne:24d}  {m:21d}  {agm_total_rounds(m, bandwidth):12d}")
    print(
        "\n  NeighborExchange is Theta(log n) but needs bounded degree;"
        "\n  AGM is polylog on ANY graph; FullAdjacency is the Theta(n)"
        "\n  fallback. The paper's Omega(log n) bound says none of them can"
        "\n  be beaten by more than constants on uniformly sparse inputs."
    )

    # sanity: the sketch algorithm agrees with the exchange on a cycle
    g = one_cycle(10)
    inst = BCCInstance.kt1_from_graph(g)
    res_sketch = sim.run_until_done(
        inst, agm_components_factory(), 5000, coin=PublicCoin("cycle")
    )
    res_ne = Simulator(BCC1_KT1).run_until_done(
        inst, components_factory(2), 1000
    )
    agree = set(res_sketch.outputs) == set(res_ne.outputs) == {0}
    print(f"\n  cross-check on a 10-cycle: both algorithms label component 0: {agree}")


if __name__ == "__main__":
    main()
