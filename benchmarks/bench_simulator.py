"""E0 -- the round engine itself, with metrics on.

Every other experiment stands on `Simulator.run`, so its throughput (and
the cost of observability) is worth a record of its own. Times the raw
engine on a cycle, checks the instrumented counters agree exactly with
the `RunResult` accounting, and measures the metrics-enabled overhead --
the no-op path (no registry installed) must stay within a few percent of
the pre-instrumentation engine.
"""

import pytest

from repro.analysis import print_table
from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
from repro.instances import one_cycle_instance
from repro.obs import MetricsRegistry, use_registry

SIM = Simulator(BCC1_KT0)


@pytest.mark.parametrize("n", [32, 64])
def test_engine_throughput(benchmark, n):
    """Raw rounds/sec of the engine with observability disabled."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8

    result = benchmark(SIM.run, inst, ConstantAlgorithm, rounds)
    print_table(
        "E0: round engine throughput (metrics off)",
        ["n", "rounds", "bits broadcast", "bits predicted"],
        [[n, result.rounds_executed, result.total_bits_broadcast(), n * rounds]],
    )
    assert result.rounds_executed == rounds
    assert result.total_bits_broadcast() == n * rounds


def test_engine_metrics_agree(benchmark):
    """Instrumented counters match the RunResult accounting exactly."""
    n, rounds = 24, 6
    inst = one_cycle_instance(n, kt=0)

    def kernel():
        registry = MetricsRegistry()
        with use_registry(registry):
            result = SIM.run(inst, ConstantAlgorithm, rounds)
        return result, registry.snapshot()

    result, snap = benchmark(kernel)
    counters = snap["counters"]
    print_table(
        "E0: instrumented run, counters vs RunResult",
        ["metric", "counter", "run result"],
        [
            ["rounds", counters["simulator.rounds_executed"], result.rounds_executed],
            ["bits", counters["simulator.bits_broadcast"], result.total_bits_broadcast()],
            ["messages", counters["simulator.messages_validated"], n * rounds],
        ],
    )
    assert counters["simulator.rounds_executed"] == result.rounds_executed
    assert counters["simulator.bits_broadcast"] == result.total_bits_broadcast()
    assert counters["simulator.messages_validated"] == n * rounds
    assert snap["histograms"]["simulator.round_seconds"]["count"] == rounds
