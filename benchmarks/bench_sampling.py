"""E9 supplement -- sampled information estimation beyond exact n.

Exact Theorem 4.5 evaluation enumerates B_n partitions; the sampled
estimator extends the measurement to ground sets where that is
impractical, with the Miller-Madow correction and saturation flag
reported. Shape check: the estimate tracks the exact value at small n and
keeps growing with n (until the log2(samples) cap)."""

import random

import pytest

from repro.analysis import print_table
from repro.information import estimate_protocol_information, evaluate_protocol
from repro.partitions import log2_bell
from repro.twoparty import TrivialPartitionCompProtocol


def test_sampled_vs_exact(benchmark):
    n = 5
    samples = 3000

    def kernel():
        return estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples, random.Random(0)
        )

    report = benchmark(kernel)
    exact = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
    print_table(
        "E9+: sampled vs exact information (error-free protocol)",
        ["n", "samples", "I sampled", "I corrected", "I exact", "saturated"],
        [
            [
                n,
                samples,
                report.information_estimate,
                report.corrected_information,
                exact.information,
                report.saturated,
            ]
        ],
    )
    assert abs(report.information_estimate - exact.information) < 0.15


def test_sampled_growth_curve(benchmark):
    samples = 1500

    def kernel():
        rows = []
        for n in (4, 6, 8, 10):
            rep = estimate_protocol_information(
                TrivialPartitionCompProtocol(n), n, samples, random.Random(n)
            )
            rows.append(
                [n, rep.information_estimate, rep.true_input_entropy, rep.saturated]
            )
        return rows

    rows = benchmark(kernel)
    print_table(
        "E9+: sampled information vs log2 B_n across n",
        ["n", "I sampled", "log2 B_n", "saturated"],
        rows,
    )
    estimates = [r[1] for r in rows]
    assert all(b >= a for a, b in zip(estimates, estimates[1:]))
