"""E5 -- Theorem 2.1 + Theorem 3.1: constant-error forced mistakes.

Builds the full indistinguishability graph at enumerable n, exercises the
polygamous-Hall k-matching machinery on it, and measures the exact forced
error of concrete algorithms under the uniform V1/V2 hard distribution --
constant (1/2) for symmetric algorithms at any t, decaying to 0 only once
t reaches the Theta(log n) budget of the neighborhood-exchange algorithm.
"""

import random

import pytest

from repro.core import BCC1_KT0, ConstantAlgorithm, SilentAlgorithm, Simulator
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.analysis import print_table
from repro.indist import (
    build_combinatorial_graph,
    k_matching_size,
    sampled_hall_check,
)
from repro.lowerbounds import forced_error_curve, forced_error_of_algorithm

SIM = Simulator(BCC1_KT0)


def test_hall_and_k_matching_on_g0(benchmark):
    """Polygamous Hall machinery on the full G^0 at n = 7."""
    n = 7

    def kernel():
        graph = build_combinatorial_graph(n)
        rng = random.Random(0)
        violations = sampled_hall_check(graph, 1, rng, samples=60, max_subset=10)
        # |V2| < |V1| at small n, so saturating V1 is impossible; measure
        # the max 1-matching instead (the finite-n shadow of the k-matching)
        matching = k_matching_size(graph, 1)
        return graph, violations, matching

    graph, violations, matching = benchmark(kernel)
    print_table(
        "E5: G^0 at n = 7 and its matching structure",
        ["|V1|", "|V2|", "edges", "max 1-matching", "sampled Hall(k=1) violations (small-S)"],
        [[len(graph.left), len(graph.right), graph.edge_count(), matching, len(violations)]],
    )
    # every two-cycle cover is reachable: the matching saturates V2
    assert matching == len(graph.right)


@pytest.mark.parametrize(
    "name,factory",
    [("silent", SilentAlgorithm), ("constant", ConstantAlgorithm)],
)
def test_symmetric_algorithms_forced_half(benchmark, name, factory):
    n = 6

    def kernel():
        return forced_error_of_algorithm(SIM, factory, n, rounds=3)

    report = benchmark(kernel)
    print_table(
        f"E5: forced error of the {name} algorithm (n = 6, t = 3)",
        ["|V1|", "YES on V1", "fooled V2 instances", "forced error"],
        [
            [
                report.one_cycle_count,
                report.yes_on_one_cycles,
                report.fooled_two_cycle_instances,
                report.forced_error,
            ]
        ],
    )
    assert report.forced_error == pytest.approx(0.5, abs=1e-9)


def test_forced_error_decay_curve(benchmark):
    """Forced error vs t for the real NeighborExchange algorithm: constant
    until the schedule completes at Theta(log n) rounds, then zero."""
    n = 6
    full = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))

    def kernel():
        return forced_error_curve(
            SIM, connectivity_factory(2), n, [0, 2, full // 2, full]
        )

    curve = benchmark(kernel)
    print_table(
        "E5: forced error of NeighborExchange vs rounds (n = 6)",
        ["t", "forced error"],
        [[t, e] for t, e in curve],
    )
    assert curve[0][1] == pytest.approx(0.5)
    assert curve[-1][1] == pytest.approx(0.0)
