"""E3 -- Lemma 3.7: degree profiles in the indistinguishability graph G^0.

For one-cycle instances: the per-split neighbor counts (n per split
i < n/2, n/2 at i = n/2) and the exact total degree n(n-5)/2. For
two-cycle instances with split i: measured degree 2 i (n - i) (the paper's
orientation-fixed count i (n - i), times the two orientation variants).
"""

import pytest

from repro.analysis import print_table
from repro.indist import (
    measured_one_cycle_degree,
    measured_two_cycle_degree,
    one_cycle_degree,
    one_cycle_neighbor_split_counts,
    predicted_split_counts,
    two_cycle_degree,
)
from repro.instances import enumerate_one_cycle_covers, enumerate_two_cycle_covers


@pytest.mark.parametrize("n", [9, 11])
def test_one_cycle_degree_profile(benchmark, n):
    cover = next(enumerate_one_cycle_covers(n))

    def kernel():
        return (
            measured_one_cycle_degree(cover),
            one_cycle_neighbor_split_counts(cover),
        )

    degree, splits = benchmark(kernel)
    predicted = predicted_split_counts(n)
    rows = [
        [n, i, splits.get(i, 0), predicted.get(i, 0)]
        for i in sorted(set(splits) | set(predicted))
    ]
    print_table(
        "E3: Lemma 3.7 split profile of a one-cycle instance (t = 0, d = n)",
        ["n", "split i", "measured #neighbors", "predicted"],
        rows,
    )
    print_table(
        "E3: total one-cycle degree",
        ["n", "measured", "exact n(n-5)/2", "paper's n(n-3)/2"],
        [[n, degree, one_cycle_degree(n), n * (n - 3) // 2]],
    )
    assert degree == one_cycle_degree(n)
    for i, count in splits.items():
        assert count == predicted[i]


@pytest.mark.parametrize("n", [9, 10])
def test_two_cycle_degrees(benchmark, n):
    covers = {}
    for cover in enumerate_two_cycle_covers(n):
        covers.setdefault(cover.cycle_lengths()[0], cover)

    def kernel():
        return {i: measured_two_cycle_degree(c) for i, c in covers.items()}

    measured = benchmark(kernel)
    rows = [
        [n, i, measured[i], two_cycle_degree(n, i), i * (n - i)]
        for i in sorted(measured)
    ]
    print_table(
        "E3: two-cycle instance degrees by split (Lemma 3.7 / 3.9)",
        ["n", "split i", "measured", "2 i (n-i)", "paper's i (n-i)"],
        rows,
    )
    for i in measured:
        assert measured[i] == two_cycle_degree(n, i)
