"""E10 supplement -- MST in the broadcast clique (the paper's companion
problem: O(1) in CC(log n) by [JN18]; here the broadcast Boruvka analogue
in O(log n) one-proposal-per-vertex rounds, verified against Kruskal)."""

import random

import pytest

from repro.core import BCCInstance, BCCModel, Simulator
from repro.analysis import print_table
from repro.algorithms import boruvka_mst_factory, mst_bandwidth, mst_max_rounds
from repro.graphs import forest_weight, gnp_random_graph, kruskal, random_weights


@pytest.mark.parametrize("n", [10, 16])
def test_broadcast_mst(benchmark, n):
    rng = random.Random(n)
    g = gnp_random_graph(n, 0.4, rng)
    weights = {e: int(w) for e, w in random_weights(g, rng).items()}
    inst = BCCInstance.kt1_from_graph(g)
    sim = Simulator(BCCModel(bandwidth=mst_bandwidth(n), kt=1))

    def kernel():
        return sim.run_until_done(
            inst, boruvka_mst_factory(weights), mst_max_rounds(n) + 2
        )

    res = benchmark(kernel)
    float_weights = {e: float(w) for e, w in weights.items()}
    truth = kruskal(g, float_weights)
    distributed = set(res.outputs[0])
    print_table(
        "E10+: broadcast Boruvka MST vs Kruskal",
        ["n", "edges", "rounds", "budget", "weight (distributed)", "weight (Kruskal)", "identical"],
        [
            [
                n,
                g.edge_count,
                res.rounds_executed,
                mst_max_rounds(n) + 2,
                forest_weight(distributed, float_weights),
                forest_weight(truth, float_weights),
                distributed == truth,
            ]
        ],
    )
    assert distributed == truth
