"""Ablations: why the design choices in the paper's constructions matter.

A1. *Port preservation*: crossing input edges WITHOUT the Definition 3.3
    port rewiring is immediately distinguishable (already at t = 0 the
    local views differ) -- the rewiring is what makes the adversary work.
A2. *Matching engine*: Hopcroft-Karp vs greedy matching on G^0 -- greedy
    can strand fooling instances; HK certifies the maximum.
A3. *Rank engines*: Bareiss (exact over Q) vs mod-p elimination on E_n --
    both certify Lemma 4.1; mod-p is the one that scales.
A4. *PLS labels*: spanning-tree (3W bits) vs transcript-of-algorithm
    (2t bits) verification complexity -- both Theta(log n), tight against
    the [PP17] verification lower bound.
"""

import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, ConstantAlgorithm, Simulator
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.analysis import print_table
from repro.crossing import cross, indistinguishable_runs
from repro.indist import BipartiteGraph, build_combinatorial_graph, maximum_matching_size
from repro.instances import one_cycle_instance
from repro.partitions import build_e_matrix, perfect_matching_count, rank_bareiss, rank_mod_p
from repro.pls import SpanningTreePLS, TranscriptPLS


def _naive_cross(instance, e1, e2):
    """Swap the input edges but keep the original wiring (the ablated
    crossing: what Definition 3.3 would be without port preservation)."""
    (v1, u1), (v2, u2) = e1, e2
    edges = set(instance.input_edges)
    edges.discard((min(v1, u1), max(v1, u1)))
    edges.discard((min(v2, u2), max(v2, u2)))
    edges.add((min(v1, u2), max(v1, u2)))
    edges.add((min(v2, u1), max(v2, u1)))
    return instance.replace(input_edges=edges)


def test_a1_port_preservation_matters(benchmark):
    n = 12
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (5, 6)
    sim = Simulator(BCC1_KT0)

    def kernel():
        proper = cross(inst, e1, e2)
        naive = _naive_cross(inst, e1, e2)
        run = sim.run(inst, ConstantAlgorithm, 3)
        run_proper = sim.run(proper, ConstantAlgorithm, 3)
        run_naive = sim.run(naive, ConstantAlgorithm, 3)
        return (
            indistinguishable_runs(sim, run, run_proper),
            indistinguishable_runs(sim, run, run_naive),
        )

    proper_indist, naive_indist = benchmark(kernel)
    print_table(
        "A1: crossing with vs without port rewiring (symmetric algorithm, t = 3)",
        ["variant", "indistinguishable from original"],
        [
            ["Definition 3.3 (ports rewired)", proper_indist],
            ["naive edge swap (ports kept)", naive_indist],
        ],
    )
    assert proper_indist and not naive_indist


def test_a2_matching_engines(benchmark):
    n = 7
    graph = build_combinatorial_graph(n)

    def greedy(g: BipartiteGraph) -> int:
        used = set()
        size = 0
        for left in sorted(g.left, key=repr):
            for r in sorted(g.neighbors(left), key=repr):
                if r not in used:
                    used.add(r)
                    size += 1
                    break
        return size

    def kernel():
        return maximum_matching_size(graph), greedy(graph)

    hk, greedy_size = benchmark(kernel)
    print_table(
        "A2: Hopcroft-Karp vs greedy matching on G^0 (n = 7)",
        ["engine", "matching size", "saturates V2"],
        [
            ["Hopcroft-Karp", hk, hk == len(graph.right)],
            ["greedy", greedy_size, greedy_size == len(graph.right)],
        ],
    )
    assert hk >= greedy_size
    assert hk == len(graph.right)


@pytest.mark.parametrize("engine", ["bareiss", "mod_p"])
def test_a3_rank_engines(benchmark, engine):
    n = 6
    _matchings, matrix = build_e_matrix(n)

    if engine == "bareiss":
        rank = benchmark(rank_bareiss, matrix)
    else:
        rank = benchmark(rank_mod_p, matrix, 1_000_003)
    print_table(
        f"A3: rank(E_{n}) via {engine}",
        ["n", "engine", "rank", "predicted"],
        [[n, engine, rank, perfect_matching_count(n)]],
    )
    assert rank == perfect_matching_count(n)


def test_a4_pls_label_sizes(benchmark):
    def kernel():
        rows = []
        for n in (8, 16, 32):
            st_scheme = SpanningTreePLS()
            inst = one_cycle_instance(n, kt=1)
            st_bits = st_scheme.verification_complexity(inst)
            rounds = neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
            tr_scheme = TranscriptPLS(
                Simulator(BCC1_KT1), connectivity_factory(2), rounds
            )
            assert st_scheme.completeness_holds(inst)
            assert tr_scheme.completeness_holds(inst)
            rows.append([n, st_bits, tr_scheme.verification_complexity()])
        return rows

    rows = benchmark(kernel)
    print_table(
        "A4: PLS verification complexity (bits) -- both Theta(log n)",
        ["n", "spanning-tree (3W)", "transcript (2t)"],
        rows,
    )
    for _n, st_bits, tr_bits in rows:
        assert st_bits > 0 and tr_bits > 0
