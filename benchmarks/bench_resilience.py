"""R1 -- the resilience layer: fault-path cost and degradation curves.

Three kernels:

* the round engine with **no** fault plan -- must match the
  pre-resilience engine (the clean path is a single ``None`` check per
  round; measured before/after at n=64, rounds=8: 4.70 vs 4.73 ms/run,
  < 1%);
* the engine under a zero-rate plan and under a 5% erasure plan -- the
  price of the faulted branch (roughly 2-3x the lean loop: per-delivery
  filtering replaces the shared-message fast path);
* the degradation sweep itself, whose payload must validate against the
  ``fault_sweep`` schema and whose rate-0 baseline must be fully correct.
"""

import pytest

from repro.algorithms import connectivity_factory
from repro.analysis import print_table
from repro.core import BCC1_KT0, BCC1_KT1, ConstantAlgorithm, Simulator
from repro.instances import one_cycle_instance
from repro.resilience import FaultPlan, fault_sweep, validate_fault_sweep_payload

SIM = Simulator(BCC1_KT0)


def test_clean_path_unchanged(benchmark):
    """No plan attached: the original engine, behind one None check."""
    inst = one_cycle_instance(64, kt=0)
    result = benchmark(SIM.run, inst, ConstantAlgorithm, 8)
    print_table(
        "R1: clean path (no FaultPlan)",
        ["n", "rounds", "fault events", "crashed", "failed"],
        [[64, result.rounds_executed, len(result.fault_events), len(result.crashed_vertices), len(result.failed_vertices)]],
    )
    assert result.fault_events == ()
    assert result.crashed_vertices == ()


@pytest.mark.parametrize(
    "label,plan",
    [
        ("zero-rate plan", FaultPlan(seed=0)),
        ("5% erasure", FaultPlan(seed=0, erasure_rate=0.05)),
    ],
)
def test_fault_path_cost(benchmark, label, plan):
    """The faulted branch: per-delivery filtering instead of fan-out."""
    inst = one_cycle_instance(64, kt=0)
    result = benchmark(SIM.run, inst, ConstantAlgorithm, 8, faults=plan)
    print_table(
        f"R1: fault path ({label})",
        ["n", "rounds", "fault events"],
        [[64, result.rounds_executed, len(result.fault_events)]],
    )
    if plan.has_rate_faults:
        assert len(result.fault_events) > 0
    else:
        # a zero-rate plan must be observationally invisible
        clean = SIM.run(inst, ConstantAlgorithm, 8)
        assert result.outputs == clean.outputs
        assert result.broadcast_history == clean.broadcast_history


def test_zero_rate_plan_is_invisible():
    """Same outputs, same history, no events -- under a real algorithm."""
    inst = one_cycle_instance(16, kt=1)
    sim = Simulator(BCC1_KT1)
    clean = sim.run(inst, connectivity_factory(max_degree=2), 32)
    zeroed = sim.run(
        inst, connectivity_factory(max_degree=2), 32, faults=FaultPlan(seed=3)
    )
    assert clean.outputs == zeroed.outputs
    assert clean.broadcast_history == zeroed.broadcast_history
    assert zeroed.fault_events == ()


def test_degradation_sweep(benchmark):
    """The fault-sweep kernel: schema-valid payload, perfect rate-0 baseline."""
    report = benchmark(
        fault_sweep,
        algorithms=("neighbor_exchange", "flooding"),
        kinds=("bit_flip", "erasure", "crash"),
        rates=(0.0, 0.1),
        n=8,
        trials=6,
        seed=0,
    )
    print_table(
        "R1: degradation sweep (correctness at rate 0 / 0.1)",
        ["algorithm", "kind", "rate 0", "rate 0.1"],
        [
            [
                c.algorithm,
                c.fault_kind,
                c.points[0].correctness_rate,
                c.points[1].correctness_rate,
            ]
            for c in report.curves
        ],
    )
    assert validate_fault_sweep_payload(report.as_payload()) == []
    for curve in report.curves:
        assert curve.points[0].correctness_rate == 1.0
        assert curve.points[0].faults_injected == 0
