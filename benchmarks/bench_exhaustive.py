"""E5 supplement -- a true universal quantifier at miniature scale.

Theorem 3.1 says *every* o(log n)-round algorithm errs with constant
probability. The other engines measure given algorithms; this benchmark
enumerates the entire ID-oblivious 1-round class (|alphabet|^n
algorithms, each granted the best possible output rule) and reports the
minimum forced error over the class -- a statement with the theorem's
quantifier structure, decided exhaustively.
"""

import pytest

from repro.analysis import print_table
from repro.lowerbounds import universal_bound_id_oblivious


@pytest.mark.parametrize("n", [6, 7])
def test_universal_bound(benchmark, n):
    report = benchmark(universal_bound_id_oblivious, n)
    print_table(
        "E5+: min forced error over ALL ID-oblivious 1-round algorithms",
        ["n", "class size", "min forced error", "worst assignment", "positive"],
        [
            [
                report.n,
                report.class_size,
                report.minimum_forced_error,
                "".join(c if c else "_" for c in report.worst_assignment),
                report.minimum_forced_error > 0,
            ]
        ],
    )
    assert report.minimum_forced_error > 0


def test_alphabet_comparison(benchmark):
    def kernel():
        return (
            universal_bound_id_oblivious(6),
            universal_bound_id_oblivious(6, alphabet=("0", "1")),
            universal_bound_id_oblivious(6, alphabet=("1",)),
        )

    full, binary, constant = benchmark(kernel)
    print_table(
        "E5+: universal bound by broadcast alphabet (n = 6)",
        ["alphabet", "class size", "min forced error"],
        [
            ["{0, 1, silence}", full.class_size, full.minimum_forced_error],
            ["{0, 1}", binary.class_size, binary.minimum_forced_error],
            ["{constant}", constant.class_size, constant.minimum_forced_error],
        ],
    )
    assert constant.minimum_forced_error == pytest.approx(0.5)
    assert full.minimum_forced_error <= binary.minimum_forced_error <= 0.5
