"""P3 -- packed/batched compute kernels vs the pure-python reference engines.

Times the three kernel families introduced by the kernels package -- GF(2)
word-packed rank, numpy-batched mod-p rank, bitset Hopcroft-Karp, and the
batched crossing-pair filter behind the indistinguishability graph builder --
against the reference implementations they shadow, and asserts the packed
results are identical to the reference results on every benchmarked input.
Speed is reported; only identity is asserted (the machine-gated speedup
check lives in the ``kernels`` harness spec, warn-only).
"""

import pytest

from repro.analysis import print_table
from repro.indist import (
    BipartiteGraph,
    build_combinatorial_graph,
    hopcroft_karp,
    is_valid_matching,
    saturates,
)
from repro.partitions import DEFAULT_PRIMES, build_m_matrix, rank_mod_p


def _random_bipartite(lefts: int, rights: int, density: float, seed: int) -> BipartiteGraph:
    import random

    rng = random.Random(seed)
    g = BipartiteGraph()
    for u in range(lefts):
        g.add_left(("L", u))
    for v in range(rights):
        g.add_right(("R", v))
    for u in range(lefts):
        for v in range(rights):
            if rng.random() < density:
                g.add_edge(("L", u), ("R", v))
    return g


@pytest.mark.parametrize("n", [4, 5])
def test_gf2_rank(benchmark, n):
    """Word-packed GF(2) elimination matches the reference rank mod 2."""
    _parts, matrix = build_m_matrix(n)

    def kernel():
        return rank_mod_p(matrix, 2, kernel="packed")

    fast = benchmark(kernel)
    ref = rank_mod_p(matrix, 2, kernel="reference")
    print_table(
        "P3: GF(2) rank, packed vs reference",
        ["n", "rows", "packed rank", "reference rank", "identical"],
        [[n, len(matrix), fast, ref, fast == ref]],
    )
    assert fast == ref


@pytest.mark.parametrize("n", [4, 5])
def test_modp_rank(benchmark, n):
    """Batched int64 elimination matches the reference rank mod p."""
    _parts, matrix = build_m_matrix(n)
    p = DEFAULT_PRIMES[0]

    def kernel():
        return rank_mod_p(matrix, p, kernel="packed")

    fast = benchmark(kernel)
    ref = rank_mod_p(matrix, p, kernel="reference")
    print_table(
        "P3: mod-p rank, batched vs reference",
        ["n", "rows", "p", "packed rank", "reference rank", "identical"],
        [[n, len(matrix), p, fast, ref, fast == ref]],
    )
    assert fast == ref


@pytest.mark.parametrize("seed", [0, 1])
def test_bitset_matching(benchmark, seed):
    """Bitset Hopcroft-Karp finds a maximum matching of the reference size."""
    graph = _random_bipartite(60, 60, 0.08, seed=seed)

    def kernel():
        return hopcroft_karp(graph, kernel="packed")

    fast = benchmark(kernel)
    ref = hopcroft_karp(graph, kernel="reference")
    print_table(
        "P3: Hopcroft-Karp, bitset vs reference",
        ["seed", "left", "right", "packed size", "reference size", "valid"],
        [[seed, 60, 60, len(fast), len(ref), is_valid_matching(graph, fast)]],
    )
    assert len(fast) == len(ref)
    assert is_valid_matching(graph, fast)
    # saturation verdicts (the engine-invariant k-matching quantity) agree
    for k in (1, 2):
        assert saturates(graph, k, kernel="packed") == saturates(graph, k, kernel="reference")


@pytest.mark.parametrize("n", [6])
def test_batched_graph_build(benchmark, n):
    """The batched crossing filter builds the identical combinatorial graph."""

    def kernel():
        return build_combinatorial_graph(n, kernel="packed")

    fast = benchmark(kernel)
    ref = build_combinatorial_graph(n, kernel="reference")
    identical = (
        sorted(fast.iter_left(), key=repr) == sorted(ref.iter_left(), key=repr)
        and sorted(fast.iter_right(), key=repr) == sorted(ref.iter_right(), key=repr)
        and all(fast.iter_neighbors(v) == ref.iter_neighbors(v) for v in fast.iter_left())
    )
    print_table(
        "P3: combinatorial graph G_n, batched vs reference",
        ["n", "lefts", "rights", "edges", "identical"],
        [[n, fast.left_count(), fast.right_count(), fast.edge_count(), identical]],
    )
    assert identical


@pytest.mark.parametrize("size", [512])
def test_four_russians_rank(benchmark, size):
    """P5: Four-Russians GF(2) elimination matches the packed bitset rank."""
    import random

    from repro.kernels import pack_rows, rank_gf2_m4ri, rank_gf2_packed

    rng = random.Random(size)
    matrix = [[rng.randrange(2) for _ in range(size)] for _ in range(size)]
    packed = pack_rows(matrix)

    def kernel():
        return rank_gf2_m4ri(list(packed), size)

    fast = benchmark(kernel)
    ref = rank_gf2_packed(list(packed), size)
    print_table(
        "P5: dense GF(2) rank, four-russians vs packed",
        ["size", "m4ri rank", "packed rank", "identical"],
        [[size, fast, ref, fast == ref]],
    )
    assert fast == ref


@pytest.mark.parametrize("n", [5])
def test_sparse_modp_rank(benchmark, n):
    """P5: sparse dict-row elimination matches the dense rank on M_n mod p."""
    from repro.kernels import rank_mod_p_sparse

    _parts, matrix = build_m_matrix(n)
    p = DEFAULT_PRIMES[0]

    def kernel():
        return rank_mod_p_sparse(matrix, p)

    fast = benchmark(kernel)
    ref = rank_mod_p(matrix, p, kernel="packed")
    print_table(
        "P5: M_n mod-p rank, sparse vs dense",
        ["n", "rows", "sparse rank", "dense rank", "identical"],
        [[n, len(matrix), fast, ref, fast == ref]],
    )
    assert fast == ref


@pytest.mark.parametrize("n", [5])
def test_streamed_matrix_rank(benchmark, n):
    """P5: the streamed block pipeline returns the dense-pipeline rank."""
    from repro.partitions import m_matrix_rank, streamed_matrix_rank

    def kernel():
        return streamed_matrix_rank(n, "m", block_rows=16)

    fast = benchmark(kernel)
    ref = m_matrix_rank(n, streamed=False)
    print_table(
        "P5: rank(M_n), streamed vs dense pipeline",
        ["n", "streamed rank", "dense rank", "identical"],
        [[n, fast, ref, fast == ref]],
    )
    assert fast == ref
