"""E6 -- Theorem 2.3 / Lemma 4.1 / Corollaries 2.4, 4.2: the rank results.

Exactly computes rank(M_n) = B_n and rank(E_n) = n!/(2^{n/2}(n/2)!), prints
the implied deterministic communication lower bounds next to the trivial
O(n log n) upper-bound protocol's measured cost.
"""

import math

import pytest

from repro.analysis import print_table
from repro.partitions import (
    SetPartition,
    bell_number,
    build_e_matrix,
    build_m_matrix,
    perfect_matching_count,
    rank_exact,
)
from repro.twoparty import TrivialPartitionProtocol, rgs_bit_width


@pytest.mark.parametrize("n", [4, 5, 6])
def test_m_matrix_rank(benchmark, n):
    """rank(M_n) = B_n (Theorem 2.3), computed exactly."""

    def kernel():
        _parts, matrix = build_m_matrix(n)
        return rank_exact(matrix)

    rank = benchmark(kernel)
    print_table(
        "E6: rank(M_n) vs B_n (Theorem 2.3)",
        ["n", "matrix dim", "rank", "B_n", "full rank"],
        [[n, bell_number(n), rank, bell_number(n), rank == bell_number(n)]],
    )
    assert rank == bell_number(n)


@pytest.mark.parametrize("n", [4, 6, 8])
def test_e_matrix_rank(benchmark, n):
    """rank(E_n) = n!/(2^{n/2}(n/2)!) (Lemma 4.1), computed exactly."""

    def kernel():
        _matchings, matrix = build_e_matrix(n)
        return rank_exact(matrix)

    rank = benchmark(kernel)
    r = perfect_matching_count(n)
    print_table(
        "E6: rank(E_n) vs n!/(2^{n/2}(n/2)!) (Lemma 4.1)",
        ["n", "matrix dim", "rank", "predicted r", "full rank"],
        [[n, r, rank, r, rank == r]],
    )
    assert rank == r


def test_cc_bounds_vs_trivial_protocol(benchmark):
    """Corollary 2.4 sandwich: log2 B_n <= D(Partition) <= n ceil(log n) + 1."""

    def kernel():
        rows = []
        for n in (4, 8, 16, 32, 64):
            lower = math.log2(bell_number(n))
            upper = n * rgs_bit_width(n) + 1
            rows.append([n, lower, upper, upper / lower])
        return rows

    rows = benchmark(kernel)
    print_table(
        "E6: Partition communication, lower (rank) vs upper (trivial protocol)",
        ["n", "log2 B_n (lower)", "n log n + 1 (upper)", "gap factor"],
        rows,
    )
    for _n, lower, upper, _gap in rows:
        assert lower <= upper

    # the trivial protocol's *measured* cost matches the closed form
    n = 8
    proto = TrivialPartitionProtocol(n)
    res = proto.run(SetPartition.finest(n), SetPartition.coarsest(n))
    assert res.total_bits == n * rgs_bit_width(n) + 1
