"""E2 -- Theorem 3.5: the warm-up pigeonhole lower bound.

Prints the closed-form forced-error table (error >= Omega(3^{-4t})) and the
implied minimum-rounds curve (Omega(c log n)), then times the operational
adversary actually fooling a concrete algorithm on the star distribution.
"""

import pytest

from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
from repro.analysis import fit_logarithmic, print_table
from repro.lowerbounds import (
    fool_algorithm,
    guaranteed_class_size,
    minimum_rounds_for_error,
    theorem_3_5_error_bound,
)

SIM = Simulator(BCC1_KT0)


def test_closed_form_error_table(benchmark):
    """The error floor of any t-round deterministic algorithm."""

    def build():
        rows = []
        for n in (3**6, 3**8, 3**10):
            for t in (0, 1, 2, 3):
                rows.append(
                    [
                        n,
                        t,
                        guaranteed_class_size(n, t),
                        theorem_3_5_error_bound(n, t),
                        3.0 ** (-4 * t) / 8,  # the Omega(3^{-4t}) shape
                    ]
                )
        return rows

    rows = benchmark(build)
    print_table(
        "E2: Theorem 3.5 forced error (any deterministic t-round algorithm)",
        ["n", "t", "|S'| guaranteed", "error floor", "~3^-4t / 8"],
        rows,
    )
    # the floor dominates the predicted shape at t >= 1
    for n_, t_, _s, err, shape in rows:
        if t_ >= 1 and err > 0:
            assert err >= shape / 10


def test_minimum_rounds_curve(benchmark):
    """t_min(n) for eps = 1/n grows like log n."""

    def build():
        return [(3**k, minimum_rounds_for_error(3**k, 3.0**-k)) for k in range(4, 16)]

    series = benchmark(build)
    ns = [n for n, _ in series]
    ts = [t for _, t in series]
    fit = fit_logarithmic(ns, ts)
    print_table(
        "E2: minimum rounds before error < 1/n (Omega(log n))",
        ["n", "t_min", "fit t ~ a ln n + b"],
        [[n, t, f"a={fit.slope:.3f}, r2={fit.r_squared:.3f}"] for n, t in series],
    )
    assert fit.slope > 0


@pytest.mark.parametrize("rounds", [1, 3])
def test_operational_adversary(benchmark, rounds):
    """Fool a concrete (symmetric) algorithm and verify every pair."""
    n = 30

    def kernel():
        return fool_algorithm(SIM, SilentAlgorithm, n, rounds)

    report = benchmark(kernel)
    print_table(
        "E2: operational star adversary vs the silent algorithm",
        ["n", "t", "|S|", "|S'|", "fooled pairs", "verified", "achieved error"],
        [
            [
                report.n,
                report.rounds,
                report.independent_set_size,
                report.largest_class_size,
                report.fooled_pairs,
                report.indistinguishable_pairs,
                report.achieved_error,
            ]
        ],
    )
    assert report.all_pairs_indistinguishable
    assert report.achieved_error >= theorem_3_5_error_bound(n, rounds)
