"""E7 -- Figure 2 / Section 4.2 / Theorem 4.3: the reduction graphs.

Rebuilds both Figure 2 constructions, verifies components <-> join over
random and exhaustive input families, and confirms the TwoPartition
variant's 2-regularity and cycle lengths >= 4 (the MultiCycle promise).
"""

import random

import pytest

from repro.analysis import print_table
from repro.partitions import (
    SetPartition,
    enumerate_perfect_matchings,
    random_partition,
    random_perfect_matching,
)
from repro.twoparty import (
    build_partition_reduction,
    build_two_partition_reduction,
    to_kt1_instance,
)


def test_figure_2_constructions(benchmark):
    """The exact Figure 2 inputs."""
    pa = SetPartition.from_string(8, "(1,2,3)(4,5,6)(7,8)")
    pb = SetPartition.from_string(8, "(1,2,6)(3,4,7)(5,8)")
    pa2 = SetPartition.from_string(8, "(1,2)(3,4)(5,6)(7,8)")
    pb2 = SetPartition.from_string(8, "(1,3)(2,4)(5,7)(6,8)")

    def kernel():
        return build_partition_reduction(pa, pb), build_two_partition_reduction(pa2, pb2)

    left, right = benchmark(kernel)
    print_table(
        "E7: Figure 2 regenerated",
        ["variant", "vertices", "edges", "induced join", "true join", "connected"],
        [
            [
                "Partition (left)",
                left.graph.vertex_count,
                left.graph.edge_count,
                str(left.induced_partition_on_l()),
                str(pa.join(pb)),
                left.is_connected(),
            ],
            [
                "TwoPartition (right)",
                right.graph.vertex_count,
                right.graph.edge_count,
                str(right.induced_partition_on_l()),
                str(pa2.join(pb2)),
                right.is_connected(),
            ],
        ],
    )
    assert left.induced_partition_on_l() == pa.join(pb)
    assert right.induced_partition_on_l() == pa2.join(pb2)
    assert right.graph.is_regular(2)


def test_theorem_4_3_random_sweep(benchmark):
    """Components <-> join over a randomized sweep of both variants."""
    rng = random.Random(17)

    def kernel():
        checked = 0
        for _ in range(30):
            n = rng.choice([4, 6, 8, 10])
            pa, pb = random_partition(n, rng), random_partition(n, rng)
            red = build_partition_reduction(pa, pb)
            assert red.induced_partition_on_l() == pa.join(pb)
            assert red.induced_partition_on_r() == pa.join(pb)
            checked += 1
            ma, mb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
            red2 = build_two_partition_reduction(ma, mb)
            assert red2.induced_partition_on_l() == ma.join(mb)
            lengths = [len(c) for c in red2.graph.cycle_decomposition()]
            assert all(l >= 4 for l in lengths)
            checked += 1
        return checked

    checked = benchmark(kernel)
    print_table(
        "E7: Theorem 4.3 random verification",
        ["instances checked", "all passed"],
        [[checked, True]],
    )


def test_exhaustive_n6_matchings(benchmark):
    """All 15 x 15 perfect-matching pairs at n = 6: connectivity of the
    reduction graph iff the join is trivial."""

    def kernel():
        matchings = list(enumerate_perfect_matchings(6))
        agreements = 0
        for pa in matchings:
            for pb in matchings:
                red = build_two_partition_reduction(pa, pb)
                assert red.is_connected() == pa.join(pb).is_coarsest()
                agreements += 1
        return agreements

    total = benchmark(kernel)
    print_table("E7: exhaustive n = 6 TwoPartition check", ["pairs", "ok"], [[total, True]])
    assert total == 225


def test_kt1_instance_construction(benchmark):
    """Wiring a reduction graph into a full KT-1 BCC instance."""
    rng = random.Random(3)
    pa = random_perfect_matching(10, rng)
    pb = random_perfect_matching(10, rng)
    red = build_two_partition_reduction(pa, pb)

    hosted = benchmark(to_kt1_instance, red)
    print_table(
        "E7: KT-1 instance from the reduction",
        ["vertices", "alice-hosted", "bob-hosted", "input edges"],
        [
            [
                hosted.instance.n,
                len(hosted.alice_indices),
                len(hosted.bob_indices),
                len(hosted.instance.input_edges),
            ]
        ],
    )
    assert hosted.instance.n == 20
