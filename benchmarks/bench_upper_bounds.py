"""E10 -- tightness: measured upper bounds against the Omega(log n) bounds.

Four comparators on the paper's 2-regular instance family (and random
graphs for the general-graph algorithms):

* NeighborExchange, KT-0 and KT-1, BCC(1): Theta(log n) rounds -- the
  algorithm that makes the paper's lower bounds tight for uniformly
  sparse inputs;
* Boruvka, KT-1, BCC(log n): Theta(log n) rounds;
* FullAdjacency, KT-1, BCC(1): Theta(n) rounds (the general baseline);
* AGM sketching, KT-1, BCC(32): Theta(log^2 n)-ish rounds on any graph.

"Who wins": on cycles, NeighborExchange beats FullAdjacency for every
n >= 16, and the lower-bound curve sits below the upper bounds everywhere.
"""

import math
import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, BCCInstance, BCCModel, PublicCoin, Simulator
from repro.algorithms import (
    agm_components_factory,
    agm_total_rounds,
    boruvka_factory,
    boruvka_max_rounds,
    components_factory,
    connectivity_factory,
    full_adjacency_components_factory,
    id_bit_width,
    neighbor_exchange_rounds,
)
from repro.analysis import fit_logarithmic, print_table
from repro.instances import one_cycle_instance
from repro.lowerbounds import multicycle_round_bound


def test_neighbor_exchange_scaling(benchmark):
    """Measured NeighborExchange rounds vs n in both knowledge models."""
    ns = [8, 16, 32, 64]

    def kernel():
        rows = []
        for n in ns:
            r0 = Simulator(BCC1_KT0).run_until_done(
                one_cycle_instance(n, kt=0), connectivity_factory(2), 10_000
            )
            r1 = Simulator(BCC1_KT1).run_until_done(
                one_cycle_instance(n, kt=1), connectivity_factory(2), 10_000
            )
            rows.append([n, r0.rounds_executed, r1.rounds_executed])
        return rows

    rows = benchmark(kernel)
    lb = [multicycle_round_bound(max(4, n // 2)).round_lower_bound for n in ns]
    print_table(
        "E10: NeighborExchange rounds on cycles (BCC(1))",
        ["n", "KT-0 rounds", "KT-1 rounds", "T4.4 lower bound (same N)"],
        [[r[0], r[1], r[2], f"{b:.3f}"] for r, b in zip(rows, lb)],
    )
    fit = fit_logarithmic(ns, [r[2] for r in rows])
    assert fit.slope > 0 and fit.r_squared > 0.9
    for r, b in zip(rows, lb):
        assert b <= r[2]  # lower bound below measured upper bound


def test_boruvka_scaling(benchmark):
    ns = [8, 32, 128]

    def kernel():
        rows = []
        for n in ns:
            sim = Simulator(BCCModel(bandwidth=max(1, math.ceil(math.log2(n))), kt=1))
            res = sim.run_until_done(
                one_cycle_instance(n, kt=1), boruvka_factory(), boruvka_max_rounds(n)
            )
            rows.append([n, res.rounds_executed, boruvka_max_rounds(n)])
        return rows

    rows = benchmark(kernel)
    print_table(
        "E10: Boruvka rounds in BCC(log n), KT-1",
        ["n", "measured rounds", "budget 2(log n + 2)"],
        rows,
    )
    for n, measured, budget in rows:
        assert measured <= budget


def test_full_adjacency_is_linear(benchmark):
    ns = [8, 16, 32]

    def kernel():
        rows = []
        for n in ns:
            res = Simulator(BCC1_KT1).run_until_done(
                one_cycle_instance(n, kt=1), full_adjacency_components_factory(), n + 1
            )
            rows.append([n, res.rounds_executed])
        return rows

    rows = benchmark(kernel)
    print_table(
        "E10: FullAdjacency baseline (BCC(1), KT-1) -- Theta(n)",
        ["n", "rounds"],
        rows,
    )
    for n, measured in rows:
        assert measured == n


def test_who_wins_crossover(benchmark):
    """The headline comparison: NeighborExchange (Theta(log n)) vs
    FullAdjacency (Theta(n)) on cycles -- log wins from small n on."""
    ns = [8, 16, 32, 64, 128]

    def kernel():
        rows = []
        for n in ns:
            ne = neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
            fa = n
            rows.append([n, ne, fa, "NeighborExchange" if ne < fa else "FullAdjacency"])
        return rows

    rows = benchmark(kernel)
    print_table(
        "E10: who wins on 2-regular inputs (BCC(1), KT-1)",
        ["n", "NeighborExchange rounds", "FullAdjacency rounds", "winner"],
        rows,
    )
    assert all(r[3] == "NeighborExchange" for r in rows if r[0] >= 16)


def test_mt16_deterministic_sketch(benchmark):
    """The [MT16] tightness witness: deterministic, one fixed-size burst,
    O(a log n) rounds of BCC(1) for arboricity a -- the upper bound the
    paper says makes its Omega(log n) lower bounds tight."""
    from repro.algorithms import mt16_connectivity_factory, mt16_rounds
    from repro.core import NO, YES, decision_of_run

    n, a = 16, 2
    inst_yes = BCCInstance.kt1_from_graph(
        __import__("repro.graphs", fromlist=["one_cycle"]).one_cycle(n)
    )
    sim = Simulator(BCC1_KT1)

    def kernel():
        return sim.run_until_done(
            inst_yes, mt16_connectivity_factory(a), mt16_rounds(a) + 1
        )

    res = benchmark(kernel)
    lb = multicycle_round_bound(n).round_lower_bound
    print_table(
        "E10: MT16-style deterministic sketch (BCC(1), KT-1, arboricity <= 2)",
        ["n", "decision", "rounds (fixed burst)", "T4.4 lower bound", "LB <= UB"],
        [[n, decision_of_run(res), res.rounds_executed, f"{lb:.3f}", lb <= res.rounds_executed]],
    )
    assert decision_of_run(res) == YES
    assert lb <= res.rounds_executed


def test_agm_sketch_rounds(benchmark):
    """AGM sketching: polylog rounds on a random (non-sparse) graph."""
    from repro.graphs import gnp_random_graph

    n = 12
    g = gnp_random_graph(n, 0.3, random.Random(4))
    inst = BCCInstance.kt1_from_graph(g)
    sim = Simulator(BCCModel(bandwidth=32, kt=1))

    def kernel():
        return sim.run_until_done(
            inst, agm_components_factory(), 2000, coin=PublicCoin("bench-agm")
        )

    res = benchmark(kernel)
    print_table(
        "E10: AGM sketch connectivity (BCC(32), KT-1, random G(12, 0.3))",
        ["n", "rounds", "closed form", "vs FullAdjacency-in-BCC(32) ~ n^2/(32)"],
        [[n, res.rounds_executed, agm_total_rounds(n, 32), n * n // 32]],
    )
    assert res.rounds_executed == agm_total_rounds(n, 32)
