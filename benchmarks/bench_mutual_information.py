"""E9 -- Theorem 4.5: mutual information of PartitionComp protocols.

Evaluates the exact I(P_A; Pi) of error-free and lossy protocols over the
full hard distribution, checks the (1 - eps) H(P_A) bound, and measures
the information carried by a *real* KT-1 BCC(1) ConnectedComponents
algorithm run through the Section 4.3 simulation.
"""

import math

import pytest

from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
from repro.analysis import fit_logarithmic, print_table
from repro.information import evaluate_protocol, information_lower_bound
from repro.lowerbounds import information_bound_table, measure_bcc_algorithm_information
from repro.partitions import log2_bell
from repro.twoparty import LossyPartitionCompProtocol, TrivialPartitionCompProtocol


@pytest.mark.parametrize("n", [4, 5])
def test_error_free_information(benchmark, n):
    """I(P_A; Pi) = H(P_A) = log2 B_n for a correct protocol."""

    def kernel():
        return evaluate_protocol(TrivialPartitionCompProtocol(n), n)

    report = benchmark(kernel)
    print_table(
        "E9: exact Theorem 4.5 chain, error-free protocol",
        ["n", "H(P_A)=log2 B_n", "H(Pi)", "I(P_A;Pi)", "|Pi| bits", "chain holds"],
        [
            [
                n,
                report.input_entropy,
                report.transcript_entropy,
                report.information,
                report.max_transcript_bits,
                report.chain_holds(),
            ]
        ],
    )
    assert report.information == pytest.approx(log2_bell(n), abs=1e-9)
    assert report.chain_holds()


def test_lossy_information_floor(benchmark):
    """I >= (1 - eps) H(P_A) even for erring protocols."""
    n = 5

    def kernel():
        rows = []
        for eps in (0.0, 0.2, 0.5):
            report = evaluate_protocol(LossyPartitionCompProtocol(n, eps), n)
            rows.append(
                [
                    eps,
                    report.error_rate,
                    report.information,
                    information_lower_bound(n, report.error_rate),
                ]
            )
        return rows

    rows = benchmark(kernel)
    print_table(
        "E9: lossy protocols vs the (1 - eps) H(P_A) floor",
        ["requested eps", "measured eps", "I(P_A;Pi)", "(1-eps) log2 B_n"],
        rows,
    )
    for _eps, _m, info, floor in rows:
        assert info >= floor - 1e-9


def test_real_algorithm_information(benchmark):
    """A real BCC algorithm through the simulation carries full information."""
    n = 4
    w = id_bit_width(4 * n)
    rounds = neighbor_exchange_rounds(1, n + 1, w)

    def kernel():
        return measure_bcc_algorithm_information(
            components_factory(n + 1, id_bits=w), n, rounds
        )

    report = benchmark(kernel)
    print_table(
        "E9: real KT-1 BCC(1) ConnectedComponents algorithm, measured",
        ["n", "BCC rounds", "I(P_A;Pi)", "H(P_A)", "error"],
        [[n, rounds, report.information, report.input_entropy, report.error_rate]],
    )
    assert report.information == pytest.approx(report.input_entropy, abs=1e-9)


def test_implied_round_bound_shape(benchmark):
    """The Theorem 4.5 round bound grows like log n."""

    ns = [8, 16, 32, 64, 128, 256]

    def kernel():
        return information_bound_table(ns, error_rate=1 / 3)

    rows = benchmark(kernel)
    print_table(
        "E9: Theorem 4.5 round lower bound (eps = 1/3)",
        ["n", "(1-eps) log2 B_n", "bits/round (8n)", "rounds >=", "LB / log2(4n)"],
        [
            [
                r.ground_set,
                r.information_bound_bits,
                r.bits_per_round,
                r.round_lower_bound,
                r.normalized,
            ]
            for r in rows
        ],
    )
    fit = fit_logarithmic([4 * r.ground_set for r in rows], [r.round_lower_bound for r in rows])
    assert fit.slope > 0 and fit.r_squared > 0.97
