"""O2 -- the live event bus's own cost, off and on.

The acceptance budget for `repro.obs.stream` is < 1% overhead on
`Simulator.run` when **no bus is installed** (the common case: every
tier-1 test, every non-interactive run). With no bus the instrumented
sites resolve `get_bus()` once per run and pay a single ``is not None``
check per publish point -- no payload dicts are built. This file times
the engine three ways -- bus off, bus installed with zero subscribers,
bus installed with a counting subscriber -- so each layer's price is a
recorded number (see EXPERIMENTS.md "Live event bus overhead").
"""

import pytest

from repro.analysis import print_table
from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
from repro.instances import one_cycle_instance
from repro.obs import EventBus, use_bus

SIM = Simulator(BCC1_KT0)


@pytest.mark.parametrize("n", [32, 64])
def test_engine_no_bus(benchmark, n):
    """Baseline: the engine with streaming disabled (the hot path)."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8
    result = benchmark(SIM.run, inst, ConstantAlgorithm, rounds)
    assert result.rounds_executed == rounds


@pytest.mark.parametrize("n", [32, 64])
def test_engine_bus_no_subscribers(benchmark, n):
    """An installed bus with nothing listening: events are recorded to
    the ring buffer but no callbacks run."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8

    def kernel():
        bus = EventBus()
        with use_bus(bus):
            result = SIM.run(inst, ConstantAlgorithm, rounds)
        return result, bus

    result, bus = benchmark(kernel)
    assert result.rounds_executed == rounds
    # run_start + one event per round + run_end
    assert bus.published_count == rounds + 2


@pytest.mark.parametrize("n", [32, 64])
def test_engine_bus_with_subscriber(benchmark, n):
    """The full price: bus installed and a subscriber counting events."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8

    def kernel():
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with use_bus(bus):
            result = SIM.run(inst, ConstantAlgorithm, rounds)
        return result, seen

    result, seen = benchmark(kernel)
    assert result.rounds_executed == rounds
    kinds = [event.kind for event in seen]
    assert kinds[0] == "simulator.run_start"
    assert kinds[-1] == "simulator.run_end"
    assert kinds.count("simulator.round") == rounds
    round_events = [e for e in seen if e.kind == "simulator.round"]
    assert [e.payload["t"] for e in round_events] == list(range(1, rounds + 1))
    print_table(
        "O2: bus event stream shape",
        ["n", "rounds", "events", "first", "last"],
        [[n, rounds, len(seen), kinds[0], kinds[-1]]],
    )
