"""E4 -- Lemma 3.9: |V2| = |V1| * Theta(log n).

Exact enumeration at small n cross-checked against closed forms, then the
closed-form ratio extended to n = 10^6, fitted against (1/2) ln n.
"""

import math

import pytest

from repro.analysis import fit_logarithmic, print_table, ratio_stability
from repro.indist import predicted_v2_v1_ratio
from repro.instances import (
    count_one_cycle_covers,
    count_two_cycle_covers,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
)


def test_enumeration_vs_closed_form(benchmark):
    """Exhaustively enumerate V1 and V2 at n = 8 and compare to formulas."""

    def kernel():
        n = 8
        v1 = sum(1 for _ in enumerate_one_cycle_covers(n))
        v2 = sum(1 for _ in enumerate_two_cycle_covers(n))
        return n, v1, v2

    n, v1, v2 = benchmark(kernel)
    print_table(
        "E4: exhaustive |V1|, |V2| vs closed form",
        ["n", "|V1| enum", "|V1| formula", "|V2| enum", "|V2| formula"],
        [[n, v1, count_one_cycle_covers(n), v2, count_two_cycle_covers(n)]],
    )
    assert v1 == count_one_cycle_covers(n)
    assert v2 == count_two_cycle_covers(n)


def test_ratio_is_theta_log_n(benchmark):
    """The Lemma 3.9 ratio at large n: |V2|/|V1| -> (1/2) ln n + O(1)."""

    ns = [10**k for k in range(1, 7)]

    def kernel():
        return [predicted_v2_v1_ratio(n) for n in ns]

    ratios = benchmark(kernel)
    fit = fit_logarithmic(ns, ratios)
    lo, hi = ratio_stability(ns, ratios)
    print_table(
        "E4: |V2| / |V1| vs (1/2) ln n (Lemma 3.9)",
        ["n", "ratio", "(1/2) ln n", "ratio / ln n"],
        [
            [n, r, 0.5 * math.log(n), r / math.log(n)]
            for n, r in zip(ns, ratios)
        ],
    )
    print_table(
        "E4: logarithmic fit",
        ["slope (-> 1/2)", "intercept", "r^2"],
        [[fit.slope, fit.intercept, fit.r_squared]],
    )
    assert 0.4 < fit.slope < 0.55
    assert fit.r_squared > 0.999
    assert 0.2 < hi <= 0.5
