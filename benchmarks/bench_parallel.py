"""P2 -- the ``repro.parallel`` execution layer, timed honestly.

Three questions, all answered on the same exhaustive-search instance so
the numbers are comparable:

1. What does sharding itself cost? (``ShardPlan`` + merge on a trivial
   workload, no processes.)
2. What does process fan-out buy -- or cost -- on this machine?
   (``workers=4`` vs serial; on a single-core CI runner the answer is
   honestly *negative*, which is exactly why the perf gate keys bench
   history on worker count instead of asserting a speedup here.)
3. What does the vectorized numpy kernel buy? (This is the
   machine-independent win: one python-level pass per block instead of
   per assignment.)

Correctness -- bit-identical reports across all three execution modes --
is asserted; speed is only printed.
"""

import pytest

from repro.analysis import print_table
from repro.lowerbounds import clear_pair_cache, universal_bound_id_oblivious
from repro.lowerbounds.vectorized import HAVE_NUMPY
from repro.parallel import MIN_KEYED, ShardPlan


def test_shard_plan_overhead(benchmark):
    """Planning + a monoid fold over 64 shards: pure orchestration cost."""

    def kernel():
        plan = ShardPlan(total=1 << 20, num_shards=64, base_seed=7)
        partials = [(float(s.start % 97) / 97.0, s.start) for s in plan.shards()]
        return plan, MIN_KEYED.fold(partials)

    plan, best = benchmark(kernel)
    print_table(
        "P2: shard-plan overhead (2^20 units, 64 shards)",
        ["shards", "units total", "best key"],
        [[len(plan.shards()), sum(s.size for s in plan.shards()), best[0]]],
    )
    assert sum(s.size for s in plan.shards()) == 1 << 20
    assert best is not None


@pytest.mark.parametrize("workers", [1, 4])
def test_fanout(benchmark, workers):
    """Serial vs 4-process fan-out on n=4, |alphabet|=3 (81 assignments).

    The assertion is identity, not speed: on the 1-CPU runners this
    repo benches on, fan-out *loses* to serial (process spawn dominates)
    and the table says so.
    """
    n, alphabet = 4, ("", "0", "1")
    clear_pair_cache()
    serial = universal_bound_id_oblivious(n, alphabet=alphabet)
    report = benchmark(
        universal_bound_id_oblivious,
        n,
        alphabet=alphabet,
        workers=workers,
        vectorize=False,
    )
    print_table(
        f"P2: exhaustive fan-out (n={n}, |alphabet|={len(alphabet)}, workers={workers})",
        ["workers", "class size", "min forced error", "identical to serial"],
        [
            [
                workers,
                report.class_size,
                report.minimum_forced_error,
                report == serial,
            ]
        ],
    )
    assert report == serial


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@pytest.mark.parametrize("n", [6, 7])
def test_vectorized_kernel(benchmark, n):
    """Vectorized vs python scan at n=6/7: the machine-independent win."""
    clear_pair_cache()
    serial = universal_bound_id_oblivious(n, alphabet=("0", "1"))
    report = benchmark(
        universal_bound_id_oblivious, n, alphabet=("0", "1"), vectorize=True
    )
    print_table(
        f"P2: vectorized exhaustive scan (n={n}, binary alphabet)",
        ["n", "class size", "min forced error", "identical to python scan"],
        [[n, report.class_size, report.minimum_forced_error, report == serial]],
    )
    assert report == serial
