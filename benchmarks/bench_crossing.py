"""E1 -- Figure 1 / Definition 3.3 / Lemma 3.4: port-preserving crossings.

Regenerates the Figure 1 construction at scale and validates Lemma 3.4
operationally: on a crossed pair, every vertex's state is identical after
t rounds whenever the premise holds. The timed kernel is the crossing
operator plus the double simulation + state diff.
"""

import pytest

from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
from repro.analysis import print_table
from repro.crossing import check_lemma_3_4, cross
from repro.instances import one_cycle_instance

SIM = Simulator(BCC1_KT0)


@pytest.mark.parametrize("n", [32, 128])
def test_crossing_operator(benchmark, n):
    """Time the crossing operator itself (pure instance surgery)."""
    inst = one_cycle_instance(n, kt=0)
    crossed = benchmark(cross, inst, (0, 1), (n // 2, n // 2 + 1))
    comps = sorted(len(c) for c in crossed.input_graph().connected_components())
    assert comps == [n // 2, n - n // 2]
    print_table(
        "E1: crossing splits the cycle (Figure 1)",
        ["n", "split sizes", "ports preserved"],
        [[n, str(comps), all(
            inst.input_ports(v) == crossed.input_ports(v) for v in range(n)
        )]],
    )


@pytest.mark.parametrize("rounds", [2, 8])
def test_lemma_3_4_verification(benchmark, rounds):
    """Time the full Lemma 3.4 check: two runs + full state comparison."""
    n = 24
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (8, 9)
    crossed = cross(inst, e1, e2)

    def kernel():
        return check_lemma_3_4(
            SIM, inst, crossed, ConstantAlgorithm, e1, e2, rounds
        )

    premise, conclusion = benchmark(kernel)
    assert premise and conclusion
    print_table(
        "E1: Lemma 3.4 on real executions",
        ["n", "rounds", "premise holds", "indistinguishable"],
        [[n, rounds, premise, conclusion]],
    )
