"""E8 -- Section 4.3 / Theorem 4.4: the 2-party simulation and round bound.

Times the Alice/Bob simulation of a real KT-1 BCC(1) algorithm on
G(P_A, P_B), confirms its exact Theta(n) bits/simulated-round cost, and
prints the Theorem 4.4 round-bound table (rank bound / simulation cost)
next to the measured rounds of the matching upper-bound algorithm.
"""

import random

import pytest

from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
from repro.analysis import fit_logarithmic, print_table
from repro.lowerbounds import multicycle_round_bound, round_bound_table
from repro.partitions import random_perfect_matching
from repro.twoparty import BCCSimulationProtocol, simulation_bits_per_round


def test_simulation_cost(benchmark):
    """Measured protocol bits = rounds * 2N exactly."""
    n = 8
    rng = random.Random(5)
    pa, pb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
    rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    proto = BCCSimulationProtocol(
        "two_partition", components_factory(2), rounds, mode="components"
    )

    result = benchmark(proto.run, pa, pb)
    predicted = rounds * simulation_bits_per_round("two_partition", n)
    print_table(
        "E8: Section 4.3 simulation accounting",
        ["ground set n", "BCC rounds r", "measured bits", "predicted r * 4n", "join correct"],
        [
            [
                n,
                rounds,
                result.total_bits,
                predicted,
                result.alice_output == pa.join(pb),
            ]
        ],
    )
    assert result.total_bits == predicted
    assert result.bob_output == pa.join(pb)


def test_theorem_4_4_round_bound_table(benchmark):
    """log2 rank(E_n) / (4n) vs the measured upper bound: the sandwich."""

    ns = [8, 16, 32, 64, 128, 256]

    def kernel():
        rows = []
        for n in ns:
            row = multicycle_round_bound(n)
            upper = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
            rows.append(
                [
                    2 * n,  # N = instance vertices
                    row.cc_bits,
                    row.round_lower_bound,
                    upper,
                    row.normalized,
                ]
            )
        return rows

    rows = benchmark(kernel)
    print_table(
        "E8: Theorem 4.4 lower bound vs NeighborExchange upper bound (MultiCycle, KT-1)",
        ["N vertices", "CC bits (log2 rank)", "rounds lower bound", "upper bound rounds", "LB / log2 N"],
        rows,
    )
    # sandwich: lower <= upper at every N; both Theta(log N)
    for _N, _cc, lower, upper, _norm in rows:
        assert lower <= upper
    fit = fit_logarithmic([r[0] for r in rows], [r[2] for r in rows])
    assert fit.slope > 0 and fit.r_squared > 0.95
