"""P4 -- the cost ledger's own cost, on and off.

The acceptance budget for `repro.costs` is < 1% overhead on
`Simulator.run` when **no ledger is installed** (the common case: every
tier-1 test, every un-audited experiment -- the disabled path is a
single `None` check per round). This file times the engine both ways so
the price of cost accounting is a recorded number rather than folklore,
asserts the enabled path produces exactly the summary the simulator
contract promises, and pins the measured totals to the closed forms the
conformance suite checks symbolically.
"""

import pytest

from repro.analysis import print_table
from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
from repro.costs import CostLedger, check_spec, get_spec, use_ledger
from repro.instances import one_cycle_instance

SIM = Simulator(BCC1_KT0)


@pytest.mark.parametrize("n", [32, 64])
def test_engine_no_ledger(benchmark, n):
    """Baseline: the engine with cost accounting disabled (the hot path)."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8
    result = benchmark(SIM.run, inst, ConstantAlgorithm, rounds)
    assert result.rounds_executed == rounds
    assert result.cost_summary is None  # clean runs stay ledger-free


@pytest.mark.parametrize("n", [32, 64])
def test_engine_with_ledger(benchmark, n):
    """The engine under an installed CostLedger (per-vertex attribution)."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8

    def kernel():
        ledger = CostLedger()
        with use_ledger(ledger):
            result = SIM.run(inst, ConstantAlgorithm, rounds)
        return result, ledger

    result, ledger = benchmark(kernel)
    assert result.rounds_executed == rounds
    assert ledger.total_bits() == n * rounds
    assert ledger.rounds() == rounds
    summary = result.cost_summary
    assert summary is not None
    assert summary["total_bits"] == ledger.total_bits()
    assert len(summary["per_vertex"]) == n
    assert all(entry["bits"] == rounds for entry in summary["per_vertex"])
    print_table(
        "P4: ledger attribution under the engine",
        ["n", "rounds", "total bits", "ledger rounds", "per-vertex bits"],
        [[n, rounds, ledger.total_bits(), ledger.rounds(), rounds]],
    )


@pytest.mark.parametrize(
    "name", ["constant_cycle", "neighbor_exchange_kt1", "two_partition_simulation"]
)
def test_conformance_specs(benchmark, name):
    """Measured cost == symbolic prediction, timed end to end per spec."""
    spec = get_spec(name)
    result = benchmark(check_spec, spec, True)
    assert result.ok, result.problems
    assert result.measured_bits == result.predicted_bits
    assert result.measured_rounds == result.predicted_rounds


def test_ledger_deterministic(benchmark):
    """Two identical runs ledger identical cells (bits are not wall time)."""
    inst = one_cycle_instance(16, kt=0)

    def kernel():
        ledger = CostLedger()
        with use_ledger(ledger):
            SIM.run(inst, ConstantAlgorithm, 4)
        return ledger

    first = kernel()
    second = benchmark(kernel)
    assert first.summary() == second.summary()
