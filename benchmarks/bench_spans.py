"""O1 -- the span profiler's own cost, on and off.

The acceptance budget for `repro.obs.spans` is < 1% overhead on
`Simulator.run` when **no recorder is installed** (the common case: every
tier-1 test, every un-profiled experiment). This file times the engine
three ways -- recorder off, recorder on, recorder on + trace mirroring --
so the price of each observability layer is a recorded number rather
than folklore, and asserts the recorded trees have the exact shape the
simulator instrumentation promises (run -> round -> broadcast/deliver).
"""

import pytest

from repro.analysis import print_table
from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
from repro.instances import one_cycle_instance
from repro.obs import SpanRecorder, use_recorder

SIM = Simulator(BCC1_KT0)


@pytest.mark.parametrize("n", [32, 64])
def test_engine_no_recorder(benchmark, n):
    """Baseline: the engine with span profiling disabled (the hot path)."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8
    result = benchmark(SIM.run, inst, ConstantAlgorithm, rounds)
    assert result.rounds_executed == rounds


@pytest.mark.parametrize("n", [32, 64])
def test_engine_with_recorder(benchmark, n):
    """The engine under an installed SpanRecorder (tree, no trace)."""
    inst = one_cycle_instance(n, kt=0)
    rounds = 8

    def kernel():
        recorder = SpanRecorder()
        with use_recorder(recorder):
            result = SIM.run(inst, ConstantAlgorithm, rounds)
        return result, recorder

    result, recorder = benchmark(kernel)
    roots = recorder.roots
    assert result.rounds_executed == rounds
    assert [r.name for r in roots] == ["simulator.run"]
    run = roots[0]
    round_spans = [c for c in run.children if c.name == "simulator.round"]
    assert len(round_spans) == rounds
    for rnd in round_spans:
        assert [c.name for c in rnd.children] == [
            "simulator.broadcast",
            "simulator.deliver",
        ]
    # 1 run + rounds * (round + broadcast + deliver)
    assert recorder.span_count() == 1 + 3 * rounds
    print_table(
        "O1: span tree shape under the recorder",
        ["n", "rounds", "spans", "run cum ms", "run self ms"],
        [
            [
                n,
                rounds,
                recorder.span_count(),
                run.duration_seconds * 1e3,
                run.self_seconds * 1e3,
            ]
        ],
    )


def test_recorder_attrs_deterministic(benchmark):
    """Two identical runs produce identical tree shapes (timings aside)."""
    inst = one_cycle_instance(16, kt=0)

    def kernel():
        recorder = SpanRecorder()
        with use_recorder(recorder):
            SIM.run(inst, ConstantAlgorithm, 4)
        return recorder

    first = kernel()
    second = benchmark(kernel)
    assert [r.shape() for r in first.roots] == [r.shape() for r in second.roots]
