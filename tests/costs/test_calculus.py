"""Tests for the symbolic cost calculus (`repro.costs.calculus`).

The calculus has two backends: a dependency-free exact tree walk (the
source of truth) and an optional sympy cross-check. Both are exercised
here; the sympy-absent path runs in a subprocess with the import blocked
so the fallback is covered even on machines that *do* have sympy.
"""

import os
import subprocess
import sys

import pytest

from repro.costs.calculus import (
    HAVE_SYMPY,
    BinOp,
    Call,
    Const,
    Expr,
    Sym,
    _wrap,
    bits_width,
    ceil,
    dfact,
    evaluate,
    floor,
    log2,
    symbols,
    sympy_cross_check,
)


class TestSymbolsAndWrapping:
    def test_symbols_splits_on_whitespace(self):
        n, t = symbols("n t")
        assert isinstance(n, Sym) and isinstance(t, Sym)
        assert str(n) == "n" and str(t) == "t"

    def test_symbols_splits_on_commas(self):
        n, b, k = symbols("n, b, k")
        assert [str(s) for s in (n, b, k)] == ["n", "b", "k"]

    def test_underscores_allowed_in_names(self):
        (x,) = symbols("bit_budget")
        assert evaluate(x + 1, {"bit_budget": 4}) == 5

    def test_bad_symbol_name_rejected(self):
        with pytest.raises(ValueError, match="alphanumeric"):
            Sym("bad name")

    def test_wrap_rejects_bool(self):
        with pytest.raises(TypeError, match="True"):
            _wrap(True)

    def test_wrap_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            _wrap("3")

    def test_const_evaluates_to_itself(self):
        assert evaluate(Const(7), {}) == 7
        assert evaluate(Const(2.5), {}) == 2.5


class TestArithmetic:
    def setup_method(self):
        self.n, self.t = symbols("n t")

    def test_basic_ops(self):
        n, t = self.n, self.t
        env = {"n": 7, "t": 2}
        assert evaluate(n + t, env) == 9
        assert evaluate(n - t, env) == 5
        assert evaluate(n * t, env) == 14
        assert evaluate(n / t, env) == 3.5
        assert evaluate(n // t, env) == 3
        assert evaluate(n ** t, env) == 49

    def test_reflected_ops(self):
        n = self.n
        assert evaluate(10 - n, {"n": 3}) == 7
        assert evaluate(8 / n, {"n": 4}) == 2.0
        assert evaluate(3 + n, {"n": 4}) == 7
        assert evaluate(2 * n, {"n": 4}) == 8

    def test_negation_is_zero_minus(self):
        n = self.n
        assert str(-n) == "(0 - n)"
        assert evaluate(-n, {"n": 5}) == -5

    def test_integer_arithmetic_stays_integral(self):
        n, t = self.n, self.t
        value = evaluate(n * t + 1, {"n": 4, "t": 3})
        assert value == 13
        assert isinstance(value, int)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            BinOp("%", Const(1), Const(2))

    def test_str_is_parenthesised(self):
        n = self.n
        assert str(2 * bits_width(n - 1)) == "(2 * bits((n - 1)))"

    def test_free_symbols(self):
        n, t = self.n, self.t
        expr = n * t + bits_width(n)
        assert expr.free_symbols() == {"n", "t"}

    def test_repr_mentions_class(self):
        assert "Sym" in repr(self.n)


class TestEvaluate:
    def test_missing_symbol_raises_keyerror_naming_it(self):
        (n,) = symbols("n")
        with pytest.raises(KeyError, match="'n' has no value"):
            evaluate(n, {"t": 3})

    def test_plain_numbers_pass_through(self):
        assert evaluate(7, {}) == 7
        assert evaluate(2.5, {}) == 2.5

    def test_non_expression_rejected(self):
        with pytest.raises(TypeError, match="cost expression"):
            evaluate("x", {})


class TestCostFunctions:
    def test_bits_width_values(self):
        # W(x) = max(1, x.bit_length()): the bits needed to write x down,
        # with the convention that even 0 costs one bit on the wire.
        got = [evaluate(bits_width(Const(x)), {}) for x in (0, 1, 2, 255, 256)]
        assert got == [1, 1, 2, 8, 9]

    def test_bits_width_rejects_negative(self):
        (n,) = symbols("n")
        with pytest.raises(ValueError, match="bits"):
            evaluate(bits_width(n), {"n": -1})

    def test_bits_width_rejects_non_integer(self):
        (n,) = symbols("n")
        with pytest.raises(ValueError, match="bits"):
            evaluate(bits_width(n), {"n": 2.5})

    def test_dfact_values(self):
        got = [evaluate(dfact(Const(x)), {}) for x in (-1, 0, 1, 5, 6)]
        assert got == [1, 1, 1, 15, 48]

    def test_dfact_rejects_below_minus_one(self):
        (n,) = symbols("n")
        with pytest.raises(ValueError, match="dfact"):
            evaluate(dfact(n), {"n": -2})

    def test_log2_power_of_two_is_exact_int(self):
        (n,) = symbols("n")
        value = evaluate(log2(n), {"n": 8})
        assert value == 3
        assert isinstance(value, int)

    def test_log2_general_value(self):
        (n,) = symbols("n")
        assert evaluate(log2(n), {"n": 6}) == pytest.approx(2.5849625007)

    def test_ceil_and_floor(self):
        n, t = symbols("n t")
        env = {"n": 7, "t": 2}
        assert evaluate(ceil(n / t), env) == 4
        assert evaluate(floor(n / t), env) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown cost function"):
            Call("tanh", Const(1))


class TestSympyCrossCheck:
    def test_registry_shaped_expressions_agree(self):
        # The same shapes the conformance specs use; when sympy is
        # importable both backends must give the same number.
        n, t = symbols("n t")
        for expr, env in [
            (n * t, {"n": 8, "t": 3}),
            (3 * n * bits_width(4 * n - 1), {"n": 8}),
            (2 * n * bits_width(n - 1), {"n": 16}),
            (n * log2(n), {"n": 32}),
            (log2(dfact(n - 1)) / (4 * n), {"n": 9}),
        ]:
            checked = sympy_cross_check(expr, env)
            assert checked is HAVE_SYMPY

    def test_returns_false_without_sympy(self):
        if HAVE_SYMPY:
            pytest.skip("sympy importable here; fallback covered in subprocess")
        (n,) = symbols("n")
        assert sympy_cross_check(n + 1, {"n": 1}) is False


SYMPY_BLOCKED_PROBE = """
import builtins

_real_import = builtins.__import__

def _blocked(name, *args, **kwargs):
    if name == "sympy" or name.startswith("sympy."):
        raise ImportError("sympy blocked for this probe")
    return _real_import(name, *args, **kwargs)

builtins.__import__ = _blocked

from repro.costs import (
    HAVE_SYMPY,
    bits_width,
    check_all,
    evaluate,
    symbols,
    sympy_cross_check,
)

assert HAVE_SYMPY is False, "import block did not take"
(n,) = symbols("n")
assert evaluate(2 * n * bits_width(n - 1), {"n": 16}) == 128
assert sympy_cross_check(2 * n * bits_width(n - 1), {"n": 16}) is False

results = check_all(quick=True)
assert results, "no specs ran"
for result in results:
    assert result.ok, (result.name, result.problems)
    assert result.sympy_checked is False, result.name
print("OK", len(results))
"""


def test_exact_backend_alone_passes_conformance():
    """The whole pipeline must work with sympy unimportable (as in CI)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        [sys.executable, "-c", SYMPY_BLOCKED_PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("OK")
