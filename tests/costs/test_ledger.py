"""Tests for the per-(vertex, round, phase) bit ledger (`repro.costs.ledger`).

Covers the ledger data structure itself, the opt-in module-global
contract (get/set/use), the simulator integration (`RunResult.
cost_summary`), and the crashed-vertex accounting fix: a crashed vertex
broadcasts the empty string / the ``⊥`` glyph, and both cost zero bits.
"""

import pytest

from repro.core import (
    SILENT,
    SILENT_CHAR,
    BCC1_KT0,
    ConstantAlgorithm,
    RoundRecord,
    SilentAlgorithm,
    Simulator,
    Transcript,
)
from repro.core.model import message_bits
from repro.costs import (
    DEFAULT_PHASE,
    CostLedger,
    get_ledger,
    message_cost_bits,
    run_cost_summary,
    set_ledger,
    use_ledger,
)
from repro.instances import one_cycle_instance
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import FaultPlan, ScheduledFault


class TestMessageCostBits:
    def test_silent_forms_cost_zero(self):
        assert message_cost_bits(SILENT) == 0
        assert message_cost_bits(SILENT_CHAR) == 0
        assert message_cost_bits("") == 0
        assert message_cost_bits("⊥") == 0

    def test_nonsilent_costs_its_length(self):
        assert message_cost_bits("0") == 1
        assert message_cost_bits("01") == 2
        assert message_cost_bits("010101") == 6

    def test_agrees_with_core_message_bits(self):
        for message in ("", "⊥", "0", "1", "0110"):
            assert message_cost_bits(message) == message_bits(message)


class TestCostLedger:
    def test_record_accumulates_bits(self):
        ledger = CostLedger()
        ledger.record(0, 1, "01")
        ledger.record(0, 2, "1")
        ledger.record(1, 1, "000")
        assert ledger.total_bits() == 6
        assert ledger.rounds() == 2
        assert ledger.bits_by_vertex() == {0: 3, 1: 3}
        assert ledger.bits_by_round() == {1: 5, 2: 1}

    def test_silent_record_counts_silence_and_keeps_the_cell(self):
        ledger = CostLedger()
        ledger.record(0, 1, SILENT)
        ledger.record(0, 2, SILENT_CHAR)
        assert ledger.total_bits() == 0
        assert ledger.silence_by_vertex() == {0: 2}
        # Silent rounds still show up as explicit 0-bit cells so a
        # per-round breakdown distinguishes "silent" from "not recorded".
        assert ledger.bits_by_round() == {1: 0, 2: 0}

    def test_record_bits_rejects_negative(self):
        ledger = CostLedger()
        with pytest.raises(ValueError, match="negative"):
            ledger.record_bits("alice", 1, -1)

    def test_record_round_enumerates_vertices(self):
        ledger = CostLedger()
        ledger.record_round(1, ["01", SILENT, "1"])
        assert ledger.bits_by_vertex() == {0: 2, 1: 0, 2: 1}
        assert ledger.silence_by_vertex() == {1: 1}

    def test_phases_are_kept_separate(self):
        ledger = CostLedger()
        ledger.record_bits("alice", 1, 4, phase="simulate")
        ledger.record_bits("alice", 0, 1, phase="decision")
        assert ledger.bits_by_phase() == {"decision": 1, "simulate": 4}
        assert ledger.total_bits() == 5
        assert DEFAULT_PHASE not in ledger.bits_by_phase()

    def test_summary_shape_and_ordering(self):
        ledger = CostLedger()
        ledger.record(2, 1, "11")
        ledger.record(0, 1, "0")
        ledger.record(1, 1, SILENT)
        summary = ledger.summary()
        assert summary["total_bits"] == 3
        assert summary["rounds"] == 1
        assert [entry["vertex"] for entry in summary["per_vertex"]] == ["0", "1", "2"]
        assert summary["per_vertex"][1] == {
            "vertex": "1",
            "bits": 0,
            "silent_rounds": 1,
        }
        assert summary["per_phase"] == {DEFAULT_PHASE: 3}

    def test_summary_sorts_int_vertices_before_names(self):
        ledger = CostLedger()
        ledger.record_bits("alice", 1, 2)
        ledger.record_bits(3, 1, 1)
        vertices = [entry["vertex"] for entry in ledger.summary()["per_vertex"]]
        assert vertices == ["3", "alice"]

    def test_merge_adds_cell_by_cell(self):
        left, right = CostLedger(), CostLedger()
        left.record(0, 1, "01")
        right.record(0, 1, "1")
        right.record(1, 2, SILENT)
        left.merge(right)
        assert left.total_bits() == 3
        assert left.bits_by_vertex() == {0: 3, 1: 0}
        assert left.silence_by_vertex() == {1: 1}
        assert left.rounds() == 2

    def test_reset_and_len(self):
        ledger = CostLedger()
        assert len(ledger) == 0
        ledger.record(0, 1, "01")
        ledger.record(1, 1, SILENT)
        assert len(ledger) == 2
        ledger.reset()
        assert len(ledger) == 0
        assert ledger.total_bits() == 0
        assert ledger.silence_by_vertex() == {}


class TestActiveLedgerContract:
    def test_default_is_none(self):
        assert get_ledger() is None

    def test_use_ledger_installs_and_restores(self):
        ledger = CostLedger()
        assert get_ledger() is None
        with use_ledger(ledger):
            assert get_ledger() is ledger
        assert get_ledger() is None

    def test_use_ledger_nests(self):
        outer, inner = CostLedger(), CostLedger()
        with use_ledger(outer):
            with use_ledger(inner):
                assert get_ledger() is inner
            assert get_ledger() is outer

    def test_use_ledger_accepts_none_as_disable(self):
        outer = CostLedger()
        with use_ledger(outer):
            with use_ledger(None):
                assert get_ledger() is None
            assert get_ledger() is outer

    def test_set_ledger_returns_previous(self):
        ledger = CostLedger()
        previous = set_ledger(ledger)
        try:
            assert previous is None
            assert get_ledger() is ledger
        finally:
            set_ledger(previous)
        assert get_ledger() is None


class TestSimulatorIntegration:
    def test_no_ledger_means_no_summary(self):
        result = Simulator(BCC1_KT0).run(
            one_cycle_instance(8, kt=0), ConstantAlgorithm, 3
        )
        assert result.cost_summary is None

    def test_ambient_ledger_attributes_every_bit(self):
        n, rounds = 8, 3
        ledger = CostLedger()
        with use_ledger(ledger):
            result = Simulator(BCC1_KT0).run(
                one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds
            )
        assert ledger.total_bits() == n * rounds
        assert ledger.total_bits() == result.total_bits_broadcast()
        summary = result.cost_summary
        assert summary is not None
        assert summary["total_bits"] == n * rounds
        assert summary["rounds"] == rounds
        assert len(summary["per_vertex"]) == n
        assert all(entry["bits"] == rounds for entry in summary["per_vertex"])

    def test_constructor_ledger_wins_over_ambient(self):
        pinned, ambient = CostLedger(), CostLedger()
        sim = Simulator(BCC1_KT0, costs=pinned)
        with use_ledger(ambient):
            sim.run(one_cycle_instance(6, kt=0), ConstantAlgorithm, 2)
        assert pinned.total_bits() == 12
        assert ambient.total_bits() == 0

    def test_silent_algorithm_ledgers_zero_bits(self):
        n, rounds = 6, 2
        ledger = CostLedger()
        with use_ledger(ledger):
            result = Simulator(BCC1_KT0).run(
                one_cycle_instance(n, kt=0), SilentAlgorithm, rounds
            )
        assert ledger.total_bits() == 0
        assert result.cost_summary["total_bits"] == 0
        assert ledger.silence_by_vertex() == {v: rounds for v in range(n)}
        assert all(
            entry["silent_rounds"] == rounds
            for entry in result.cost_summary["per_vertex"]
        )

    def test_ledger_accumulates_across_runs_but_summary_is_per_run(self):
        n, rounds = 6, 2
        ledger = CostLedger()
        sim = Simulator(BCC1_KT0)
        with use_ledger(ledger):
            first = sim.run(one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds)
            second = sim.run(one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds)
        assert ledger.total_bits() == 2 * n * rounds
        assert first.cost_summary["total_bits"] == n * rounds
        assert second.cost_summary["total_bits"] == n * rounds


class TestCrashedVertexAccounting:
    """Satellite fix: crashed vertices must stop costing bits.

    A crash-stopped vertex's broadcast is replaced by the empty string
    from its crash round onward; the ledger, the transcript totals, and
    the metrics counter must all agree that those rounds cost 0 bits.
    """

    CRASH_ROUND = 2
    CRASH_VERTEX = 0

    def _run(self, rounds=4, n=8):
        plan = FaultPlan(
            scheduled=(
                ScheduledFault(
                    round_index=self.CRASH_ROUND,
                    kind="crash",
                    vertex=self.CRASH_VERTEX,
                ),
            )
        )
        ledger = CostLedger()
        registry = MetricsRegistry()
        with use_ledger(ledger), use_registry(registry):
            result = Simulator(BCC1_KT0, faults=plan).run(
                one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds
            )
        return result, ledger, registry

    def test_ledger_transcript_and_metrics_agree(self):
        result, ledger, registry = self._run()
        assert self.CRASH_VERTEX in result.crashed_vertices
        transcript_total = result.total_bits_broadcast()
        counter = registry.counter("simulator.bits_broadcast").value
        assert ledger.total_bits() == transcript_total == counter

    def test_crashed_vertex_bits_freeze_at_the_crash_round(self):
        rounds, n = 4, 8
        result, ledger, _ = self._run(rounds=rounds, n=n)
        per_vertex = ledger.bits_by_vertex()
        # ConstantAlgorithm sends 1 bit per round; the crashed vertex
        # pays only for the rounds before its crash fired.
        assert per_vertex[self.CRASH_VERTEX] == self.CRASH_ROUND - 1
        survivors = [v for v in range(n) if v != self.CRASH_VERTEX]
        assert all(per_vertex[v] == rounds for v in survivors)
        expected_total = (n - 1) * rounds + (self.CRASH_ROUND - 1)
        assert ledger.total_bits() == expected_total
        assert result.cost_summary["total_bits"] == expected_total

    def test_crashed_rounds_count_as_silence(self):
        rounds = 4
        _, ledger, _ = self._run(rounds=rounds)
        silent = ledger.silence_by_vertex()
        assert silent.get(self.CRASH_VERTEX) == rounds - (self.CRASH_ROUND - 1)

    def test_transcript_bottom_glyph_costs_zero(self):
        # Transcripts normalised to the ⊥ glyph (e.g. rebuilt from a
        # printed table) must agree with raw empty-string transcripts.
        raw, glyph = Transcript(), Transcript()
        raw.append(RoundRecord(sent="01", received={}))
        raw.append(RoundRecord(sent=SILENT, received={}))
        glyph.append(RoundRecord(sent="01", received={}))
        glyph.append(RoundRecord(sent=SILENT_CHAR, received={}))
        assert raw.bits_sent() == glyph.bits_sent() == 2
        assert raw.silence_count() == glyph.silence_count() == 1


class TestRunCostSummary:
    def test_duck_typed_over_transcripts(self):
        first, second = Transcript(), Transcript()
        first.append(RoundRecord(sent="01", received={}))
        first.append(RoundRecord(sent=SILENT, received={}))
        second.append(RoundRecord(sent="1", received={}))
        second.append(RoundRecord(sent="0", received={}))
        summary = run_cost_summary([first, second], rounds_executed=2)
        assert summary["total_bits"] == 4
        assert summary["rounds"] == 2
        assert summary["per_vertex"] == [
            {"vertex": "0", "bits": 2, "silent_rounds": 1},
            {"vertex": "1", "bits": 2, "silent_rounds": 0},
        ]
