"""Tests for the measured-vs-symbolic conformance checker.

The real bundled specs are exercised end to end (quick params), and
hand-built stub specs pin down the comparison semantics: exact equality
for ``kind="exact"``, at-or-above for ``kind="floor"``, and the
independent CostLedger count having to agree with the transcript total.
"""

import pytest

from repro.costs import (
    HAVE_SYMPY,
    CostSpec,
    MeasuredCost,
    check_all,
    check_spec,
    get_spec,
    spec_names,
    specs,
    symbols,
)
from repro.costs.conformance import _conforms

_n, _t = symbols("n t")


def _stub_spec(**overrides):
    """An exact n*t spec whose measure reports whatever the test wants."""
    measured = overrides.pop("measured", None)

    def measure(params):
        if measured is not None:
            return measured
        n, t = params["n"], params["t"]
        return MeasuredCost(rounds=t, bits=n * t, env={"n": n, "t": t})

    fields = dict(
        name="stub",
        description="a stub spec for conformance-semantics tests",
        kind="exact",
        rounds_expr=_t,
        bits_expr=_n * _t,
        measure=measure,
        quick_params={"n": 4, "t": 3},
        full_params={"n": 8, "t": 5},
    )
    fields.update(overrides)
    return CostSpec(**fields)


class TestBundledSpecs:
    def test_registry_is_well_formed(self):
        names = spec_names()
        assert len(names) == len(set(names))
        assert "constant_cycle" in names
        assert "two_partition_simulation" in names
        assert [s.name for s in specs()] == list(names)

    def test_get_spec_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="constant_cycle"):
            get_spec("bogus")

    def test_check_all_quick_passes(self):
        results = check_all(quick=True)
        assert len(results) == len(spec_names())
        for result in results:
            assert result.ok, (result.name, result.problems)
            assert result.sympy_checked is HAVE_SYMPY

    def test_check_all_names_filter(self):
        results = check_all(quick=True, names=["constant_cycle", "silent_star"])
        assert [r.name for r in results] == ["constant_cycle", "silent_star"]

    def test_check_all_unknown_name_raises(self):
        with pytest.raises(KeyError):
            check_all(quick=True, names=["nope"])

    def test_exact_spec_measured_equals_predicted(self):
        result = check_spec(get_spec("constant_cycle"), quick=True)
        assert result.ok
        assert result.measured_bits == result.predicted_bits
        assert result.measured_rounds == result.predicted_rounds
        assert result.ledger_bits == result.measured_bits

    def test_floor_spec_sits_above_its_bound(self):
        result = check_spec(get_spec("omega_total_bits_kt1"), quick=True)
        assert result.ok
        assert result.kind == "floor"
        assert result.measured_bits >= result.predicted_bits


class TestComparisonSemantics:
    def test_conforms_exact(self):
        assert _conforms("exact", 12, 12)
        assert not _conforms("exact", 12, 13)
        assert not _conforms("exact", 13, 12)

    def test_conforms_floor(self):
        assert _conforms("floor", 13, 12)
        assert _conforms("floor", 12, 12)
        assert not _conforms("floor", 11, 12)

    def test_conforms_floor_float_slack(self):
        # A float prediction a hair above the measurement (pure float
        # noise) must not fail the floor.
        assert _conforms("floor", 12, 12 + 1e-12)

    def test_stub_passes_when_measure_matches(self):
        result = check_spec(_stub_spec(), quick=True)
        assert result.ok and result.problems == []
        assert result.predicted_bits == 12 and result.measured_bits == 12

    def test_exact_bit_mismatch_is_reported(self):
        bad = _stub_spec(
            measured=MeasuredCost(rounds=3, bits=99, env={"n": 4, "t": 3})
        )
        result = check_spec(bad, quick=True)
        assert not result.ok
        assert any("bits" in p for p in result.problems)

    def test_exact_round_mismatch_is_reported(self):
        bad = _stub_spec(
            measured=MeasuredCost(rounds=7, bits=12, env={"n": 4, "t": 3})
        )
        result = check_spec(bad, quick=True)
        assert not result.ok
        assert any("rounds" in p for p in result.problems)

    def test_floor_violation_is_reported(self):
        below = _stub_spec(
            kind="floor",
            measured=MeasuredCost(rounds=3, bits=11, env={"n": 4, "t": 3}),
        )
        result = check_spec(below, quick=True)
        assert not result.ok

    def test_floor_overshoot_is_fine(self):
        above = _stub_spec(
            kind="floor",
            measured=MeasuredCost(rounds=5, bits=100, env={"n": 4, "t": 3}),
        )
        assert check_spec(above, quick=True).ok

    def test_ledger_disagreement_is_its_own_problem(self):
        lying = _stub_spec(
            measured=MeasuredCost(
                rounds=3, bits=12, env={"n": 4, "t": 3}, ledger_bits=11
            )
        )
        result = check_spec(lying, quick=True)
        assert not result.ok
        assert any("ledger disagreement" in p for p in result.problems)

    def test_full_params_are_used_when_quick_false(self):
        result = check_spec(_stub_spec(), quick=False)
        assert result.ok
        assert result.params == {"n": 8, "t": 5}
        assert result.measured_bits == 40


class TestSpecValidation:
    def test_kind_is_validated(self):
        with pytest.raises(ValueError, match="exact"):
            _stub_spec(kind="approximate")

    def test_at_least_one_expression_required(self):
        with pytest.raises(ValueError, match="no expressions"):
            _stub_spec(rounds_expr=None, bits_expr=None)

    def test_rounds_only_spec_skips_bits(self):
        result = check_spec(_stub_spec(bits_expr=None), quick=True)
        assert result.ok
        assert result.predicted_bits is None


class TestResultShape:
    def test_row_and_as_dict(self):
        result = check_spec(_stub_spec(), quick=True)
        row = result.row()
        assert row[0] == "stub"
        assert row[-1] == "ok"
        payload = result.as_dict()
        for key in (
            "name",
            "kind",
            "quick",
            "params",
            "predicted_bits",
            "measured_bits",
            "ledger_bits",
            "sympy_checked",
            "ok",
            "problems",
        ):
            assert key in payload
        assert payload["ok"] is True

    def test_mismatch_row_says_so(self):
        bad = _stub_spec(
            measured=MeasuredCost(rounds=3, bits=99, env={"n": 4, "t": 3})
        )
        assert check_spec(bad, quick=True).row()[-1] == "MISMATCH"
