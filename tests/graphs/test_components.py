"""Unit and property tests for union-find and component labelling."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    UnionFind,
    component_labels,
    components_from_edges,
    gnp_random_graph,
    labels_agree_with_components,
    one_cycle,
    two_cycles,
)


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(range(5))
        assert uf.component_count() == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.component_count() == 3

    def test_union_same_component_returns_false(self):
        uf = UnionFind(range(3))
        uf.union(0, 1)
        uf.union(1, 2)
        assert not uf.union(0, 2)

    def test_lazy_add_on_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert len(uf) == 2

    def test_find_unknown_raises(self):
        uf = UnionFind()
        try:
            uf.find(42)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_component_size(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(3) == 1

    def test_components_materialization(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        comps = sorted(sorted(c) for c in uf.components())
        assert comps == [[0, 1], [2], [3]]


class TestComponentLabels:
    def test_cycle_single_label(self):
        labels = component_labels(one_cycle(6))
        assert set(labels.values()) == {0}

    def test_two_cycles_two_labels(self):
        labels = component_labels(two_cycles(8, 4))
        assert set(labels.values()) == {0, 4}

    def test_labels_agree_accepts_valid(self):
        g = two_cycles(8, 4)
        assert labels_agree_with_components(g, component_labels(g))

    def test_labels_agree_accepts_renamed_labels(self):
        g = two_cycles(8, 4)
        labels = {v: ("L" if v < 4 else "R") for v in range(8)}
        assert labels_agree_with_components(g, labels)

    def test_labels_agree_rejects_merged_labels(self):
        g = two_cycles(8, 4)
        labels = {v: "same" for v in range(8)}
        assert not labels_agree_with_components(g, labels)

    def test_labels_agree_rejects_split_component(self):
        g = one_cycle(6)
        labels = {v: (0 if v < 3 else 1) for v in range(6)}
        assert not labels_agree_with_components(g, labels)

    def test_labels_agree_rejects_missing_vertex(self):
        g = one_cycle(4)
        labels = {0: 0, 1: 0, 2: 0}
        assert not labels_agree_with_components(g, labels)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=0, max_value=40))
    edges = [
        tuple(
            draw(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1])
            )
        )
        for _ in range(m)
    ]
    return n, edges


class TestUnionFindMatchesBFS:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_union_find_agrees_with_graph_components(self, data):
        n, edges = data
        uf = components_from_edges(n, edges)
        g = Graph(range(n), edges)
        bfs_comps = {frozenset(c) for c in g.connected_components()}
        uf_comps = {frozenset(c) for c in uf.components()}
        assert bfs_comps == uf_comps

    def test_random_gnp_agreement(self):
        rng = random.Random(7)
        for _ in range(10):
            g = gnp_random_graph(30, 0.05, rng)
            uf = components_from_edges(30, g.edges())
            assert uf.component_count() == len(g.connected_components())
