"""Tests for graph generators."""

import random

import pytest

from repro.graphs import (
    bounded_arboricity_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    one_cycle,
    path_graph,
    random_cycle,
    random_forest,
    random_union_of_cycles,
    two_cycles,
    union_of_cycles,
)


class TestCycleGenerators:
    def test_one_cycle_shape(self):
        g = one_cycle(5)
        assert g.vertex_count == 5 and g.edge_count == 5
        assert g.is_regular(2) and g.is_connected()

    def test_cycle_graph_order(self):
        g = cycle_graph([3, 1, 4])
        assert g.has_edge(3, 1) and g.has_edge(1, 4) and g.has_edge(4, 3)

    def test_cycle_too_short(self):
        with pytest.raises(ValueError):
            cycle_graph([0, 1])

    def test_cycle_repeated_vertices(self):
        with pytest.raises(ValueError):
            cycle_graph([0, 1, 0])

    def test_two_cycles_shape(self):
        g = two_cycles(10, 4)
        comps = sorted(len(c) for c in g.connected_components())
        assert comps == [4, 6]
        assert g.is_regular(2)

    def test_two_cycles_bad_split(self):
        with pytest.raises(ValueError):
            two_cycles(10, 2)
        with pytest.raises(ValueError):
            two_cycles(10, 8)

    def test_union_disjointness_enforced(self):
        with pytest.raises(ValueError):
            union_of_cycles([[0, 1, 2], [2, 3, 4]])

    def test_random_cycle_is_hamiltonian(self):
        rng = random.Random(3)
        for _ in range(5):
            g = random_cycle(9, rng)
            assert g.is_connected() and g.is_regular(2)
            assert g.vertex_count == 9

    def test_random_union_of_cycles(self):
        rng = random.Random(11)
        for k in (1, 2, 3):
            g = random_union_of_cycles(15, k, rng)
            assert g.is_regular(2)
            comps = g.connected_components()
            assert len(comps) == k
            assert all(len(c) >= 3 for c in comps)
            assert sum(len(c) for c in comps) == 15

    def test_random_union_too_many_cycles(self):
        with pytest.raises(ValueError):
            random_union_of_cycles(8, 3, random.Random(0))


class TestOtherGenerators:
    def test_gnp_extremes(self):
        rng = random.Random(5)
        assert gnp_random_graph(10, 0.0, rng).edge_count == 0
        assert gnp_random_graph(10, 1.0, rng).edge_count == 45

    def test_gnp_bad_probability(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5, random.Random(0))

    def test_random_forest_structure(self):
        rng = random.Random(9)
        g = random_forest(20, 3, rng)
        assert g.edge_count == 20 - 3  # forest with 3 trees
        assert len(g.connected_components()) == 3

    def test_random_forest_single_tree(self):
        g = random_forest(10, 1, random.Random(1))
        assert g.is_connected() and g.edge_count == 9

    def test_bounded_arboricity_is_sparse(self):
        g = bounded_arboricity_graph(30, 2, random.Random(2))
        assert g.edge_count <= 2 * 29

    def test_path_and_empty_and_complete(self):
        assert path_graph(6).edge_count == 5
        assert path_graph(6).is_connected()
        assert empty_graph(4).edge_count == 0
        assert len(empty_graph(4).connected_components()) == 4
        k5 = complete_graph(5)
        assert k5.edge_count == 10 and k5.is_regular(4)
