"""Tests for the sequential MST substrate (Kruskal ground truth)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    forest_weight,
    gnp_random_graph,
    is_spanning_forest,
    kruskal,
    one_cycle,
    random_weights,
    two_cycles,
    validate_weights,
)


class TestValidation:
    def test_missing_weight_rejected(self):
        g = one_cycle(4)
        with pytest.raises(ValueError):
            validate_weights(g, {(0, 1): 1.0})

    def test_extra_weight_rejected(self):
        g = Graph(range(3), [(0, 1)])
        with pytest.raises(ValueError):
            validate_weights(g, {(0, 1): 1.0, (1, 2): 2.0})


class TestKruskal:
    def test_cycle_drops_heaviest(self):
        g = one_cycle(5)
        weights = {e: float(i) for i, e in enumerate(sorted(g.edges()))}
        forest = kruskal(g, weights)
        assert len(forest) == 4
        heaviest = max(weights, key=weights.get)
        assert heaviest not in forest

    def test_disconnected_forest(self):
        g = two_cycles(8, 4)
        weights = random_weights(g, random.Random(2))
        forest = kruskal(g, weights)
        assert len(forest) == 6  # (4-1) + (4-1)
        assert is_spanning_forest(g, forest)

    def test_forest_weight(self):
        g = one_cycle(4)
        weights = {(min(u, v), max(u, v)): 2.0 for u, v in g.edges()}
        forest = kruskal(g, weights)
        assert forest_weight(forest, weights) == 2.0 * 3

    def test_is_spanning_forest_rejects_cycle(self):
        g = one_cycle(4)
        all_edges = {(min(u, v), max(u, v)) for u, v in g.edges()}
        assert not is_spanning_forest(g, all_edges)

    def test_is_spanning_forest_rejects_non_edges(self):
        g = Graph(range(4), [(0, 1), (2, 3)])
        assert not is_spanning_forest(g, {(0, 2)})

    def test_is_spanning_forest_requires_spanning(self):
        g = one_cycle(5)
        assert not is_spanning_forest(g, {(0, 1)})


def _brute_force_msf(graph, weights):
    """Exponential reference: try all acyclic spanning subsets."""
    from itertools import combinations

    edges = sorted(weights)
    target_components = len(graph.connected_components())
    size = graph.vertex_count - target_components
    best = None
    for subset in combinations(edges, size):
        s = set(subset)
        if is_spanning_forest(graph, s):
            w = forest_weight(s, weights)
            if best is None or w < best:
                best = w
    return best


class TestAgainstBruteForce:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_kruskal_is_minimum(self, seed):
        rng = random.Random(seed)
        g = gnp_random_graph(6, 0.5, rng)
        if g.edge_count == 0:
            return
        weights = random_weights(g, rng)
        forest = kruskal(g, weights)
        assert is_spanning_forest(g, forest)
        brute = _brute_force_msf(g, weights)
        assert forest_weight(forest, weights) == pytest.approx(brute)
