"""Tests for arboricity bounds and forest decompositions."""

import random

from repro.graphs import (
    Graph,
    arboricity_upper_bound,
    complete_graph,
    degeneracy,
    greedy_forest_decomposition,
    is_uniformly_sparse,
    nash_williams_lower_bound,
    one_cycle,
    random_forest,
)
from repro.graphs.components import UnionFind


def _is_forest(n_vertices, edges):
    uf = UnionFind()
    for u, v in edges:
        if not uf.union(u, v):
            return False
    return True


class TestForestDecomposition:
    def test_forest_decomposes_into_one_forest(self):
        g = random_forest(15, 2, random.Random(4))
        forests = greedy_forest_decomposition(g)
        assert len(forests) == 1

    def test_cycle_needs_two_forests(self):
        forests = greedy_forest_decomposition(one_cycle(8))
        assert len(forests) == 2
        for f in forests:
            assert _is_forest(8, f)

    def test_decomposition_partitions_edges(self):
        g = complete_graph(6)
        forests = greedy_forest_decomposition(g)
        all_edges = [frozenset(e) for f in forests for e in f]
        assert len(all_edges) == g.edge_count
        assert len(set(all_edges)) == g.edge_count

    def test_every_part_is_a_forest(self):
        g = complete_graph(7)
        for f in greedy_forest_decomposition(g):
            assert _is_forest(7, f)


class TestBounds:
    def test_nash_williams_on_cycle(self):
        assert nash_williams_lower_bound(one_cycle(10)) == 2

    def test_nash_williams_on_empty(self):
        assert nash_williams_lower_bound(Graph(range(5))) == 0

    def test_nash_williams_on_complete(self):
        # K_n has arboricity ceil(n/2); the whole-graph bound gives it exactly
        assert nash_williams_lower_bound(complete_graph(8)) == 4

    def test_lower_bound_le_upper_bound(self):
        rng = random.Random(8)
        for _ in range(5):
            g = random_forest(12, 2, rng)
            g.add_edge(0, 11)
            assert nash_williams_lower_bound(g) <= arboricity_upper_bound(g)

    def test_degeneracy_of_cycle(self):
        assert degeneracy(one_cycle(9)) == 2

    def test_degeneracy_of_complete(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_degeneracy_of_forest(self):
        g = random_forest(20, 1, random.Random(3))
        assert degeneracy(g) == 1

    def test_degeneracy_sandwich(self):
        # arboricity <= degeneracy <= 2*arboricity - 1, using greedy upper
        # bound for arboricity: degeneracy <= 2*greedy - 1 may fail only when
        # greedy overshoots; check the safe direction on K_n
        g = complete_graph(7)
        a_upper = arboricity_upper_bound(g)
        assert nash_williams_lower_bound(g) <= degeneracy(g) + 1
        assert degeneracy(g) <= 2 * a_upper

    def test_is_uniformly_sparse(self):
        assert is_uniformly_sparse(one_cycle(12), 2)
        assert not is_uniformly_sparse(complete_graph(10), 2)
