"""Unit tests for the base Graph type."""

import pytest

from repro.graphs import Graph, normalize_edge, one_cycle, two_cycles


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.vertex_count == 0
        assert g.edge_count == 0
        assert g.is_connected()  # vacuously

    def test_vertices_and_edges(self):
        g = Graph(range(4), [(0, 1), (1, 2)])
        assert g.vertex_count == 4
        assert g.edge_count == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(5)
        g.add_vertex(5)
        assert g.vertex_count == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_duplicate_edge_is_noop(self):
        g = Graph(range(2), [(0, 1), (0, 1), (1, 0)])
        assert g.edge_count == 1


class TestRemoveAndCopy:
    def test_remove_edge(self):
        g = Graph(range(3), [(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.edge_count == 1

    def test_remove_missing_edge_raises(self):
        g = Graph(range(3), [(0, 1)])
        with pytest.raises(KeyError):
            g.remove_edge(0, 2)

    def test_copy_is_independent(self):
        g = Graph(range(3), [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert h.has_edge(1, 2)

    def test_equality(self):
        g = Graph(range(3), [(0, 1)])
        h = Graph(range(3), [(1, 0)])
        assert g == h
        h.add_edge(1, 2)
        assert g != h


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph(range(4), [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.neighbors(0) == {1, 2, 3}
        assert g.max_degree() == 3

    def test_neighbors_returns_copy(self):
        g = Graph(range(3), [(0, 1)])
        nbrs = g.neighbors(0)
        nbrs.add(2)
        assert g.neighbors(0) == {1}

    def test_is_regular(self):
        assert one_cycle(5).is_regular(2)
        assert not one_cycle(5).is_regular(3)

    def test_edges_reported_once(self):
        g = one_cycle(6)
        edges = list(g.edges())
        assert len(edges) == 6
        assert len({frozenset(e) for e in edges}) == 6

    def test_edge_set_hashable(self):
        a = one_cycle(4).edge_set()
        b = one_cycle(4).edge_set()
        assert a == b and hash(a) == hash(b)


class TestComponentsAndCycles:
    def test_one_cycle_connected(self):
        assert one_cycle(7).is_connected()

    def test_two_cycles_disconnected(self):
        g = two_cycles(8, 4)
        assert not g.is_connected()
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [4, 4]

    def test_long_cycle_no_recursion_error(self):
        g = one_cycle(5000)
        assert g.is_connected()

    def test_is_disjoint_union_of_cycles(self):
        assert one_cycle(5).is_disjoint_union_of_cycles()
        assert two_cycles(9, 4).is_disjoint_union_of_cycles()
        g = Graph(range(3), [(0, 1)])
        assert not g.is_disjoint_union_of_cycles()

    def test_cycle_decomposition_single(self):
        cycles = one_cycle(6).cycle_decomposition()
        assert len(cycles) == 1
        assert sorted(cycles[0]) == list(range(6))

    def test_cycle_decomposition_two(self):
        cycles = two_cycles(9, 4).cycle_decomposition()
        assert sorted(sorted(c) for c in cycles) == [[0, 1, 2, 3], [4, 5, 6, 7, 8]]

    def test_cycle_decomposition_requires_2_regular(self):
        g = Graph(range(4), [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            g.cycle_decomposition()


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            normalize_edge(2, 2)
