"""Merge-law and worker-invariance tests for the population sketches.

Two layers:

* property tests (hypothesis) driving every registered ``sketch.*``
  monoid through the algebraic laws -- associativity, commutativity,
  identity -- on *serialized* states, exactly as shard parents fold them;
* parity tests pinning the end-to-end contract: a sketch built in one
  serial pass over a stream equals the fold of per-shard sketches for
  workers in {1, 2}, and the instrumented engines (fault sweep,
  sampling, exhaustive scan) report bit-identical populations for every
  worker count.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketches import (
    DEFAULT_QUANTILE_CAP,
    DEFAULT_TOPK_CAP,
    SKETCH_KINDS,
    MomentsSketch,
    QuantileSketch,
    TopKSketch,
    merge_population,
    population_summary,
    sketch_from_dict,
)
from repro.parallel.merge import get_monoid, monoid_names

# ----------------------------------------------------------------------
# strategies: serialized sketch states, built only through update()
# ----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
small_counts = st.integers(min_value=1, max_value=50)
topk_keys = st.sampled_from(
    ["YES", "NO", "crash", "erasure", "bit_flip", "simulate", "decision", "other"]
)


def _quantile_state(observations, cap=8):
    sketch = QuantileSketch(cap=cap)
    for value, count in observations:
        sketch.update(value, count)
    return sketch.to_dict()


def _topk_state(observations, cap=4):
    sketch = TopKSketch(cap=cap)
    for key, count in observations:
        sketch.update(key, count)
    return sketch.to_dict()


def _moments_state(observations):
    sketch = MomentsSketch()
    for value, count in observations:
        sketch.update(value, count)
    return sketch.to_dict()


quantile_states = st.lists(
    st.tuples(finite_floats, small_counts), max_size=12
).map(lambda obs: _quantile_state(obs))
topk_states = st.lists(st.tuples(topk_keys, small_counts), max_size=12).map(
    lambda obs: _topk_state(obs)
)
moments_states = st.lists(st.tuples(finite_floats, small_counts), max_size=12).map(
    lambda obs: _moments_state(obs)
)
# each name carries a fixed kind, as in the real engines (merging two
# kinds under one name is a hard error, tested separately below)
population_states = st.fixed_dictionaries(
    {},
    optional={
        "rounds": quantile_states,
        "bits": moments_states,
        "outcomes": topk_states,
    },
)

#: monoid name -> a strategy of valid operands (None = absent shard).
_STATE_STRATEGIES = {
    "sketch.quantile": st.one_of(st.none(), quantile_states),
    "sketch.topk": st.one_of(st.none(), topk_states),
    "sketch.moments": st.one_of(st.none(), moments_states),
    "sketch.population": st.one_of(st.none(), population_states),
}

SKETCH_MONOIDS = sorted(name for name in monoid_names() if name.startswith("sketch."))


def test_every_sketch_monoid_is_registered_and_covered():
    assert SKETCH_MONOIDS == sorted(_STATE_STRATEGIES)
    assert set(SKETCH_MONOIDS) == {
        "sketch.moments",
        "sketch.population",
        "sketch.quantile",
        "sketch.topk",
    }


# ----------------------------------------------------------------------
# the monoid laws, for every registered sketch monoid
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", SKETCH_MONOIDS)
def test_identity_laws(name):
    monoid = get_monoid(name)

    @given(a=_STATE_STRATEGIES[name])
    @settings(max_examples=50, deadline=None)
    def check(a):
        assert monoid.combine(monoid.identity(), a) == a
        assert monoid.combine(a, monoid.identity()) == a

    check()


@pytest.mark.parametrize("name", SKETCH_MONOIDS)
def test_commutativity(name):
    monoid = get_monoid(name)
    operands = _STATE_STRATEGIES[name]

    @given(a=operands, b=operands)
    @settings(max_examples=100, deadline=None)
    def check(a, b):
        assert monoid.combine(a, b) == monoid.combine(b, a)

    check()


@pytest.mark.parametrize("name", SKETCH_MONOIDS)
def test_associativity(name):
    monoid = get_monoid(name)
    operands = _STATE_STRATEGIES[name]

    @given(a=operands, b=operands, c=operands)
    @settings(max_examples=100, deadline=None)
    def check(a, b, c):
        left = monoid.combine(monoid.combine(a, b), c)
        right = monoid.combine(a, monoid.combine(b, c))
        assert left == right

    check()


@given(
    observations=st.lists(st.tuples(finite_floats, small_counts), max_size=30),
    workers=st.sampled_from([1, 2]),
)
@settings(max_examples=100, deadline=None)
def test_quantile_serial_equals_sharded(observations, workers):
    serial = QuantileSketch(cap=8)
    for value, count in observations:
        serial.update(value, count)
    shard_states = [
        _quantile_state(observations[shard::workers]) for shard in range(workers)
    ]
    folded = get_monoid("sketch.quantile").fold(shard_states)
    assert folded == serial.to_dict()


@given(
    observations=st.lists(st.tuples(topk_keys, small_counts), max_size=30),
    workers=st.sampled_from([1, 2]),
)
@settings(max_examples=100, deadline=None)
def test_topk_serial_equals_sharded(observations, workers):
    serial = TopKSketch(cap=4)
    for key, count in observations:
        serial.update(key, count)
    shard_states = [
        _topk_state(observations[shard::workers]) for shard in range(workers)
    ]
    folded = get_monoid("sketch.topk").fold(shard_states)
    assert folded == serial.to_dict()


@given(
    observations=st.lists(st.tuples(finite_floats, small_counts), max_size=30),
    workers=st.sampled_from([1, 2]),
)
@settings(max_examples=100, deadline=None)
def test_moments_serial_equals_sharded(observations, workers):
    serial = MomentsSketch()
    for value, count in observations:
        serial.update(value, count)
    shard_states = [
        _moments_state(observations[shard::workers]) for shard in range(workers)
    ]
    folded = get_monoid("sketch.moments").fold(shard_states)
    assert folded == serial.to_dict()


@given(
    observations=st.lists(st.tuples(finite_floats, small_counts), max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_merge_order_is_irrelevant(observations):
    """Any shuffling of single-observation sketches folds to the same
    state -- the arrival-order-independence claim, directly."""
    singles = [_quantile_state([obs]) for obs in observations]
    shuffled = list(singles)
    random.Random(0).shuffle(shuffled)
    monoid = get_monoid("sketch.quantile")
    assert monoid.fold(singles) == monoid.fold(shuffled)


# ----------------------------------------------------------------------
# sketch unit behavior
# ----------------------------------------------------------------------


class TestQuantileSketch:
    def test_exact_below_cap(self):
        sketch = QuantileSketch(cap=100)
        for v in range(1, 101):
            sketch.update(float(v))
        assert sketch.exact_mode
        assert sketch.quantile(50) == 50.0
        assert sketch.quantile(99) == 99.0
        assert sketch.summary()["mode"] == "exact"
        assert sketch.mean() == pytest.approx(50.5)

    def test_binned_above_cap_bounded_relative_error(self):
        sketch = QuantileSketch(cap=64)
        values = [1.0 + 0.01 * i for i in range(1000)]
        for v in values:
            sketch.update(v)
        assert not sketch.exact_mode
        for pct in (50, 90, 99):
            exact = sorted(values)[max(1, math.ceil(pct / 100 * len(values))) - 1]
            estimate = sketch.quantile(pct)
            # worst-case midpoint error is half a sub-bin: 1/32 of the
            # octave span, i.e. < 1/32 relative at mantissa 0.5
            assert abs(estimate - exact) / exact < 0.04
        assert sketch.summary()["min"] == 1.0
        assert sketch.summary()["max"] == pytest.approx(10.99)

    def test_collapse_timing_does_not_matter(self):
        early = QuantileSketch(cap=4)
        late = QuantileSketch(cap=4)
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for v in values:
            early.update(v)
        for v in reversed(values):
            late.update(v)
        assert early.to_dict() == late.to_dict()

    def test_roundtrip(self):
        sketch = QuantileSketch(cap=4)
        for v in (0.5, -1.25, 0.0, 3.5, 2.0, 0.5):
            sketch.update(v)
        state = sketch.to_dict()
        assert sketch_from_dict(state).to_dict() == state

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            QuantileSketch().update(float("nan"))
        with pytest.raises(ValueError):
            QuantileSketch().update(float("inf"))

    def test_rejects_cap_mismatch_merge(self):
        with pytest.raises(ValueError):
            QuantileSketch(cap=4).merge(QuantileSketch(cap=8))

    def test_negative_zero_normalized(self):
        a = QuantileSketch().update(-0.0)
        b = QuantileSketch().update(0.0)
        assert a.to_dict() == b.to_dict()


class TestTopKSketch:
    def test_exact_small_keyspace(self):
        sketch = TopKSketch(cap=8)
        for key, count in [("YES", 5), ("NO", 3), ("YES", 2)]:
            sketch.update(key, count)
        assert sketch.top() == [("YES", 7), ("NO", 3)]
        assert sketch.other_count == 0

    def test_eviction_keeps_lexicographically_smallest(self):
        sketch = TopKSketch(cap=2)
        sketch.update("c", 10).update("b", 5).update("a", 1).update("d", 7)
        state = sketch.to_dict()
        assert [k for k, _ in state["counts"]] == ["a", "b"]
        assert state["other"] == 17  # c's 10 + d's 7
        assert sketch.count == 23

    def test_retained_set_is_order_invariant(self):
        keys = ["e", "a", "c", "b", "d", "a", "c"]
        forward = TopKSketch(cap=3)
        backward = TopKSketch(cap=3)
        for k in keys:
            forward.update(k)
        for k in reversed(keys):
            backward.update(k)
        assert forward.to_dict() == backward.to_dict()

    def test_rejects_non_str_keys(self):
        with pytest.raises(ValueError):
            TopKSketch().update(3)  # type: ignore[arg-type]

    def test_roundtrip(self):
        sketch = TopKSketch(cap=2).update("x", 4).update("y", 2).update("z", 1)
        state = sketch.to_dict()
        assert sketch_from_dict(state).to_dict() == state


class TestMomentsSketch:
    def test_exact_mean_and_variance(self):
        sketch = MomentsSketch()
        for v in (1.0, 2.0, 3.0, 4.0):
            sketch.update(v)
        assert sketch.mean() == 2.5
        assert sketch.variance() == 1.25

    def test_variance_never_negative_on_floats(self):
        sketch = MomentsSketch()
        for _ in range(1000):
            sketch.update(0.1)
        assert sketch.variance() == 0.0

    def test_roundtrip_preserves_rationals(self):
        sketch = MomentsSketch().update(0.1, 3).update(-2.5)
        state = sketch.to_dict()
        assert sketch_from_dict(state).to_dict() == state

    def test_empty_summary(self):
        summary = MomentsSketch().summary()
        assert summary["count"] == 0
        assert summary["mean"] is None


class TestWireFormat:
    def test_sketch_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            sketch_from_dict({"kind": "hyperloglog"})

    def test_kinds_table_complete(self):
        assert set(SKETCH_KINDS) == {"quantile", "topk", "moments"}

    def test_counts_default_caps(self):
        assert QuantileSketch().cap == DEFAULT_QUANTILE_CAP == 4096
        assert TopKSketch().cap == DEFAULT_TOPK_CAP == 64

    def test_merge_population_kind_mismatch_raises(self):
        a = {"rounds": _quantile_state([(1.0, 1)])}
        b = {"rounds": _moments_state([(1.0, 1)])}
        with pytest.raises(ValueError):
            merge_population(a, b)

    def test_population_summary_sorted_and_none_tolerant(self):
        assert population_summary(None) == {}
        pop = {
            "z": _moments_state([(2.0, 1)]),
            "a": _quantile_state([(1.0, 2)]),
        }
        summary = population_summary(pop)
        assert list(summary) == ["a", "z"]
        assert summary["a"]["count"] == 2


# ----------------------------------------------------------------------
# end-to-end worker parity of the instrumented engines
# ----------------------------------------------------------------------


class TestEnginePopulationParity:
    def test_fault_sweep_population_worker_invariant(self):
        from repro.resilience import fault_sweep

        kwargs = dict(
            algorithms=("neighbor_exchange",),
            kinds=("erasure",),
            rates=(0.0, 0.2),
            n=6,
            trials=3,
            seed=5,
        )
        serial = fault_sweep(workers=1, **kwargs)
        sharded = fault_sweep(workers=2, **kwargs)
        assert serial.population is not None
        assert serial.population == sharded.population
        summary = population_summary(serial.population)
        assert summary["rounds"]["count"] == 1 * 2 * 3  # kinds x rates x trials

    def test_exhaustive_population_worker_and_kernel_invariant(self):
        from repro.lowerbounds.exhaustive import universal_bound_id_oblivious

        kwargs = dict(alphabet=("0", "1"), population=True)
        serial = universal_bound_id_oblivious(4, vectorize=False, **kwargs)
        sharded = universal_bound_id_oblivious(4, workers=2, vectorize=False, **kwargs)
        vectorized = universal_bound_id_oblivious(4, vectorize=True, **kwargs)
        assert serial.population is not None
        assert serial.population == sharded.population == vectorized.population
        assert (
            population_summary(serial.population)["forced_error"]["count"] == 2**4
        )

    def test_exhaustive_population_off_by_default(self):
        from repro.lowerbounds.exhaustive import universal_bound_id_oblivious

        report = universal_bound_id_oblivious(3, alphabet=("0", "1"))
        assert report.population is None

    def test_sampling_population_worker_invariant(self):
        from repro.information.sampling import estimate_protocol_information
        from repro.twoparty import TrivialPartitionCompProtocol

        n = 5
        serial = estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples=60,
            rng=random.Random(11), workers=1,
        )
        sharded = estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples=60,
            rng=random.Random(11), workers=2,
        )
        assert serial.population is not None
        assert serial.population == sharded.population
