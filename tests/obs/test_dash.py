"""Tests for the self-contained HTML dashboard (repro.obs.dash)."""

import pytest

from repro.obs.dash import DASH_GENERATOR, build_dashboard, validate_dashboard_html


def _history_record(name="kt1_simulation", wall=0.02, ts=1000):
    return {
        "schema_version": 1,
        "ts": ts,
        "git_sha": "abc1234",
        "quick": True,
        "workers": 1,
        "kernel": "auto",
        "entries": {name: {"wall_time_seconds": wall, "ok": True}},
    }


def _bench_payload(per_phase=None):
    costs = {"total_bits": 36}
    if per_phase is not None:
        costs["per_phase"] = per_phase
    return (
        "BENCH_kt1_simulation.json",
        {
            "schema_version": 3,
            "name": "kt1_simulation",
            "quick": True,
            "ok": True,
            "wall_time_seconds": 0.02,
            "costs": costs,
        },
    )


def _span_payload():
    return {
        "schema_version": 1,
        "created_unix": 0,
        "roots": [
            {
                "name": "run",
                "wall_seconds": 1.0,
                "children": [
                    {"name": "round", "wall_seconds": 0.6, "children": []}
                ],
            }
        ],
    }


def _sweep_payload():
    return {
        "schema_version": 2,
        "kind": "fault_sweep",
        "n": 6,
        "trials": 4,
        "seed": 3,
        "curves": [
            {
                "algorithm": "flooding",
                "fault_kind": "crash",
                "points": [
                    {
                        "rate": 0.0,
                        "trials": 4,
                        "correct": 4,
                        "correctness_rate": 1.0,
                        "faults_injected": 0,
                        "rounds_total": 24,
                    },
                    {
                        "rate": 0.2,
                        "trials": 4,
                        "correct": 3,
                        "correctness_rate": 0.75,
                        "faults_injected": 5,
                        "rounds_total": 24,
                    },
                ],
            }
        ],
    }


class TestBuildDashboard:
    def test_empty_inputs_still_render_all_sections(self):
        html = build_dashboard()
        assert validate_dashboard_html(html) == []
        for heading in (
            "Benchmark history",
            "Benchmarks",
            "Span hot paths",
            "Fault degradation",
            "Recorded sessions",
        ):
            assert f"<h2>{heading}</h2>" in html

    def test_byte_identical_under_pinned_timestamp(self):
        kwargs = dict(
            history=[_history_record(), _history_record(wall=0.03, ts=2000)],
            bench_payloads=[_bench_payload()],
            sweep=_sweep_payload(),
            span_payload=_span_payload(),
            timestamp="2026-08-08T00:00:00Z",
        )
        assert build_dashboard(**kwargs) == build_dashboard(**kwargs)

    def test_unpinned_timestamp_is_a_constant_not_wall_clock(self):
        assert "(not pinned)" in build_dashboard()
        assert build_dashboard() == build_dashboard()

    def test_timestamp_is_escaped_and_rendered(self):
        html = build_dashboard(timestamp="<b>now</b>")
        assert "<b>now</b>" not in html
        assert "&lt;b&gt;now&lt;/b&gt;" in html

    def test_history_sparkline_present(self):
        html = build_dashboard(
            history=[_history_record(wall=w, ts=i) for i, w in enumerate([0.01, 0.02, 0.04])]
        )
        assert "kt1_simulation" in html
        # sparklines use the block-character ramp
        assert any(ch in html for ch in "▁▂▃▄▅▆▇█")

    def test_bench_per_phase_breakdown(self):
        html = build_dashboard(
            bench_payloads=[_bench_payload(per_phase={"simulate": 30, "decision": 6})]
        )
        assert "simulate" in html and "decision" in html
        assert "83.3%" in html  # 30/36

    def test_span_tree_rows(self):
        html = build_dashboard(span_payload=_span_payload())
        assert "run" in html and "round" in html

    def test_sweep_curves_and_population(self):
        from repro.resilience import fault_sweep

        report = fault_sweep(
            algorithms=("neighbor_exchange",),
            kinds=("erasure",),
            rates=(0.0, 0.2),
            n=6,
            trials=2,
            seed=1,
        )
        html = build_dashboard(sweep=report.as_payload())
        assert "neighbor_exchange" in html
        assert "Sweep population" in html
        assert validate_dashboard_html(html) == []

    def test_malicious_payload_strings_are_escaped(self):
        evil = _sweep_payload()
        evil["curves"][0]["algorithm"] = '<script>alert(1)</script>'
        html = build_dashboard(sweep=evil)
        assert validate_dashboard_html(html) == []
        assert "<script>" not in html


class TestValidator:
    def test_accepts_real_dashboard(self):
        assert validate_dashboard_html(build_dashboard()) == []

    def test_rejects_scripts_links_and_external_refs(self):
        base = build_dashboard()
        assert validate_dashboard_html(base + "<script>x</script>") != []
        assert validate_dashboard_html(
            base.replace("</head>", '<link rel="stylesheet" href="x.css"></head>')
        ) != []
        assert validate_dashboard_html(
            base.replace("</body>", '<img src="https://evil.example/x.png"></body>')
        ) != []
        assert validate_dashboard_html(
            base.replace("</body>", '<a href="//cdn.example/lib">x</a></body>')
        ) != []

    def test_rejects_missing_prologue_and_marker(self):
        assert "missing <!DOCTYPE html> prologue" in validate_dashboard_html("<html></html>")
        stripped = build_dashboard().replace(f'content="{DASH_GENERATOR}"', 'content="x"')
        assert any("generator marker" in p for p in validate_dashboard_html(stripped))

    def test_rejects_css_imports_and_urls(self):
        base = build_dashboard()
        assert validate_dashboard_html(
            base.replace("</head>", "<style>@import 'x';</style></head>")
        ) != []
        assert validate_dashboard_html(
            base.replace("</head>", "<style>body{background:url(x.png)}</style></head>")
        ) != []


class TestSessionsSection:
    def test_recorded_session_with_delivery_stats(self, tmp_path):
        from repro.replay import read_session, record_session

        path = tmp_path / "session.json"
        params = {
            "n": 6,
            "algorithm": "neighbor_exchange",
            "instance": "one_cycle",
            "rounds": 6,
            "network": {"max_delay": 2, "duplicate_rate": 0.2, "seed": 7},
        }
        record_session("run", params, str(path))
        session = read_session(str(path))
        html = build_dashboard(sessions=[session])
        assert validate_dashboard_html(html) == []
        assert "run" in html
        assert "Delivery" in html
