"""Tests for the hierarchical span profiler: recorder semantics, the
span() context manager/decorator, thread-local nesting, trace-v3 export,
payload validation, rendering, and the instrumented kernels."""

import json
import random
import threading

import pytest

from repro.obs import (
    SPAN_TREE_SCHEMA_VERSION,
    SpanRecorder,
    aggregate_spans,
    get_recorder,
    render_hotspots,
    render_span_tree,
    set_recorder,
    span,
    use_recorder,
    validate_span_tree_payload,
    validate_trace_events,
)
from repro.obs.trace import RunTrace


class TestSpanRecorder:
    def test_nesting_builds_a_tree(self):
        rec = SpanRecorder()
        outer = rec.start("outer", n=4)
        inner = rec.start("inner")
        rec.finish(inner)
        rec.finish(outer)
        roots = rec.roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].attrs == {"n": 4}
        assert roots[0].finished and roots[0].children[0].finished

    def test_siblings_attach_to_the_same_parent(self):
        rec = SpanRecorder()
        parent = rec.start("parent")
        for name in ("a", "b", "c"):
            child = rec.start(name)
            rec.finish(child)
        rec.finish(parent)
        assert [c.name for c in rec.roots[0].children] == ["a", "b", "c"]

    def test_durations_and_self_time(self):
        rec = SpanRecorder()
        outer = rec.start("outer")
        inner = rec.start("inner")
        rec.finish(inner)
        rec.finish(outer)
        assert outer.duration_seconds >= inner.duration_seconds >= 0.0
        assert outer.self_seconds == pytest.approx(
            outer.duration_seconds - inner.duration_seconds
        )

    def test_finish_closes_stale_descendants(self):
        """An exception that skips inner finishes must not corrupt the tree."""
        rec = SpanRecorder()
        outer = rec.start("outer")
        rec.start("leaked")
        rec.start("leaked_deeper")
        rec.finish(outer)  # lenient: closes everything above too
        assert rec.current is None
        assert all(s.finished for root in rec.roots for s in root.walk())

    def test_finish_unopened_span_raises(self):
        rec = SpanRecorder()
        node = rec.start("a")
        rec.finish(node)
        with pytest.raises(ValueError):
            rec.finish(node)

    def test_span_ids_unique(self):
        rec = SpanRecorder()
        for _ in range(5):
            rec.finish(rec.start("x"))
        ids = [s.span_id for root in rec.roots for s in root.walk()]
        assert len(set(ids)) == len(ids)

    def test_reset_clears_roots_and_stack(self):
        rec = SpanRecorder()
        rec.start("open")
        rec.reset()
        assert rec.roots == []
        assert rec.current is None
        assert rec.span_count() == 0

    def test_thread_local_stacks(self):
        """Spans on thread B never attach under thread A's open span."""
        rec = SpanRecorder()
        main = rec.start("main")
        seen = {}

        def worker():
            s = rec.start("worker")
            seen["parentless"] = rec.roots  # worker must be a root
            rec.finish(s)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        rec.finish(main)
        names = sorted(r.name for r in rec.roots)
        assert names == ["main", "worker"]
        assert rec.roots[0].children == [] or all(
            c.name != "worker" for c in rec.roots[0].children
        )


class TestSpanContextManager:
    def test_noop_without_recorder(self):
        assert get_recorder() is None
        with span("free") as node:
            assert node is None  # nothing allocated, nothing recorded

    def test_records_under_installed_recorder(self):
        rec = SpanRecorder()
        with use_recorder(rec):
            with span("outer", n=3):
                with span("inner"):
                    pass
        assert [r.name for r in rec.roots] == ["outer"]
        assert rec.roots[0].attrs == {"n": 3}
        assert [c.name for c in rec.roots[0].children] == ["inner"]

    def test_exception_still_closes_span(self):
        rec = SpanRecorder()
        with use_recorder(rec):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert rec.roots[0].finished

    def test_decorator_and_recursion(self):
        rec = SpanRecorder()

        @span("fib")
        def fib(k):
            return k if k < 2 else fib(k - 1) + fib(k - 2)

        with use_recorder(rec):
            assert fib(5) == 5
        # each recursive call got its own span, properly nested
        root = rec.roots[0]
        assert root.name == "fib"
        assert all(s.name == "fib" for s in root.walk())
        assert rec.span_count() > 5

    def test_use_recorder_restores_previous(self):
        first, second = SpanRecorder(), SpanRecorder()
        previous = set_recorder(first)
        try:
            with use_recorder(second):
                assert get_recorder() is second
            assert get_recorder() is first
        finally:
            set_recorder(previous)


class TestPayloadAndRendering:
    def _tree(self):
        rec = SpanRecorder()
        with use_recorder(rec):
            with span("run", n=8):
                for t in range(3):
                    with span("round", t=t):
                        with span("broadcast"):
                            pass
        return rec

    def test_payload_validates(self):
        payload = self._tree().tree_payload()
        assert payload["schema_version"] == SPAN_TREE_SCHEMA_VERSION
        assert validate_span_tree_payload(payload) == []

    def test_payload_json_roundtrip(self):
        payload = self._tree().tree_payload()
        assert validate_span_tree_payload(json.loads(json.dumps(payload))) == []

    def test_validator_flags_problems(self):
        assert validate_span_tree_payload({}) != []
        bad = self._tree().tree_payload()
        bad["roots"][0].pop("name")
        bad["roots"][0]["children"][0]["duration_seconds"] = "fast"
        problems = validate_span_tree_payload(bad)
        assert any("name" in p for p in problems)
        assert any("duration_seconds" in p for p in problems)
        newer = {"schema_version": SPAN_TREE_SCHEMA_VERSION + 1,
                 "created_unix": 0.0, "roots": []}
        assert any("newer" in p for p in validate_span_tree_payload(newer))

    def test_aggregate_merges_repeated_paths(self):
        rows = aggregate_spans(self._tree())
        by_name = {r["name"]: r for r in rows}
        assert by_name["round"]["count"] == 3
        assert by_name["broadcast"]["count"] == 3
        assert by_name["round"]["depth"] == 1
        # cumulative time is additive down the tree
        assert by_name["run"]["cumulative_seconds"] >= by_name["round"]["cumulative_seconds"]

    def test_render_tree_and_hotspots(self):
        rec = self._tree()
        tree = render_span_tree(rec)
        assert "run" in tree and "round" in tree and "broadcast" in tree
        shallow = render_span_tree(rec, max_depth=0)
        assert "broadcast" not in shallow
        hot = render_hotspots(rec, top=2)
        assert len(hot.splitlines()) == 4  # header + rule + 2 rows
        assert render_span_tree(SpanRecorder()) == "(no spans recorded)"

    def test_trace_v3_mirroring_validates(self):
        import io

        from repro.obs import read_trace

        buf = io.StringIO()
        trace = RunTrace(buf)
        rec = SpanRecorder(trace=trace)
        with use_recorder(rec):
            with span("outer", n=2):
                with span("inner"):
                    pass
        trace.close()
        events = read_trace(io.StringIO(buf.getvalue()))
        kinds = [e["event"] for e in events]
        assert kinds.count("span_start") == 2
        assert kinds.count("span_end") == 2
        assert validate_trace_events(events) == []
        starts = {e["name"]: e for e in events if e["event"] == "span_start"}
        assert starts["outer"]["parent_id"] is None
        assert starts["inner"]["parent_id"] == starts["outer"]["span_id"]
        ends = {e["name"]: e for e in events if e["event"] == "span_end"}
        assert ends["outer"]["duration_seconds"] >= ends["inner"]["duration_seconds"]


class TestInstrumentedKernels:
    def test_simulator_emits_run_round_phase_spans(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        rec = SpanRecorder()
        rounds = 3
        with use_recorder(rec):
            result = Simulator(BCC1_KT0).run(
                one_cycle_instance(8, kt=0), ConstantAlgorithm, rounds
            )
        run = rec.roots[0]
        assert run.name == "simulator.run"
        assert run.attrs["n"] == 8
        assert run.attrs["rounds_executed"] == result.rounds_executed
        round_spans = [c for c in run.children if c.name == "simulator.round"]
        assert len(round_spans) == rounds
        for rnd in round_spans:
            assert [c.name for c in rnd.children] == [
                "simulator.broadcast",
                "simulator.deliver",
            ]

    def test_simulator_result_identical_with_and_without_recorder(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        inst = one_cycle_instance(10, kt=0)
        bare = Simulator(BCC1_KT0).run(inst, ConstantAlgorithm, 4)
        with use_recorder(SpanRecorder()):
            recorded = Simulator(BCC1_KT0).run(inst, ConstantAlgorithm, 4)
        assert bare.broadcast_history == recorded.broadcast_history
        assert bare.outputs == recorded.outputs

    def test_exhaustive_emits_search_phases(self):
        from repro.lowerbounds.exhaustive import (
            clear_pair_cache,
            universal_bound_id_oblivious,
        )

        clear_pair_cache()  # the precompute span only fires on a cold cache
        rec = SpanRecorder()
        with use_recorder(rec):
            universal_bound_id_oblivious(5, alphabet=("0", "1"))
        root = rec.roots[0]
        assert root.name == "exhaustive.search"
        assert root.attrs == {"n": 5, "class_size": 32}
        assert [c.name for c in root.children] == [
            "exhaustive.precompute_pairs",
            "exhaustive.enumerate",
        ]

    def test_linalg_and_matching_and_sampling_spans(self):
        from repro.indist.graph_builder import build_combinatorial_graph
        from repro.indist.matching import hopcroft_karp
        from repro.information.sampling import estimate_protocol_information
        from repro.partitions.linalg import rank_exact
        from repro.twoparty import TrivialPartitionCompProtocol

        rec = SpanRecorder()
        with use_recorder(rec):
            rank_exact([[1, 0], [0, 1]])
            graph = build_combinatorial_graph(6)
            hopcroft_karp(graph)
            estimate_protocol_information(
                TrivialPartitionCompProtocol(4), 4, 8, random.Random(3)
            )
        names = [r.name for r in rec.roots]
        assert names == [
            "partitions.rank_exact",
            "indist.build_graph",
            "indist.hopcroft_karp",
            "sampling.estimate",
        ]
        rank = rec.roots[0]
        assert [c.name for c in rank.children] == ["partitions.rank_mod_p"]
        assert rank.children[0].attrs["engine"] in (
            "numpy-batched",
            "gf2-packed",
            "python",
        )
        matching = rec.roots[2]
        assert matching.attrs["left"] == len(graph.left)
        sampling = rec.roots[3]
        assert [c.name for c in sampling.children] == [
            "sampling.draw",
            "sampling.reduce",
        ]

    def test_same_seed_same_shape(self):
        """Determinism: tree shape is a function of the computation only."""
        from repro.information.sampling import estimate_protocol_information
        from repro.lowerbounds.exhaustive import (
            covers_and_pairs_for,
            universal_bound_id_oblivious,
        )
        from repro.twoparty import TrivialPartitionCompProtocol

        covers_and_pairs_for(5)  # warm the pair cache: identical shape per run

        def profile():
            rec = SpanRecorder()
            with use_recorder(rec):
                universal_bound_id_oblivious(5, alphabet=("0", "1"))
                estimate_protocol_information(
                    TrivialPartitionCompProtocol(4), 4, 16, random.Random(11)
                )
            return [r.shape() for r in rec.roots]

        assert profile() == profile()
