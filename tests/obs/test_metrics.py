"""Tests for the metrics registry: counter/gauge/histogram/timer
semantics, snapshot merge, JSON export, and the opt-in global registry."""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("bits")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("contended")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGaugeAndHistogram:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("early_stop")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("round_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_histogram_summary(self):
        reg = MetricsRegistry()
        summary = reg.histogram("never").summary()
        assert summary == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "percentile_samples": 0,
        }

    def test_timer_observes_elapsed_seconds(self):
        reg = MetricsRegistry()
        with reg.timer("block_seconds"):
            pass
        summary = reg.histogram("block_seconds").summary()
        assert summary["count"] == 1
        assert 0 <= summary["sum"] < 1.0


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(2.0)
        parsed = json.loads(reg.to_json())
        assert parsed["counters"]["a"] == 3
        assert parsed["gauges"]["b"] == 1.5
        assert parsed["histograms"]["c"]["count"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        reg.counter("a").inc()
        assert snap["counters"]["a"] == 1

    def test_merge_adds_counters_and_widens_extremes(self):
        a = MetricsRegistry()
        a.counter("bits").inc(10)
        a.histogram("t").observe(1.0)
        b = MetricsRegistry()
        b.counter("bits").inc(5)
        b.histogram("t").observe(9.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["bits"] == 15
        assert merged["histograms"]["t"]["count"] == 2
        assert merged["histograms"]["t"]["min"] == 1.0
        assert merged["histograms"]["t"]["max"] == 9.0
        assert merged["histograms"]["t"]["sum"] == pytest.approx(10.0)

    def test_merge_is_associative_on_counters(self):
        snaps = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.counter("n").inc(k + 1)
            snaps.append(reg.snapshot())
        left = merge_snapshots(merge_snapshots(snaps[0], snaps[1]), snaps[2])
        right = merge_snapshots(snaps[0], merge_snapshots(snaps[1], snaps[2]))
        assert left["counters"] == right["counters"] == {"n": 6}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert get_registry() is None

    def test_use_registry_scopes_installation(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
        assert get_registry() is None

    def test_use_registry_restores_previous(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer
        assert get_registry() is None

    def test_set_registry_returns_previous(self):
        reg = MetricsRegistry()
        assert set_registry(reg) is None
        assert set_registry(None) is reg


class TestInstrumentationIntegration:
    def test_simulator_records_rounds_bits_and_timing(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        reg = MetricsRegistry()
        with use_registry(reg):
            result = Simulator(BCC1_KT0).run(
                one_cycle_instance(8, kt=0), ConstantAlgorithm, 3
            )
        snap = reg.snapshot()
        assert snap["counters"]["simulator.rounds_executed"] == result.rounds_executed == 3
        assert snap["counters"]["simulator.bits_broadcast"] == result.total_bits_broadcast()
        assert snap["counters"]["simulator.messages_validated"] == 8 * 3
        assert snap["counters"]["simulator.runs"] == 1
        assert snap["histograms"]["simulator.round_seconds"]["count"] == 3

    def test_simulator_silent_when_disabled(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        # no registry installed: run must not create one as a side effect
        Simulator(BCC1_KT0).run(one_cycle_instance(6, kt=0), ConstantAlgorithm, 2)
        assert get_registry() is None

    def test_exhaustive_search_records_throughput(self):
        from repro.lowerbounds import universal_bound_id_oblivious

        reg = MetricsRegistry()
        report = universal_bound_id_oblivious(6, alphabet=("0", "1"), metrics=reg)
        snap = reg.snapshot()
        assert snap["counters"]["exhaustive.assignments_enumerated"] == 2**6
        assert snap["counters"]["exhaustive.searches"] == 1
        assert snap["gauges"]["exhaustive.instances_per_sec"] > 0
        assert snap["histograms"]["exhaustive.search_seconds"]["count"] == 1
        assert report.class_size == 2**6

    def test_exhaustive_result_identical_with_and_without_metrics(self):
        from repro.lowerbounds import universal_bound_id_oblivious

        plain = universal_bound_id_oblivious(6, alphabet=("0", "1"))
        with use_registry(MetricsRegistry()):
            observed = universal_bound_id_oblivious(6, alphabet=("0", "1"))
        assert plain == observed

    def test_twoparty_simulation_records_bits_per_round(self):
        import random

        from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
        from repro.partitions import random_perfect_matching
        from repro.twoparty import BCCSimulationProtocol, simulation_bits_per_round

        n = 6
        rng = random.Random(2)
        pa, pb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
        rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
        reg = MetricsRegistry()
        proto = BCCSimulationProtocol(
            "two_partition", components_factory(2), rounds, mode="components", metrics=reg
        )
        proto.run(pa, pb)
        snap = reg.snapshot()
        assert snap["counters"]["twoparty.simulated_rounds"] == rounds
        per_round = snap["histograms"]["twoparty.bits_per_simulated_round"]
        assert per_round["count"] == rounds
        assert per_round["mean"] == simulation_bits_per_round("two_partition", n)
        assert snap["counters"]["twoparty.bits_sent"] == rounds * simulation_bits_per_round(
            "two_partition", n
        )


class TestHistogramPercentiles:
    def test_nearest_rank_definition(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0  # ceil(0.50*100) = rank 50
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(1) == 1.0
        summary = h.summary()
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0
        assert summary["percentile_samples"] == 100

    def test_percentile_bounds_checked(self):
        reg = MetricsRegistry()
        h = reg.histogram("x")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_sample_cap_bounds_retention(self):
        from repro.obs.metrics import Histogram

        h = Histogram("capped", sample_cap=10)
        for v in range(100):
            h.observe(float(v))
        summary = h.summary()
        assert summary["count"] == 100  # streaming stats see everything
        assert summary["max"] == 99.0
        # past the cap the histogram hands off to a quantile sketch, so
        # percentiles describe the *whole* stream, not the retained
        # prefix (the old behavior silently reported p99 == 9.0 here)
        assert summary["percentile_samples"] == 100
        assert summary["p99"] > 90.0

    def test_percentiles_unbiased_past_default_cap(self):
        """Regression: >4096 observations must not pin percentiles to
        the first 4096 samples.

        Before sketch routing, a monotone stream of 10000 values
        reported p50 == 2048 and p99 == 4055 -- the retained-prefix
        truncation bias. The sketch estimates carry a <4% relative
        error bound instead.
        """
        from repro.obs.metrics import Histogram

        h = Histogram("latency")
        for v in range(1, 10001):
            h.observe(float(v))
        summary = h.summary()
        assert summary["count"] == 10000
        assert summary["percentile_samples"] == 10000
        assert summary["p50"] == pytest.approx(5000, rel=0.04)
        assert summary["p99"] == pytest.approx(9900, rel=0.04)
        # the old truncated answers are far outside the error bound
        assert summary["p50"] > 4096
        assert summary["p99"] > 4096

    def test_negative_cap_rejected(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram("bad", sample_cap=-1)

    def test_merged_histogram_falls_back_to_mean(self):
        a = MetricsRegistry()
        a.histogram("t").observe(1.0)
        b = MetricsRegistry()
        b.histogram("t").observe(3.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        t = merged["histograms"]["t"]
        assert t["percentile_samples"] == 0
        assert t["p50"] == t["p99"] == pytest.approx(2.0)  # the merged mean


class TestTimerExceptionPath:
    def test_timer_records_when_body_raises(self):
        """Regression test: failed runs must still land in the histogram."""
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("crashy_seconds"):
                raise RuntimeError("boom")
        summary = reg.histogram("crashy_seconds").summary()
        assert summary["count"] == 1
        assert summary["sum"] >= 0.0

    def test_timer_never_swallows_the_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            with reg.timer("x_seconds"):
                raise KeyError("original")

    def test_exit_without_enter_raises(self):
        from repro.obs.metrics import Histogram, Timer

        timer = Timer(Histogram("h"))
        with pytest.raises(RuntimeError):
            timer.__exit__(None, None, None)
        assert Timer(Histogram("h2"))._start is None


class TestMergeEdgeCases:
    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_with_empty_snapshot_is_identity(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        merged = merge_snapshots(snap, {"counters": {}, "gauges": {}, "histograms": {}})
        assert merged["counters"] == snap["counters"]
        assert merged["histograms"]["h"]["count"] == 1
        assert merged["histograms"]["h"]["sum"] == pytest.approx(1.5)

    def test_merge_preserves_count_and_sum(self):
        snaps = []
        total = 0.0
        count = 0
        for k in range(4):
            reg = MetricsRegistry()
            for i in range(k + 1):
                reg.histogram("h").observe(float(i))
                total += float(i)
                count += 1
            snaps.append(reg.snapshot())
        merged = merge_snapshots(*snaps)
        assert merged["histograms"]["h"]["count"] == count
        assert merged["histograms"]["h"]["sum"] == pytest.approx(total)

    def test_mismatched_kinds_raise(self):
        target = MetricsRegistry()
        target.counter("name").inc()
        clash = MetricsRegistry()
        clash.histogram("name").observe(1.0)
        with pytest.raises(ValueError, match="kind mismatch"):
            target.merge_snapshot(clash.snapshot())
        other = MetricsRegistry()
        other.gauge("name").set(2.0)
        with pytest.raises(ValueError, match="kind mismatch"):
            target.merge_snapshot(other.snapshot())

    def test_wrong_value_shapes_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.merge_snapshot({"counters": {"c": "three"}})
        with pytest.raises(ValueError):
            reg.merge_snapshot({"gauges": {"g": "high"}})
        with pytest.raises(ValueError):
            reg.merge_snapshot({"histograms": {"h": 4.0}})
