"""Tests for the live event bus (repro.obs.stream)."""

import io
import threading

import pytest

from repro.core import BCC1_KT0, BCCInstance, SilentAlgorithm, Simulator
from repro.graphs import one_cycle
from repro.obs.stream import (
    DEFAULT_BUS_CAPACITY,
    Event,
    EventBus,
    get_bus,
    line_printer,
    set_bus,
    use_bus,
)


class TestEventBus:
    def test_publish_assigns_monotone_seq(self):
        bus = EventBus()
        first = bus.publish("a", {})
        second = bus.publish("b", {})
        assert (first.seq, second.seq) == (1, 2)
        assert bus.published_count == 2

    def test_subscribers_receive_in_publish_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("x", {"i": 1})
        bus.publish("y", {"i": 2})
        assert [e.kind for e in seen] == ["x", "y"]
        assert [e.payload["i"] for e in seen] == [1, 2]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=["keep"])
        bus.publish("drop", {})
        bus.publish("keep", {})
        assert [e.kind for e in seen] == ["keep"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        token = bus.subscribe(seen.append)
        bus.publish("a", {})
        bus.unsubscribe(token)
        bus.publish("b", {})
        assert [e.kind for e in seen] == ["a"]
        assert bus.subscriber_count == 0

    def test_subscription_context_manager_detaches(self):
        bus = EventBus()
        seen = []
        with bus.subscription(seen.append):
            bus.publish("in", {})
        bus.publish("out", {})
        assert [e.kind for e in seen] == ["in"]

    def test_raising_subscriber_is_contained_and_counted(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.publish("a", {})
        assert [e.kind for e in seen] == ["a"]
        assert bus.error_count == 1

    def test_ring_buffer_bounded(self):
        bus = EventBus(capacity=3)
        for i in range(5):
            bus.publish("e", {"i": i})
        retained = bus.events()
        assert [e.payload["i"] for e in retained] == [2, 3, 4]
        assert bus.published_count == 5

    def test_events_snapshot_filters_by_kind(self):
        bus = EventBus()
        bus.publish("a", {})
        bus.publish("b", {})
        bus.publish("a", {})
        assert [e.kind for e in bus.events(["a"])] == ["a", "a"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)
        assert DEFAULT_BUS_CAPACITY == 1024

    def test_publish_is_thread_safe(self):
        bus = EventBus(capacity=4096)

        def spam():
            for _ in range(200):
                bus.publish("t", {})

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bus.published_count == 800
        seqs = [e.seq for e in bus.events()]
        assert seqs == sorted(seqs)


class TestLinePrinter:
    def test_prints_sorted_fields(self):
        out = io.StringIO()
        emit = line_printer(out)
        emit(Event(7, "sweep.cell", {"rate": 0.1, "kind": "crash"}))
        assert out.getvalue() == "[7] sweep.cell kind=crash rate=0.1\n"

    def test_empty_payload(self):
        out = io.StringIO()
        line_printer(out)(Event(1, "bench.start", {}))
        assert out.getvalue() == "[1] bench.start\n"


class TestProcessWideBus:
    def test_off_by_default(self):
        assert get_bus() is None

    def test_use_bus_installs_and_restores(self):
        bus = EventBus()
        with use_bus(bus) as installed:
            assert installed is bus
            assert get_bus() is bus
        assert get_bus() is None

    def test_set_bus_returns_previous(self):
        first, second = EventBus(), EventBus()
        assert set_bus(first) is None
        try:
            assert set_bus(second) is first
        finally:
            set_bus(None)


class TestInstrumentedSites:
    def test_simulator_publishes_run_lifecycle(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        bus = EventBus()
        with use_bus(bus):
            Simulator(BCC1_KT0).run(inst, SilentAlgorithm, 2)
        kinds = [e.kind for e in bus.events()]
        assert kinds[0] == "simulator.run_start"
        assert kinds[-1] == "simulator.run_end"
        assert kinds.count("simulator.round") == 2
        start = bus.events(["simulator.run_start"])[0].payload
        assert start["n"] == 4 and start["rounds_budget"] == 2
        end = bus.events(["simulator.run_end"])[0].payload
        assert end["rounds_executed"] == 2

    def test_simulator_silent_without_bus(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        outer = EventBus()
        Simulator(BCC1_KT0).run(inst, SilentAlgorithm, 2)
        assert outer.published_count == 0

    def test_fault_sweep_publishes_cells(self):
        from repro.resilience import fault_sweep

        bus = EventBus()
        with use_bus(bus):
            fault_sweep(
                algorithms=("neighbor_exchange",),
                kinds=("erasure",),
                rates=(0.0, 0.2),
                n=6,
                trials=2,
                seed=1,
            )
        cells = bus.events(["sweep.cell"])
        assert len(cells) == 2  # one per (algorithm, kind, rate)
        assert {e.payload["rate"] for e in cells} == {0.0, 0.2}
        assert [e.kind for e in bus.events()][-1] == "sweep.end"

    def test_parallel_map_publishes_shards(self):
        from repro.parallel import ParallelExecutor

        bus = EventBus()
        with use_bus(bus):
            ParallelExecutor(workers=1).map(_double, [1, 2, 3])
        shards = bus.events(["parallel.shard"])
        assert [e.payload["shard"] for e in shards] == [0, 1, 2]
        done = bus.events(["parallel.map"])
        assert len(done) == 1
        assert done[0].payload["shards"] == 3

    def test_bench_publishes_lifecycle(self):
        from repro.obs.bench import BenchmarkHarness, bench_names

        name = "kt1_simulation"
        assert name in bench_names()
        bus = EventBus()
        with use_bus(bus):
            BenchmarkHarness(out_dir=None, quick=True).run_one(name)
        kinds = [e.kind for e in bus.events(["bench.start", "bench.end"])]
        assert kinds[0] == "bench.start"
        assert kinds[-1] == "bench.end"
        end = bus.events(["bench.end"])[0].payload
        assert end["name"] == name and end["ok"] is True


def _double(x):
    return 2 * x
