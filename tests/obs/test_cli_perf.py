"""Exit-code and payload contracts for the perf-oriented CLI surface:
``repro spans``, ``repro compare`` (the CI perf gate), ``repro
trace-validate``, and ``repro bench --history``."""

import json

from repro.cli import main
from repro.obs import (
    RunTrace,
    append_history,
    history_record,
    read_history,
    validate_span_tree_payload,
)


class _Result:
    def __init__(self, name, seconds, ok=True):
        self.name = name
        self.wall_time_seconds = seconds
        self.ok = ok


def _write_history(path, series):
    """series: list of {kernel: seconds} dicts, appended in order."""
    for i, entries in enumerate(series):
        record = history_record(
            [_Result(name, seconds) for name, seconds in entries.items()],
            quick=True,
            git_sha="deadbeef",
            ts=float(i),
        )
        append_history(record, path)


class TestSpansCommand:
    def test_quick_json_payload(self, capsys):
        assert main(["spans", "--bench", "exhaustive", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["bench"] == "exhaustive"
        assert payload["quick"] is True
        assert payload["ok"] is True
        assert payload["span_count"] >= 3
        assert validate_span_tree_payload(payload["tree"]) == []
        names = [root["name"] for root in payload["tree"]["roots"]]
        assert "exhaustive.search" in names

    def test_text_output_and_out_file(self, tmp_path, capsys):
        out = str(tmp_path / "spans.json")
        code = main(["spans", "--bench", "exhaustive", "--quick", "--out", out])
        assert code == 0
        text = capsys.readouterr().out
        assert "exhaustive.search" in text
        assert "exhaustive.enumerate" in text  # tree and hotspots both render
        with open(out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_span_tree_payload(payload) == []

    def test_max_depth_truncates_tree(self, capsys):
        assert main(["spans", "--bench", "exhaustive", "--quick",
                     "--max-depth", "0", "--top", "1"]) == 0
        text = capsys.readouterr().out
        # depth-0 tree shows only the root span; children are hidden
        tree_section = text.split("hotspot")[0]
        assert "exhaustive.search" in tree_section
        assert "precompute_pairs" not in tree_section

    def test_unknown_bench_exits_two(self, capsys):
        assert main(["spans", "--bench", "nope", "--quick"]) == 2
        assert "nope" in capsys.readouterr().err


class TestCompareGate:
    def test_identical_history_exits_zero_even_with_gate(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 6)
        assert main(["compare", "--history", path, "--fail-on-regress"]) == 0
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "REGRESSED" not in captured.err

    def test_synthetic_2x_slowdown_fails_gate(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 5 + [{"kernel": 0.02}])
        assert main(["compare", "--history", path, "--fail-on-regress"]) == 1
        assert "REGRESSED: kernel" in capsys.readouterr().err

    def test_slowdown_without_gate_warns_but_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 5 + [{"kernel": 0.02}])
        assert main(["compare", "--history", path]) == 0
        assert "REGRESSED: kernel" in capsys.readouterr().err

    def test_missing_history_file_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "absent.jsonl")
        assert main(["compare", "--history", path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_history_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["compare", "--history", str(path)]) == 2
        assert "no records" in capsys.readouterr().err

    def test_dashboard_written(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        dash = str(tmp_path / "PERF.md")
        _write_history(path, [{"kernel": 0.01}] * 5)
        assert main(["compare", "--history", path, "--dashboard", dash]) == 0
        with open(dash, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert "| kernel |" in text
        assert "deadbeef"[:12] in text
        assert "dashboard: wrote" in capsys.readouterr().out

    def test_baseline_file_comparison(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.02}])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"kernel": 0.01}))
        code = main(["compare", "--history", path,
                     "--baseline", str(baseline), "--fail-on-regress"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_json_mode_emits_rows(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 4)
        assert main(["compare", "--history", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["headers"][0] == "kernel"
        assert payload["rows"][0][0] == "kernel"
        assert payload["rows"][0][-1] == "ok"


class TestTraceValidateCommand:
    def test_valid_trace_with_stats(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path, run_id="r1") as trace:
            trace.emit("round", t=1)
            trace.emit("round", t=2)
        assert main(["trace-validate", path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "r1" in out
        assert "round=2" in out

    def test_invalid_trace_exits_one(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"run_id": "old", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 1}\n'
            '{"run_id": "old", "seq": 1, "ts": 1.1, "event": "span_start",'
            ' "span_id": 0, "parent_id": null, "name": "x"}\n'
        )
        assert main(["trace-validate", str(path)]) == 1
        captured = capsys.readouterr()
        assert "problem(s)" in captured.out
        assert "INVALID" in captured.err

    def test_schema_version_filter_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"run_id": "old", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 1}\n'
            '{"run_id": "old", "seq": 1, "ts": 1.1, "event": "round", "t": 1}\n'
        )
        assert main(["trace-validate", str(path), "--schema-version", "1"]) == 0
        assert "2 events, 1 run(s), valid" in capsys.readouterr().out
        assert main(["trace-validate", str(path), "--schema-version", "3",
                     "--json"]) == 1  # no v3 runs -> empty trace is a problem
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["events"] == 0

    def test_json_shape(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        assert main(["trace-validate", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["problems"] == []
        assert payload["runs"] == 1
        assert payload["events"] == 2


class TestBenchHistoryFlag:
    def test_bench_appends_history_record(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        hist = str(tmp_path / "hist.jsonl")
        code = main(["bench", "--quick", "--only", "simulator", "crossing",
                     "--out-dir", out, "--history", hist])
        assert code == 0
        assert "history: appended 2 entries" in capsys.readouterr().out
        records = read_history(hist)
        assert len(records) == 1
        assert set(records[0]["entries"]) == {"simulator", "crossing"}
        assert records[0]["quick"] is True

    def test_bench_without_flag_writes_no_history(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "crossing",
                     "--out-dir", out]) == 0
        assert "history:" not in capsys.readouterr().out
        assert not (tmp_path / "BENCH_HISTORY.jsonl").exists()

    def test_bench_table_has_percentile_columns(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "simulator", "--json",
                     "--out-dir", out]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert "round p50 ms" in payload["headers"]
        assert "round p99 ms" in payload["headers"]
        row = payload["rows"][0]
        p50 = row[payload["headers"].index("round p50 ms")]
        p99 = row[payload["headers"].index("round p99 ms")]
        assert isinstance(p50, float) and isinstance(p99, float)
        assert p99 >= p50 >= 0.0
