"""Exit-code and payload contracts for the perf-oriented CLI surface:
``repro spans``, ``repro compare`` (the CI perf gate), ``repro
trace-validate``, and ``repro bench --history``."""

import json

from repro.cli import main
from repro.obs import (
    RunTrace,
    append_history,
    history_record,
    read_history,
    validate_span_tree_payload,
)


class _Result:
    def __init__(self, name, seconds, ok=True):
        self.name = name
        self.wall_time_seconds = seconds
        self.ok = ok


def _write_history(path, series):
    """series: list of {kernel: seconds} dicts, appended in order."""
    for i, entries in enumerate(series):
        record = history_record(
            [_Result(name, seconds) for name, seconds in entries.items()],
            quick=True,
            git_sha="deadbeef",
            ts=float(i),
        )
        append_history(record, path)


class TestSpansCommand:
    def test_quick_json_payload(self, capsys):
        assert main(["spans", "--bench", "exhaustive", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["bench"] == "exhaustive"
        assert payload["quick"] is True
        assert payload["ok"] is True
        assert payload["span_count"] >= 3
        assert validate_span_tree_payload(payload["tree"]) == []
        names = [root["name"] for root in payload["tree"]["roots"]]
        assert "exhaustive.search" in names

    def test_text_output_and_out_file(self, tmp_path, capsys):
        out = str(tmp_path / "spans.json")
        code = main(["spans", "--bench", "exhaustive", "--quick", "--out", out])
        assert code == 0
        text = capsys.readouterr().out
        assert "exhaustive.search" in text
        assert "exhaustive.enumerate" in text  # tree and hotspots both render
        with open(out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_span_tree_payload(payload) == []

    def test_max_depth_truncates_tree(self, capsys):
        assert main(["spans", "--bench", "exhaustive", "--quick",
                     "--max-depth", "0", "--top", "1"]) == 0
        text = capsys.readouterr().out
        # depth-0 tree shows only the root span; children are hidden
        tree_section = text.split("hotspot")[0]
        assert "exhaustive.search" in tree_section
        assert "precompute_pairs" not in tree_section

    def test_unknown_bench_exits_two(self, capsys):
        assert main(["spans", "--bench", "nope", "--quick"]) == 2
        assert "nope" in capsys.readouterr().err


class TestCompareGate:
    def test_identical_history_exits_zero_even_with_gate(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 6)
        assert main(["compare", "--history", path, "--fail-on-regress"]) == 0
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "REGRESSED" not in captured.err

    def test_synthetic_2x_slowdown_fails_gate(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 5 + [{"kernel": 0.02}])
        assert main(["compare", "--history", path, "--fail-on-regress"]) == 1
        assert "REGRESSED: kernel" in capsys.readouterr().err

    def test_slowdown_without_gate_warns_but_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 5 + [{"kernel": 0.02}])
        assert main(["compare", "--history", path]) == 0
        assert "REGRESSED: kernel" in capsys.readouterr().err

    def test_missing_history_file_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "absent.jsonl")
        assert main(["compare", "--history", path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_history_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["compare", "--history", str(path)]) == 2
        assert "no records" in capsys.readouterr().err

    def test_dashboard_written(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        dash = str(tmp_path / "PERF.md")
        _write_history(path, [{"kernel": 0.01}] * 5)
        assert main(["compare", "--history", path, "--dashboard", dash]) == 0
        with open(dash, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert "| kernel |" in text
        assert "deadbeef"[:12] in text
        assert "dashboard: wrote" in capsys.readouterr().out

    def test_baseline_file_comparison(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.02}])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"kernel": 0.01}))
        code = main(["compare", "--history", path,
                     "--baseline", str(baseline), "--fail-on-regress"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_json_mode_emits_rows(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        _write_history(path, [{"kernel": 0.01}] * 4)
        assert main(["compare", "--history", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["headers"][0] == "kernel"
        assert payload["rows"][0][0] == "kernel"
        assert payload["rows"][0][-1] == "ok"


class TestTraceValidateCommand:
    def test_valid_trace_with_stats(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path, run_id="r1") as trace:
            trace.emit("round", t=1)
            trace.emit("round", t=2)
        assert main(["trace-validate", path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "r1" in out
        assert "round=2" in out

    def test_invalid_trace_exits_one(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"run_id": "old", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 1}\n'
            '{"run_id": "old", "seq": 1, "ts": 1.1, "event": "span_start",'
            ' "span_id": 0, "parent_id": null, "name": "x"}\n'
        )
        assert main(["trace-validate", str(path)]) == 1
        captured = capsys.readouterr()
        assert "problem(s)" in captured.out
        assert "INVALID" in captured.err

    def test_schema_version_filter_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"run_id": "old", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 1}\n'
            '{"run_id": "old", "seq": 1, "ts": 1.1, "event": "round", "t": 1}\n'
        )
        assert main(["trace-validate", str(path), "--schema-version", "1"]) == 0
        assert "2 events, 1 run(s), valid" in capsys.readouterr().out
        assert main(["trace-validate", str(path), "--schema-version", "3",
                     "--json"]) == 1  # no v3 runs -> empty trace is a problem
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["events"] == 0

    def test_json_shape(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        assert main(["trace-validate", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["problems"] == []
        assert payload["runs"] == 1
        assert payload["events"] == 2


class TestBenchHistoryFlag:
    def test_bench_appends_history_record(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        hist = str(tmp_path / "hist.jsonl")
        code = main(["bench", "--quick", "--only", "simulator", "crossing",
                     "--out-dir", out, "--history", hist])
        assert code == 0
        assert "history: appended 2 entries" in capsys.readouterr().out
        records = read_history(hist)
        assert len(records) == 1
        assert set(records[0]["entries"]) == {"simulator", "crossing"}
        assert records[0]["quick"] is True

    def test_bench_without_flag_writes_no_history(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "crossing",
                     "--out-dir", out]) == 0
        assert "history:" not in capsys.readouterr().out
        assert not (tmp_path / "BENCH_HISTORY.jsonl").exists()

    def test_bench_table_has_percentile_columns(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "simulator", "--json",
                     "--out-dir", out]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert "round p50 ms" in payload["headers"]
        assert "round p99 ms" in payload["headers"]
        row = payload["rows"][0]
        p50 = row[payload["headers"].index("round p50 ms")]
        p99 = row[payload["headers"].index("round p99 ms")]
        assert isinstance(p50, float) and isinstance(p99, float)
        assert p99 >= p50 >= 0.0


class TestReportPerPhase:
    def test_two_party_simulate_decision_breakdown(self, tmp_path, capsys):
        out = str(tmp_path)
        assert main(
            ["bench", "--quick", "--out-dir", out, "--only", "kt1_simulation"]
        ) == 0
        capsys.readouterr()
        assert main(["report", "--dir", out, "--per-phase"]) == 0
        stdout = capsys.readouterr().out
        assert "per-phase communication cost" in stdout
        assert "simulate" in stdout
        assert "decision" in stdout

    def test_fallback_note_without_ledgers(self, tmp_path, capsys):
        payload = {
            "schema_version": 1,
            "name": "synthetic",
            "description": "d",
            "quick": True,
            "created_unix": 0,
            "params": {},
            "wall_time_seconds": 0.1,
            "measured": {},
            "predicted": {},
            "ok": True,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        (tmp_path / "BENCH_synthetic.json").write_text(json.dumps(payload))
        assert main(["report", "--dir", str(tmp_path), "--per-phase"]) == 0
        assert "per-phase: no payload carries" in capsys.readouterr().out


class TestFaultSweepLive:
    def test_live_streams_one_line_per_cell(self, tmp_path, capsys):
        assert main(
            [
                "fault-sweep",
                "--n", "6",
                "--trials", "2",
                "--rates", "0.0", "0.1",
                "--kinds", "erasure",
                "--algorithms", "neighbor_exchange",
                "--live",
            ]
        ) == 0
        err = capsys.readouterr().err
        cells = [line for line in err.splitlines() if "sweep.cell" in line]
        assert len(cells) == 2  # one per (algorithm, kind, rate)
        assert any("rate=0.1" in line for line in cells)
        assert any("sweep.end" in line for line in err.splitlines())

    def test_without_live_no_stream_lines(self, capsys):
        assert main(
            [
                "fault-sweep",
                "--n", "6",
                "--trials", "2",
                "--rates", "0.0",
                "--kinds", "erasure",
                "--algorithms", "neighbor_exchange",
            ]
        ) == 0
        assert "sweep.cell" not in capsys.readouterr().err


class TestDashCommand:
    def _build_inputs(self, tmp_path, capsys):
        out = str(tmp_path)
        history = str(tmp_path / "BENCH_HISTORY.jsonl")
        sweep = str(tmp_path / "sweep.json")
        session = str(tmp_path / "session.json")
        assert main(
            ["bench", "--quick", "--out-dir", out, "--only", "kt1_simulation",
             "--history", history]
        ) == 0
        assert main(
            ["fault-sweep", "--n", "6", "--trials", "2", "--rates", "0.0",
             "--kinds", "erasure", "--algorithms", "neighbor_exchange",
             "--out", sweep]
        ) == 0
        assert main(
            ["record", "run", "--session", session, "--n", "6",
             "--max-delay", "2", "--duplicate-rate", "0.2", "--net-seed", "7"]
        ) == 0
        capsys.readouterr()
        return out, history, sweep, session

    def test_builds_byte_identical_self_contained_html(self, tmp_path, capsys):
        from repro.obs.dash import validate_dashboard_html

        out, history, sweep, session = self._build_inputs(tmp_path, capsys)
        args = [
            "dash",
            "--dir", out,
            "--history", history,
            "--sweep", sweep,
            "--session", session,
            "--timestamp", "2026-01-01T00:00:00Z",
        ]
        first = str(tmp_path / "dash1.html")
        second = str(tmp_path / "dash2.html")
        assert main(args + ["--out", first]) == 0
        stdout = capsys.readouterr().out
        assert "self-contained" in stdout
        assert main(args + ["--out", second]) == 0
        html = (tmp_path / "dash1.html").read_bytes()
        assert html == (tmp_path / "dash2.html").read_bytes()
        problems = validate_dashboard_html(html.decode("utf-8"))
        assert problems == []
        text = html.decode("utf-8")
        # every surface made it into the one file
        assert "kt1_simulation" in text
        assert "neighbor_exchange" in text
        assert "simulate" in text and "decision" in text
        assert "Delivery population" in text

    def test_missing_input_file_exits_two(self, tmp_path, capsys):
        assert main(
            ["dash", "--dir", str(tmp_path), "--sweep",
             str(tmp_path / "missing.json"), "--out", str(tmp_path / "d.html")]
        ) == 2

    def test_empty_dir_still_builds(self, tmp_path, capsys):
        out_file = str(tmp_path / "d.html")
        assert main(["dash", "--dir", str(tmp_path), "--out", out_file]) == 0
        text = (tmp_path / "d.html").read_text()
        assert "no BENCH_" in text


class TestTraceValidateStatsColumns:
    def test_cost_bits_column_from_v4_trace(self, tmp_path, capsys):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.costs import CostLedger, use_ledger
        from repro.instances import one_cycle_instance

        path = str(tmp_path / "trace.jsonl")
        trace = RunTrace(path, run_id="costed")
        with use_ledger(CostLedger()):
            Simulator(BCC1_KT0, trace=trace).run(
                one_cycle_instance(4, kt=0), ConstantAlgorithm, 2
            )
        trace.close()
        assert main(["trace-validate", path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "cost bits" in out
        assert "cost_summary=1" in out
        # 4 vertices x 1 bit x 2 rounds
        assert any("8" in line for line in out.splitlines() if "costed" in line)

    def test_session_envelope_column(self, tmp_path, capsys):
        session = str(tmp_path / "session.json")
        assert main(
            ["record", "run", "--session", session, "--n", "6"]
        ) == 0
        capsys.readouterr()
        assert main(["trace-validate", session, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "sessions" in out
        assert "runx1" in out
        assert "complete=True" in out

    def test_plain_trace_renders_dashes(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path, run_id="r1") as trace:
            trace.emit("round", t=1)
        assert main(["trace-validate", path, "--stats"]) == 0
        rows = [
            line for line in capsys.readouterr().out.splitlines() if "r1" in line
        ]
        assert rows and rows[0].count("-") >= 2  # no cost bits, no sessions
