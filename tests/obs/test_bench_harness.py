"""Golden-schema tests for the benchmark harness and BENCH_*.json files."""

import json
import os

import pytest

from repro.obs import (
    BENCH_SCHEMA_VERSION,
    BenchmarkHarness,
    bench_names,
    load_bench_payloads,
    validate_bench_payload,
)

#: Benches whose kernels run the instrumented round engine.
SIMULATOR_BACKED = "simulator"

#: The exact key set of a schema-version-1 payload (the golden schema).
GOLDEN_KEYS = {
    "schema_version",
    "name",
    "description",
    "created_unix",
    "quick",
    "params",
    "wall_time_seconds",
    "measured",
    "predicted",
    "ok",
    "metrics",
    "costs",  # the run's CostLedger summary (PR 6); optional in the schema
}


class TestHarness:
    def test_registry_names_cover_every_bench_script(self):
        import glob

        here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        scripts = sorted(
            os.path.basename(p)[len("bench_") : -len(".py")]
            for p in glob.glob(os.path.join(here, "benchmarks", "bench_*.py"))
        )
        assert sorted(bench_names()) == scripts

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            BenchmarkHarness(out_dir=None).run_one("nope")

    def test_run_without_out_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = BenchmarkHarness(out_dir=None, quick=True).run_one("reduction")
        assert result.path is None
        assert list(tmp_path.iterdir()) == []

    def test_quick_and_full_params_differ_where_declared(self):
        harness_quick = BenchmarkHarness(out_dir=None, quick=True)
        result = harness_quick.run_one("crossing")
        assert result.quick is True
        assert result.params == {"n": 12, "rounds": 2}


class TestGoldenSchema:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("bench"))
        harness = BenchmarkHarness(out_dir=out, quick=True)
        results = harness.run([SIMULATOR_BACKED, "exhaustive", "kt1_simulation"])
        return out, results

    def test_payload_has_exactly_the_golden_keys(self, written):
        out, _results = written
        for _path, payload in load_bench_payloads(out):
            assert set(payload.keys()) == GOLDEN_KEYS
            assert payload["schema_version"] == BENCH_SCHEMA_VERSION

    def test_files_round_trip_and_validate(self, written):
        out, results = written
        payloads = load_bench_payloads(out)
        assert len(payloads) == len(results)
        for path, payload in payloads:
            assert os.path.basename(path) == f"BENCH_{payload['name']}.json"
            assert validate_bench_payload(payload) == []

    def test_simulator_bench_carries_the_three_core_metrics(self, written):
        out, _results = written
        payload = dict(load_bench_payloads(out))[os.path.join(out, "BENCH_simulator.json")]
        counters = payload["metrics"]["counters"]
        assert counters["simulator.rounds_executed"] > 0
        assert counters["simulator.bits_broadcast"] > 0
        assert payload["metrics"]["histograms"]["simulator.round_seconds"]["count"] > 0

    def test_exhaustive_bench_carries_throughput_metrics(self, written):
        out, _results = written
        payload = dict(load_bench_payloads(out))[os.path.join(out, "BENCH_exhaustive.json")]
        counters = payload["metrics"]["counters"]
        assert counters["exhaustive.assignments_enumerated"] == 2**6
        assert payload["metrics"]["gauges"]["exhaustive.instances_per_sec"] > 0

    def test_twoparty_bench_carries_bit_accounting(self, written):
        out, _results = written
        payload = dict(load_bench_payloads(out))[
            os.path.join(out, "BENCH_kt1_simulation.json")
        ]
        counters = payload["metrics"]["counters"]
        assert counters["twoparty.bits_sent"] > 0
        assert counters["twoparty.simulated_rounds"] > 0


class TestValidator:
    def _valid_payload(self):
        return {
            "schema_version": 1,
            "name": "x",
            "description": "d",
            "created_unix": 1.0,
            "quick": True,
            "params": {},
            "wall_time_seconds": 0.1,
            "measured": {},
            "predicted": {},
            "ok": True,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_valid_payload_passes(self):
        assert validate_bench_payload(self._valid_payload()) == []

    def test_missing_field_reported(self):
        payload = self._valid_payload()
        del payload["wall_time_seconds"]
        problems = validate_bench_payload(payload)
        assert any("wall_time_seconds" in p for p in problems)

    def test_future_schema_version_reported(self):
        payload = self._valid_payload()
        payload["schema_version"] = BENCH_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_bench_payload(payload))

    def test_bool_counter_rejected(self):
        payload = self._valid_payload()
        payload["metrics"]["counters"]["bad"] = True
        assert any("bad" in p for p in validate_bench_payload(payload))

    def test_malformed_histogram_rejected(self):
        payload = self._valid_payload()
        payload["metrics"]["histograms"]["h"] = {"count": 1}
        problems = validate_bench_payload(payload)
        assert any("'h'" in p for p in problems)


class TestCliIntegration:
    def test_bench_quick_writes_at_least_five_files(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path)
        code = main(["bench", "--quick", "--out-dir", out])
        assert code == 0
        files = [f for f in os.listdir(out) if f.startswith("BENCH_") and f.endswith(".json")]
        assert len(files) >= 5
        simulator_backed = 0
        for name in files:
            with open(os.path.join(out, name), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert validate_bench_payload(payload) == []
            counters = payload["metrics"]["counters"]
            if (
                counters.get("simulator.rounds_executed", 0) > 0
                and counters.get("simulator.bits_broadcast", 0) > 0
                and payload["metrics"]["histograms"]
                .get("simulator.round_seconds", {})
                .get("count", 0)
                > 0
            ):
                simulator_backed += 1
        # the acceptance bar: >= 5 records carry the three simulator metrics
        assert simulator_backed >= 5

    def test_bench_only_subset(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path)
        assert main(["bench", "--quick", "--out-dir", out, "--only", "reduction"]) == 0
        assert os.listdir(out) == ["BENCH_reduction.json"]

    def test_report_validates_written_files(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path)
        assert main(["bench", "--quick", "--out-dir", out, "--only", "simulator"]) == 0
        capsys.readouterr()
        assert main(["report", "--dir", out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["headers"][0] == "benchmark"
        assert payload["rows"][0][0] == "simulator"

    def test_report_flags_invalid_files(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "BENCH_corrupt.json"
        bad.write_text(json.dumps({"schema_version": 1, "name": "corrupt"}))
        assert main(["report", "--dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err

    def test_report_empty_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--dir", str(tmp_path)]) == 1


class TestWorkersInjection:
    """The harness injects its ``workers`` into supporting specs only."""

    def test_supporting_spec_gets_the_workers_param(self):
        harness = BenchmarkHarness(out_dir=None, quick=True, workers=2)
        result = harness.run_one("exhaustive")
        assert result.params["workers"] == 2
        assert result.ok

    def test_non_supporting_spec_untouched(self):
        harness = BenchmarkHarness(out_dir=None, quick=True, workers=2)
        result = harness.run_one("crossing")
        assert "workers" not in result.params

    def test_default_is_serial(self):
        result = BenchmarkHarness(out_dir=None, quick=True).run_one("exhaustive")
        assert result.params["workers"] == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ValueError):
            BenchmarkHarness(out_dir=None, workers=bad)

    def test_parallel_spec_reports_speedups_and_identity(self):
        result = BenchmarkHarness(out_dir=None, quick=True).run_one("parallel")
        assert result.ok  # ok gates on report identity, never on speed
        assert result.measured["reports_identical"] is True
        assert result.measured["serial_seconds"] > 0.0
        assert result.measured["fanout_seconds"] > 0.0
        assert result.predicted["reports_identical"] is True


class TestKernelInjection:
    """The harness injects its ``kernel`` into supporting specs only."""

    def test_supporting_spec_gets_the_kernel_param(self):
        harness = BenchmarkHarness(out_dir=None, quick=True, kernel="reference")
        result = harness.run_one("partition_rank")
        assert result.params["kernel"] == "reference"
        assert result.ok

    def test_non_supporting_spec_untouched(self):
        harness = BenchmarkHarness(out_dir=None, quick=True, kernel="packed")
        result = harness.run_one("crossing")
        assert "kernel" not in result.params

    def test_default_is_auto(self):
        result = BenchmarkHarness(out_dir=None, quick=True).run_one("partition_rank")
        assert result.params["kernel"] == "auto"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkHarness(out_dir=None, kernel="fast")

    def test_kernels_spec_identity_gated(self):
        result = BenchmarkHarness(out_dir=None, quick=True).run_one("kernels")
        assert result.ok  # ok gates on identity, never on speed
        assert result.measured["results_identical"] is True
        assert result.measured["graphs_equal"] is True
        assert result.measured["gf2_reference_seconds"] > 0.0
        assert result.measured["gf2_kernel_seconds"] > 0.0
        assert result.predicted["results_identical"] is True

    def test_kernels_spec_reference_mode_still_ok(self):
        # forcing kernel=reference compares reference to itself: identical
        harness = BenchmarkHarness(out_dir=None, quick=True, kernel="reference")
        result = harness.run_one("kernels")
        assert result.ok
        assert result.params["kernel"] == "reference"
