"""Tests for the structured JSONL run-trace writer."""

import io
import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, RunTrace, read_trace


class TestRunTrace:
    def test_header_line_carries_schema_and_run_id(self):
        buf = io.StringIO()
        trace = RunTrace(buf, run_id="abc123")
        events = read_trace(io.StringIO(buf.getvalue()))
        assert events[0]["event"] == "trace_start"
        assert events[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert events[0]["run_id"] == "abc123"
        assert trace.run_id == "abc123"

    def test_every_line_is_valid_json_with_increasing_seq(self):
        buf = io.StringIO()
        trace = RunTrace(buf)
        trace.emit("round", t=1, bits=4)
        trace.emit("round", t=2, bits=4)
        trace.emit("run_end", rounds_executed=2)
        lines = [line for line in buf.getvalue().splitlines() if line]
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["run_id"] == trace.run_id for e in events)
        assert events[-1]["event"] == "run_end"

    def test_fresh_run_ids_are_unique(self):
        a = RunTrace(io.StringIO())
        b = RunTrace(io.StringIO())
        assert a.run_id != b.run_id

    def test_non_json_values_coerced(self):
        buf = io.StringIO()
        RunTrace(buf).emit("weird", payload={1: {2, 3}})
        record = read_trace(io.StringIO(buf.getvalue()))[-1]
        assert isinstance(record["payload"]["1"], str)

    def test_emit_after_close_rejected(self):
        trace = RunTrace(io.StringIO())
        trace.close()
        with pytest.raises(ValueError):
            trace.emit("late")

    def test_file_sink_appends_and_reads_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        events = read_trace(path)
        assert len(events) == 4  # two headers + two rounds
        assert len({e["run_id"] for e in events}) == 2


class TestSimulatorTracing:
    def test_simulator_emits_run_and_round_events(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        trace = RunTrace(buf)
        sim = Simulator(BCC1_KT0, trace=trace)
        result = sim.run(one_cycle_instance(6, kt=0), ConstantAlgorithm, 3)
        events = read_trace(io.StringIO(buf.getvalue()))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "trace_start"
        assert kinds[1] == "run_start"
        assert kinds.count("round") == result.rounds_executed == 3
        assert kinds[-1] == "run_end"
        run_start = events[1]
        assert run_start["n"] == 6 and run_start["kt"] == 0 and run_start["rounds_budget"] == 3
        rounds = [e for e in events if e["event"] == "round"]
        assert [e["t"] for e in rounds] == [1, 2, 3]
        assert all(e["bits"] == 6 for e in rounds)  # ConstantAlgorithm: 1 bit/vertex
        assert sum(e["bits"] for e in rounds) == result.total_bits_broadcast()
        run_end = events[-1]
        assert run_end["rounds_executed"] == 3
        assert run_end["total_bits"] == result.total_bits_broadcast()

    def test_trace_valid_jsonl_at_every_prefix(self):
        from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        sim = Simulator(BCC1_KT0, trace=RunTrace(buf))
        sim.run(one_cycle_instance(4, kt=0), SilentAlgorithm, 2)
        lines = buf.getvalue().splitlines()
        for k in range(1, len(lines) + 1):
            for line in lines[:k]:
                json.loads(line)  # must never raise
