"""Tests for the structured JSONL run-trace writer."""

import io
import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, RunTrace, read_trace


class TestRunTrace:
    def test_header_line_carries_schema_and_run_id(self):
        buf = io.StringIO()
        trace = RunTrace(buf, run_id="abc123")
        events = read_trace(io.StringIO(buf.getvalue()))
        assert events[0]["event"] == "trace_start"
        assert events[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert events[0]["run_id"] == "abc123"
        assert trace.run_id == "abc123"

    def test_every_line_is_valid_json_with_increasing_seq(self):
        buf = io.StringIO()
        trace = RunTrace(buf)
        trace.emit("round", t=1, bits=4)
        trace.emit("round", t=2, bits=4)
        trace.emit("run_end", rounds_executed=2)
        lines = [line for line in buf.getvalue().splitlines() if line]
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["run_id"] == trace.run_id for e in events)
        assert events[-1]["event"] == "run_end"

    def test_fresh_run_ids_are_unique(self):
        a = RunTrace(io.StringIO())
        b = RunTrace(io.StringIO())
        assert a.run_id != b.run_id

    def test_non_json_values_coerced(self):
        buf = io.StringIO()
        RunTrace(buf).emit("weird", payload={1: {2, 3}})
        record = read_trace(io.StringIO(buf.getvalue()))[-1]
        assert isinstance(record["payload"]["1"], str)

    def test_emit_after_close_rejected(self):
        trace = RunTrace(io.StringIO())
        trace.close()
        with pytest.raises(ValueError):
            trace.emit("late")

    def test_file_sink_appends_and_reads_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        events = read_trace(path)
        assert len(events) == 4  # two headers + two rounds
        assert len({e["run_id"] for e in events}) == 2


class TestSimulatorTracing:
    def test_simulator_emits_run_and_round_events(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        trace = RunTrace(buf)
        sim = Simulator(BCC1_KT0, trace=trace)
        result = sim.run(one_cycle_instance(6, kt=0), ConstantAlgorithm, 3)
        events = read_trace(io.StringIO(buf.getvalue()))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "trace_start"
        assert kinds[1] == "run_start"
        assert kinds.count("round") == result.rounds_executed == 3
        assert kinds[-1] == "run_end"
        run_start = events[1]
        assert run_start["n"] == 6 and run_start["kt"] == 0 and run_start["rounds_budget"] == 3
        rounds = [e for e in events if e["event"] == "round"]
        assert [e["t"] for e in rounds] == [1, 2, 3]
        assert all(e["bits"] == 6 for e in rounds)  # ConstantAlgorithm: 1 bit/vertex
        assert sum(e["bits"] for e in rounds) == result.total_bits_broadcast()
        run_end = events[-1]
        assert run_end["rounds_executed"] == 3
        assert run_end["total_bits"] == result.total_bits_broadcast()

    def test_trace_valid_jsonl_at_every_prefix(self):
        from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        sim = Simulator(BCC1_KT0, trace=RunTrace(buf))
        sim.run(one_cycle_instance(4, kt=0), SilentAlgorithm, 2)
        lines = buf.getvalue().splitlines()
        for k in range(1, len(lines) + 1):
            for line in lines[:k]:
                json.loads(line)  # must never raise


class TestCrashSafety:
    """A killed process can tear at most the final line; readers cope."""

    def test_torn_tail_skipped_by_default(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
            trace.emit("round", t=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "x", "seq": 99, "ts": 1.0, "ev')  # kill -9 here
        events = read_trace(path)
        assert [e.get("t") for e in events[1:]] == [1, 2]

    def test_torn_tail_rejected_when_strict(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        with pytest.raises(ValueError):
            read_trace(path, skip_torn_tail=False)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"run_id": "a", "seq": 0, "ts": 1.0, "event": "trace_start"}\n'
            "GARBAGE NOT JSON\n"
            '{"run_id": "a", "seq": 1, "ts": 2.0, "event": "round"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            read_trace(str(path))

    def test_fsync_sink_works_for_files_and_memory(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path, fsync=True) as trace:
            trace.emit("round", t=1)
        assert len(read_trace(path)) == 2
        # in-memory sinks have no fd; fsync must degrade silently
        buf = io.StringIO()
        RunTrace(buf, fsync=True).emit("round", t=1)
        assert len(read_trace(io.StringIO(buf.getvalue()))) == 2

    def test_close_is_idempotent(self):
        trace = RunTrace(io.StringIO())
        trace.close()
        trace.close()
        assert trace.closed


class TestSchemaCompatibility:
    """v1 traces predate fault injection but must keep parsing."""

    V1_TRACE = (
        '{"run_id": "old", "seq": 0, "ts": 1.0, "event": "trace_start", "schema_version": 1}\n'
        '{"run_id": "old", "seq": 1, "ts": 1.1, "event": "run_start", "n": 6, "kt": 0}\n'
        '{"run_id": "old", "seq": 2, "ts": 1.2, "event": "round", "t": 1, "bits": 6}\n'
        '{"run_id": "old", "seq": 3, "ts": 1.3, "event": "run_end", "rounds_executed": 1}\n'
    )

    def test_v1_trace_still_parses_and_validates(self):
        from repro.obs import validate_trace_events

        events = read_trace(io.StringIO(self.V1_TRACE))
        assert len(events) == 4
        assert validate_trace_events(events) == []

    def test_fault_event_in_v1_trace_flagged(self):
        from repro.obs import validate_trace_events

        text = self.V1_TRACE + (
            '{"run_id": "old", "seq": 4, "ts": 1.4, "event": "fault", "t": 1,'
            ' "kind": "bit_flip", "vertex": 0, "receiver": 2,'
            ' "original": "0", "delivered": "1"}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("schema version 1" in p for p in problems)

    def test_newer_schema_version_flagged(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "new", "seq": 0, "ts": 1.0, "event": "trace_start",'
            f' "schema_version": {TRACE_SCHEMA_VERSION + 1}}}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("newer than supported" in p for p in problems)

    def test_validator_flags_bad_fault_fields_and_seq(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "r", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 2}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.1, "event": "fault", "t": "one",'
            ' "kind": "gamma_ray", "vertex": 0, "original": "0", "delivered": "1"}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.2, "event": "round", "t": 1}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("'t' is not int" in p for p in problems)
        assert any("unknown kind" in p for p in problems)
        assert any("strictly increasing" in p for p in problems)

    def test_validator_accepts_multi_run_appended_file(self, tmp_path):
        from repro.obs import validate_trace_events

        path = str(tmp_path / "trace.jsonl")
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        with RunTrace(path) as trace:
            trace.emit("round", t=1)
        assert validate_trace_events(read_trace(path)) == []


class TestSchemaV3SpansAndStats:
    """Trace-v3: span events, the schema_version read filter, trace_stats."""

    def _v3_with_spans(self):
        buf = io.StringIO()
        from repro.obs import SpanRecorder, use_recorder
        from repro.obs.spans import span

        trace = RunTrace(buf)
        rec = SpanRecorder(trace=trace)
        with use_recorder(rec):
            with span("outer", n=2):
                with span("inner"):
                    pass
        trace.close()
        return buf.getvalue()

    def test_v3_span_trace_validates(self):
        from repro.obs import validate_trace_events

        events = read_trace(io.StringIO(self._v3_with_spans()))
        assert validate_trace_events(events) == []
        kinds = [e["event"] for e in events]
        assert kinds.count("span_start") == 2
        assert kinds.count("span_end") == 2

    def test_span_event_in_v2_trace_flagged(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "r", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 2}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.1, "event": "span_start",'
            ' "span_id": 0, "parent_id": null, "name": "outer"}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("schema version 2" in p for p in problems)

    def test_validator_flags_malformed_span_events(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "r", "seq": 0, "ts": 1.0, "event": "trace_start",'
            f' "schema_version": {TRACE_SCHEMA_VERSION}}}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.1, "event": "span_start",'
            ' "span_id": "zero", "parent_id": "none", "name": 7}\n'
            '{"run_id": "r", "seq": 2, "ts": 1.2, "event": "span_end",'
            ' "span_id": 0, "name": "outer", "duration_seconds": "fast"}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("span_id" in p for p in problems)
        assert any("parent_id" in p for p in problems)
        assert any("name" in p for p in problems)
        assert any("duration_seconds" in p for p in problems)

    def test_v1_v2_v3_all_validate_side_by_side(self):
        from repro.obs import validate_trace_events

        v1 = TestSchemaCompatibility.V1_TRACE
        v2 = (
            '{"run_id": "mid", "seq": 0, "ts": 2.0, "event": "trace_start",'
            ' "schema_version": 2}\n'
            '{"run_id": "mid", "seq": 1, "ts": 2.1, "event": "fault", "t": 1,'
            ' "kind": "bit_flip", "vertex": 0, "receiver": 2,'
            ' "original": "0", "delivered": "1"}\n'
        )
        combined = v1 + v2 + self._v3_with_spans()
        events = read_trace(io.StringIO(combined))
        assert validate_trace_events(events) == []
        versions = {
            e["run_id"]: e["schema_version"]
            for e in events
            if e["event"] == "trace_start"
        }
        assert sorted(versions.values())[:2] == [1, 2]

    def test_read_trace_schema_version_filter(self):
        v1 = TestSchemaCompatibility.V1_TRACE
        headerless = '{"run_id": "lost", "seq": 0, "ts": 3.0, "event": "round", "t": 1}\n'
        combined = v1 + headerless + self._v3_with_spans()
        latest = read_trace(
            io.StringIO(combined), schema_version=TRACE_SCHEMA_VERSION
        )
        assert latest  # the v3 run survives
        assert all(e["run_id"] != "old" for e in latest)
        assert all(e["run_id"] != "lost" for e in latest)  # headerless dropped
        old = read_trace(io.StringIO(combined), schema_version=1)
        assert {e["run_id"] for e in old} == {"old"}
        nobody = read_trace(io.StringIO(combined), schema_version=99)
        assert nobody == []

    def test_trace_stats_counts_per_run(self):
        from repro.obs import trace_stats

        v1 = TestSchemaCompatibility.V1_TRACE
        headerless = '{"seq": 0, "ts": 3.0, "event": "round", "t": 1}\n'
        events = read_trace(io.StringIO(v1 + headerless))
        stats = trace_stats(events)
        assert stats["old"]["schema_version"] == 1
        assert stats["old"]["events"] == 4
        assert stats["old"]["by_event"] == {
            "trace_start": 1,
            "run_start": 1,
            "round": 1,
            "run_end": 1,
        }
        assert stats["?"]["schema_version"] is None
        assert stats["?"]["by_event"] == {"round": 1}

    def test_trace_stats_empty(self):
        from repro.obs import trace_stats

        assert trace_stats([]) == {}


class TestSchemaV4CostSummary:
    """Trace-v4: the cost_summary event the ledger-instrumented runs emit."""

    def _v4_with_costs(self, n=4, rounds=2):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.costs import CostLedger, use_ledger
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        trace = RunTrace(buf)
        with use_ledger(CostLedger()):
            Simulator(BCC1_KT0, trace=trace).run(
                one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds
            )
        trace.close()
        return buf.getvalue()

    def test_v4_cost_summary_emitted_and_validates(self):
        from repro.obs import validate_trace_events

        events = read_trace(io.StringIO(self._v4_with_costs(n=4, rounds=2)))
        assert validate_trace_events(events) == []
        kinds = [e["event"] for e in events]
        assert kinds.count("cost_summary") == 1
        # The summary lands after the rounds, just before run_end.
        assert kinds.index("cost_summary") == kinds.index("run_end") - 1
        summary = next(e for e in events if e["event"] == "cost_summary")
        assert summary["total_bits"] == 8 and summary["rounds"] == 2
        assert len(summary["per_vertex"]) == 4
        assert all(
            isinstance(v["vertex"], str) and v["bits"] == 2
            for v in summary["per_vertex"]
        )

    def test_no_ledger_means_no_cost_summary_event(self):
        from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
        from repro.instances import one_cycle_instance

        buf = io.StringIO()
        Simulator(BCC1_KT0, trace=RunTrace(buf)).run(
            one_cycle_instance(4, kt=0), ConstantAlgorithm, 2
        )
        kinds = [e["event"] for e in read_trace(io.StringIO(buf.getvalue()))]
        assert "cost_summary" not in kinds

    def test_cost_summary_in_v3_trace_flagged(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "r", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 3}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.1, "event": "cost_summary",'
            ' "total_bits": 8, "rounds": 2, "per_vertex": []}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("schema version 3" in p for p in problems)

    def test_validator_flags_malformed_cost_summary(self):
        from repro.obs import validate_trace_events

        text = (
            '{"run_id": "r", "seq": 0, "ts": 1.0, "event": "trace_start",'
            f' "schema_version": {TRACE_SCHEMA_VERSION}}}\n'
            '{"run_id": "r", "seq": 1, "ts": 1.1, "event": "cost_summary",'
            ' "total_bits": "eight", "rounds": 2.5,'
            ' "per_vertex": [{"vertex": 0, "bits": "two", "silent_rounds": -1.5}]}\n'
        )
        problems = validate_trace_events(read_trace(io.StringIO(text)))
        assert any("total_bits" in p for p in problems)
        assert any("rounds" in p for p in problems)
        assert any("per_vertex" in p or "vertex" in p for p in problems)

    def test_torn_tail_on_v4_trace(self, tmp_path):
        path = tmp_path / "v4.jsonl"
        path.write_text(self._v4_with_costs(n=4, rounds=2), encoding="utf-8")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "r", "seq": 99, "event": "cost_summ')
        events = read_trace(str(path))  # torn tail skipped by default
        assert [e["event"] for e in events].count("cost_summary") == 1
        with pytest.raises(ValueError):
            read_trace(str(path), skip_torn_tail=False)

    def test_read_trace_filter_splits_v3_and_v4_runs(self):
        # A hand-written v3 run: the live writer now stamps v4 headers,
        # so a mixed-version file has to come from an older producer.
        v3 = (
            '{"run_id": "spanrun", "seq": 0, "ts": 1.0, "event": "trace_start",'
            ' "schema_version": 3}\n'
            '{"run_id": "spanrun", "seq": 1, "ts": 1.1, "event": "span_start",'
            ' "span_id": 0, "parent_id": null, "name": "outer", "attrs": {}}\n'
            '{"run_id": "spanrun", "seq": 2, "ts": 1.2, "event": "span_end",'
            ' "span_id": 0, "name": "outer", "duration_seconds": 0.1}\n'
        )
        v4 = self._v4_with_costs(n=4, rounds=2)
        combined = v3 + v4
        # The live writer stamps the current schema version, so filter on
        # TRACE_SCHEMA_VERSION rather than a literal (this test tracks bumps).
        latest = read_trace(io.StringIO(combined), schema_version=TRACE_SCHEMA_VERSION)
        assert latest
        headers = [e for e in latest if e["event"] == "trace_start"]
        assert headers and all(
            e["schema_version"] == TRACE_SCHEMA_VERSION for e in headers
        )
        assert any(e["event"] == "cost_summary" for e in latest)
        assert not any(e["event"] == "span_start" for e in latest)
        spans_only = read_trace(io.StringIO(combined), schema_version=3)
        assert any(e["event"] == "span_start" for e in spans_only)
        assert not any(e["event"] == "cost_summary" for e in spans_only)


class TestTraceStatsSiblingKeys:
    """v4/v5 enrichment rides as *sibling* keys -- by_event stays stable."""

    def test_cost_bits_summed_across_cost_summaries(self):
        from repro.obs import trace_stats

        events = [
            {"run_id": "r", "event": "trace_start", "schema_version": 4},
            {"run_id": "r", "event": "cost_summary", "total_bits": 8, "rounds": 2},
            {"run_id": "r", "event": "cost_summary", "total_bits": 5, "rounds": 1},
        ]
        stats = trace_stats(events)
        assert stats["r"]["cost_bits"] == 13
        assert stats["r"]["by_event"]["cost_summary"] == 2
        # the sibling key never leaks into by_event
        assert "cost_bits" not in stats["r"]["by_event"]

    def test_non_int_total_bits_ignored(self):
        from repro.obs import trace_stats

        events = [{"run_id": "r", "event": "cost_summary", "total_bits": "8"}]
        assert "cost_bits" not in trace_stats(events)["r"]

    def test_session_envelopes_summarized(self):
        from repro.obs import trace_stats

        events = [
            {"run_id": "s", "event": "session_start", "kind": "run"},
            {"run_id": "s", "event": "step", "index": 0},
            {"run_id": "s", "event": "session_end", "steps": 6, "complete": True},
            {"run_id": "s", "event": "session_start", "kind": "fault-sweep"},
            {"run_id": "s", "event": "session_end", "steps": 4, "complete": False},
        ]
        sessions = trace_stats(events)["s"]["sessions"]
        assert sessions["kinds"] == {"run": 1, "fault-sweep": 1}
        assert sessions["steps"] == 10
        assert sessions["complete"] is False

    def test_plain_runs_carry_no_sibling_keys(self):
        from repro.obs import trace_stats

        events = [
            {"run_id": "r", "event": "trace_start", "schema_version": 3},
            {"run_id": "r", "event": "round", "t": 1},
        ]
        entry = trace_stats(events)["r"]
        assert "cost_bits" not in entry
        assert "sessions" not in entry
        assert set(entry) == {"schema_version", "events", "by_event"}

    def test_recorded_session_file_stats(self, tmp_path):
        from repro.obs import read_trace, trace_stats
        from repro.replay import record_session

        path = str(tmp_path / "session.json")
        record_session(
            "run",
            {"n": 6, "algorithm": "neighbor_exchange", "instance": "one_cycle"},
            path,
        )
        with open(path, "r", encoding="utf-8") as fh:
            events = read_trace(fh)
        (entry,) = trace_stats(events).values()
        assert entry["sessions"]["kinds"] == {"run": 1}
        assert entry["sessions"]["complete"] is True
        assert entry["sessions"]["steps"] == entry["by_event"]["step"]
