"""Tests for the bench history store and the median+MAD regression
detector behind ``repro bench --history`` / ``repro compare``."""

import json

import pytest

from repro.obs import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    detect_regressions,
    history_record,
    read_history,
    render_perf_dashboard,
    sparkline,
    validate_history_record,
)
from repro.obs.regress import normalize_baseline


class _Result:
    """Duck-typed stand-in for BenchmarkResult."""

    def __init__(self, name, seconds, ok=True):
        self.name = name
        self.wall_time_seconds = seconds
        self.ok = ok


def _record(entries, quick=True, ts=0.0, sha="abc123", workers=1):
    return history_record(
        [_Result(name, seconds) for name, seconds in entries.items()],
        quick=quick,
        git_sha=sha,
        ts=ts,
        workers=workers,
    )


class TestHistoryStore:
    def test_record_shape_and_validation(self):
        record = _record({"simulator": 0.01, "crossing": 0.02})
        assert record["schema_version"] == HISTORY_SCHEMA_VERSION
        assert record["git_sha"] == "abc123"
        assert record["entries"]["simulator"] == {
            "wall_time_seconds": 0.01,
            "ok": True,
        }
        assert validate_history_record(record) == []

    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        first = _record({"simulator": 0.01}, ts=1.0)
        second = _record({"simulator": 0.02}, ts=2.0)
        append_history(first, path)
        append_history(second, path)
        records = read_history(path)
        assert records == [first, second]

    def test_append_rejects_invalid_record(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        with pytest.raises(ValueError):
            append_history({"schema_version": "nope"}, path)

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_record({"simulator": 0.01}), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "ts":')  # torn mid-write
        assert len(read_history(path)) == 1
        with pytest.raises(ValueError):
            read_history(path, skip_torn_tail=False)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(_record({"simulator": 0.01})) + "\n")
        with pytest.raises(ValueError):
            read_history(path)

    def test_validator_flags_bad_entries(self):
        record = _record({"simulator": 0.01})
        record["entries"]["simulator"]["wall_time_seconds"] = "fast"
        record["entries"]["simulator"].pop("ok")
        problems = validate_history_record(record)
        assert any("wall_time_seconds" in p for p in problems)
        assert any("ok" in p for p in problems)
        newer = _record({"simulator": 0.01})
        newer["schema_version"] = HISTORY_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_history_record(newer))

    def test_workers_field_recorded_and_validated(self):
        record = _record({"simulator": 0.01}, workers=4)
        assert record["workers"] == 4
        assert validate_history_record(record) == []
        # absent workers = a pre-parallel record, still valid (implies 1)
        legacy = _record({"simulator": 0.01})
        legacy.pop("workers")
        assert validate_history_record(legacy) == []
        for bad in (0, -1, True, "two", 1.5):
            broken = _record({"simulator": 0.01})
            broken["workers"] = bad
            assert any("workers" in p for p in validate_history_record(broken))


class TestDetector:
    def _history(self, series, latest, quick=True):
        records = [
            _record({"kernel": value}, quick=quick, ts=float(i))
            for i, value in enumerate(series)
        ]
        records.append(_record({"kernel": latest}, quick=quick, ts=99.0))
        return records

    def test_identical_history_is_ok(self):
        findings = detect_regressions(self._history([0.01] * 5, 0.01))
        assert [f.status for f in findings] == ["ok"]
        assert not findings[0].regressed

    def test_synthetic_2x_slowdown_regresses(self):
        findings = detect_regressions(self._history([0.01] * 5, 0.02))
        assert findings[0].status == "regressed"
        assert findings[0].ratio == pytest.approx(2.0)

    def test_improvement_detected(self):
        findings = detect_regressions(self._history([0.01] * 5, 0.004))
        assert findings[0].status == "improved"

    def test_min_sample_guard(self):
        findings = detect_regressions(self._history([0.01, 0.01], 0.05))
        assert findings[0].status == "insufficient"  # never "regressed"

    def test_new_kernel_flagged_not_regressed(self):
        history = [_record({"old": 0.01}, ts=0.0), _record({"fresh": 0.01}, ts=1.0)]
        findings = detect_regressions(history)
        assert [f.status for f in findings] == ["new"]

    def test_quick_and_full_never_compared(self):
        records = [_record({"kernel": 0.01}, quick=True, ts=float(i)) for i in range(5)]
        records.append(_record({"kernel": 0.05}, quick=False, ts=99.0))
        findings = detect_regressions(records)
        assert findings[0].status == "new"  # no full-mode baseline exists

    def test_worker_counts_never_compared(self):
        # a 4-worker run against a serial history: speedup, not baseline
        records = [
            _record({"kernel": 0.04}, ts=float(i), workers=1) for i in range(5)
        ]
        records.append(_record({"kernel": 0.01}, ts=99.0, workers=4))
        findings = detect_regressions(records)
        assert findings[0].status == "new"  # no 4-worker baseline exists
        # and a same-workers baseline behaves exactly as before
        records.extend(
            _record({"kernel": 0.01}, ts=100.0 + i, workers=4) for i in range(4)
        )
        records.append(_record({"kernel": 0.05}, ts=200.0, workers=4))
        findings = detect_regressions(records)
        assert findings[0].status == "regressed"
        assert findings[0].baseline_samples == 5  # only the workers=4 records

    def test_legacy_records_count_as_serial(self):
        # pre-parallel lines (no workers key) partition with workers=1
        legacy = []
        for i in range(4):
            record = _record({"kernel": 0.01}, ts=float(i))
            record.pop("workers")
            legacy.append(record)
        legacy.append(_record({"kernel": 0.01}, ts=99.0, workers=1))
        findings = detect_regressions(legacy)
        assert findings[0].status == "ok"
        assert findings[0].baseline_samples == 4

    def test_mad_gate_absorbs_noisy_kernels(self):
        # baseline swings 10..30ms (median 20, MAD 10); 26ms trips the
        # 1.25x ratio but sits inside median + 3*MAD, so: not a regression
        series = [0.010, 0.030, 0.020, 0.010, 0.030]
        findings = detect_regressions(self._history(series, 0.026))
        assert findings[0].status == "ok"

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            detect_regressions(self._history([0.01] * 5, 0.01), threshold=1.0)

    def test_empty_history(self):
        assert detect_regressions([]) == []

    def test_window_limits_baseline(self):
        # old fast records fall outside the window; recent slow ones rule
        series = [0.001] * 10 + [0.02] * 5
        findings = detect_regressions(self._history(series, 0.021), window=5)
        assert findings[0].status == "ok"
        assert findings[0].baseline_samples == 5


class TestDashboardAndBaseline:
    def test_sparkline_scales_to_range(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_dashboard_renders_rows_and_verdicts(self):
        records = [
            _record({"simulator": 0.01, "crossing": 0.02}, ts=float(i))
            for i in range(4)
        ]
        records.append(_record({"simulator": 0.05, "crossing": 0.02}, ts=99.0))
        text = render_perf_dashboard(records)
        assert "| simulator |" in text and "| crossing |" in text
        assert "regressed" in text
        assert "abc123"[:12] in text

    def test_dashboard_empty_history(self):
        assert "No history" in render_perf_dashboard([])

    def test_normalize_baseline_accepts_three_shapes(self):
        flat = normalize_baseline({"simulator": 0.01})
        assert flat["entries"]["simulator"]["wall_time_seconds"] == 0.01
        wrapped = normalize_baseline(
            {"entries": {"simulator": {"wall_time_seconds": 0.01, "ok": True}}}
        )
        assert validate_history_record(wrapped) == []
        full = normalize_baseline(_record({"simulator": 0.01}))
        assert validate_history_record(full) == []

    def test_normalize_baseline_rejects_garbage(self):
        with pytest.raises(ValueError):
            normalize_baseline([1, 2, 3])
        with pytest.raises(ValueError):
            normalize_baseline({"simulator": "fast"})
        with pytest.raises(ValueError):
            normalize_baseline({})


class TestKernelField:
    """The ``kernel`` history field partitions baselines like ``workers``."""

    def test_kernel_field_recorded_and_validated(self):
        record = history_record(
            [_Result("simulator", 0.01)], quick=True, ts=0.0, kernel="packed"
        )
        assert record["kernel"] == "packed"
        assert validate_history_record(record) == []
        # absent kernel = a pre-kernels record, still valid (implies auto)
        legacy = _record({"simulator": 0.01})
        legacy.pop("kernel", None)
        assert validate_history_record(legacy) == []
        for bad in ("", 1, None):
            broken = _record({"simulator": 0.01})
            broken["kernel"] = bad
            assert any("kernel" in p for p in validate_history_record(broken))

    def _kernel_record(self, value, ts, kernel):
        return history_record(
            [_Result("kernel", value)], quick=True, ts=ts, kernel=kernel
        )

    def test_kernel_modes_never_compared(self):
        # a packed run against a reference-mode history: speedup, not baseline
        records = [
            self._kernel_record(0.04, float(i), "reference") for i in range(5)
        ]
        records.append(self._kernel_record(0.01, 99.0, "packed"))
        findings = detect_regressions(records)
        assert findings[0].status == "new"  # no packed baseline exists
        # and a same-kernel baseline behaves exactly as before
        records.extend(
            self._kernel_record(0.01, 100.0 + i, "packed") for i in range(4)
        )
        records.append(self._kernel_record(0.05, 200.0, "packed"))
        findings = detect_regressions(records)
        assert findings[0].status == "regressed"
        assert findings[0].baseline_samples == 5  # only the packed records

    def test_legacy_records_count_as_auto(self):
        legacy = []
        for i in range(4):
            rec = self._kernel_record(0.01, float(i), "auto")
            rec.pop("kernel")
            legacy.append(rec)
        legacy.append(self._kernel_record(0.01, 99.0, "auto"))
        findings = detect_regressions(legacy)
        assert findings[0].status == "ok"


class _CostResult(_Result):
    """A result that also carries a ledger cost summary."""

    def __init__(self, name, seconds, bits, rounds=None, ok=True):
        super().__init__(name, seconds, ok=ok)
        costs = {"total_bits": bits}
        if rounds is not None:
            costs["rounds"] = rounds
        self.costs = costs


def _cost_record(entries, quick=True, ts=0.0, workers=1):
    return history_record(
        [
            _CostResult(name, seconds, bits, rounds)
            for name, (seconds, bits, rounds) in entries.items()
        ],
        quick=quick,
        git_sha="abc123",
        ts=ts,
        workers=workers,
    )


class TestCostColumns:
    """The communication-cost change detector riding the perf history."""

    def test_history_record_carries_bits_and_rounds(self):
        record = _cost_record({"kernel": (0.01, 48, 6)})
        entry = record["entries"]["kernel"]
        assert entry["bits"] == 48
        assert entry["rounds"] == 6
        assert validate_history_record(record) == []

    def test_costless_results_emit_no_cost_fields(self):
        record = _record({"kernel": 0.01})
        entry = record["entries"]["kernel"]
        assert "bits" not in entry and "rounds" not in entry
        assert validate_history_record(record) == []

    def test_validator_rejects_bad_cost_fields(self):
        record = _cost_record({"kernel": (0.01, 48, 6)})
        record["entries"]["kernel"]["bits"] = -1
        assert any("bits" in p for p in validate_history_record(record))
        record["entries"]["kernel"]["bits"] = "lots"
        assert any("bits" in p for p in validate_history_record(record))
        record = _cost_record({"kernel": (0.01, 48, 6)})
        record["entries"]["kernel"]["rounds"] = -2
        assert any("rounds" in p for p in validate_history_record(record))

    def _cost_history(self, series_bits, latest_bits):
        records = [
            _cost_record({"kernel": (0.01, bits, 4)}, ts=float(i))
            for i, bits in enumerate(series_bits)
        ]
        records.append(_cost_record({"kernel": (0.01, latest_bits, 4)}, ts=99.0))
        return records

    def test_same_bits_status_same(self):
        findings = detect_regressions(self._cost_history([48] * 5, 48))
        (finding,) = findings
        assert finding.cost_status == "same"
        assert finding.latest_bits == 48 and finding.baseline_bits == 48
        assert not finding.cost_changed

    def test_changed_bits_flagged_even_when_time_is_fine(self):
        findings = detect_regressions(self._cost_history([48] * 5, 56))
        (finding,) = findings
        assert finding.cost_status == "changed"
        assert finding.cost_changed
        assert not finding.regressed  # wall time did not move
        assert finding.cost_row() == ["kernel", 56, 48, "CHANGED"]

    def test_no_cost_history_status_new(self):
        records = [_record({"kernel": 0.01}, ts=float(i)) for i in range(5)]
        records.append(_cost_record({"kernel": (0.01, 48, 4)}, ts=99.0))
        (finding,) = detect_regressions(records)
        assert finding.cost_status == "new"
        assert finding.latest_bits == 48 and finding.baseline_bits is None

    def test_costless_latest_status_na(self):
        findings = detect_regressions(
            [_record({"kernel": 0.01}, ts=float(i)) for i in range(6)]
        )
        (finding,) = findings
        assert finding.cost_status == "n/a"
        assert finding.latest_bits is None
        assert not finding.cost_changed

    def test_baseline_is_most_recent_record_with_bits(self):
        records = self._cost_history([48, 48, 56], 56)
        # A costless record in between must not reset the comparison.
        records.insert(3, _record({"kernel": 0.01}, ts=50.0))
        (finding,) = detect_regressions(records)
        assert finding.baseline_bits == 56
        assert finding.cost_status == "same"

    def test_dashboard_gains_cost_section_only_with_bits(self):
        dashboard = render_perf_dashboard(self._cost_history([48] * 5, 56))
        assert "## Communication cost" in dashboard
        assert "| changed |" in dashboard
        assert "| 56 | 4 | 48 |" in dashboard
        costless = [_record({"kernel": 0.01}, ts=float(i)) for i in range(6)]
        assert "Communication cost" not in render_perf_dashboard(costless)
