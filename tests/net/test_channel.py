"""Unit tests for per-edge channels and their delivery policies."""

import random

import pytest

from repro.errors import DeliveryPolicyError
from repro.net import Channel, DELIVERY_KINDS, NetworkEvent, NetworkPlan


def _rng(seed=0):
    return random.Random(seed)


class TestChannelNoPolicies:
    def test_immediate_delivery(self):
        channel = Channel(0, 1)
        plan = NetworkPlan(max_delay=0, duplicate_rate=0.0)
        events = []
        assert channel.transmit(1, "m", plan, _rng(), events) == "m"
        assert events == []
        assert channel.stats()["sent"] == 1
        assert channel.stats()["delivered"] == 1

    def test_silence_costs_nothing(self):
        channel = Channel(0, 1)
        plan = NetworkPlan()
        events = []
        assert channel.transmit(1, "", plan, _rng(), events) == ""
        assert channel.stats()["sent"] == 0
        assert events == []


class TestDelay:
    def test_delay_defers_delivery(self):
        channel = Channel(0, 1)
        plan = NetworkPlan(max_delay=3)

        class AlwaysMax:
            def randint(self, lo, hi):
                return hi

            def random(self):
                return 1.0

            def randrange(self, n):
                return 0

        events = []
        assert channel.transmit(1, "x", plan, AlwaysMax(), events) == ""
        assert events and events[0].kind == "delayed"
        assert events[0].sent_round == 1 and events[0].arrival_round == 4
        # rounds 2, 3: still in flight
        assert channel.transmit(2, "", plan, AlwaysMax(), events) == ""
        assert channel.transmit(3, "", plan, AlwaysMax(), events) == ""
        # round 4: arrives
        assert channel.transmit(4, "", plan, AlwaysMax(), events) == "x"

    def test_zero_delay_draw_is_immediate(self):
        channel = Channel(0, 1)
        plan = NetworkPlan(max_delay=5)

        class AlwaysZero:
            def randint(self, lo, hi):
                return lo

            def random(self):
                return 1.0

            def randrange(self, n):
                return 0

        events = []
        assert channel.transmit(1, "x", plan, AlwaysZero(), events) == "x"
        assert events == []


class TestDuplication:
    def test_duplicate_redelivers_next_round(self):
        channel = Channel(0, 1)
        plan = NetworkPlan(duplicate_rate=1.0)
        events = []
        assert channel.transmit(1, "d", plan, _rng(), events) == "d"
        kinds = [e.kind for e in events]
        assert "duplicated" in kinds
        # the copy arrives one round later
        assert channel.transmit(2, "", plan, _rng(), events) == "d"
        assert channel.stats()["duplicated"] == 1


class TestReorder:
    def test_reorder_is_seed_deterministic(self):
        def run(seed):
            channel = Channel(0, 1)
            plan = NetworkPlan(seed=seed, max_delay=2, duplicate_rate=0.5, reorder=True)
            rng = _rng(seed)
            events = []
            delivered = [
                channel.transmit(t, f"m{t}", plan, rng, events) for t in range(1, 12)
            ]
            return delivered, [e.as_dict() for e in events]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestFinish:
    def test_finish_drops_in_flight(self):
        channel = Channel(0, 1)
        plan = NetworkPlan(max_delay=9)

        class AlwaysMax:
            def randint(self, lo, hi):
                return hi

            def random(self):
                return 1.0

        events = []
        channel.transmit(1, "lost", plan, AlwaysMax(), events)
        channel.finish(2, events)
        assert events[-1].kind == "dropped"
        assert channel.stats()["dropped"] == 1


class TestNetworkEvent:
    def test_as_dict_round_trips_fields(self):
        event = NetworkEvent(
            t=3, kind="delayed", sender=0, receiver=1, sent_round=3,
            arrival_round=5, message="m",
        )
        data = event.as_dict()
        assert data["kind"] == "delayed" and data["arrival_round"] == 5

    def test_kinds_registry(self):
        assert set(DELIVERY_KINDS) == {"delayed", "duplicated", "reordered", "dropped"}


class TestPlanValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(DeliveryPolicyError):
            NetworkPlan(max_delay=-1)

    def test_bad_duplicate_rate_rejected(self):
        with pytest.raises(DeliveryPolicyError):
            NetworkPlan(duplicate_rate=1.5)

    def test_pristine_detection(self):
        assert NetworkPlan().is_pristine
        assert not NetworkPlan(max_delay=1).is_pristine
        assert not NetworkPlan(duplicate_rate=0.1).is_pristine

    def test_as_dict_from_dict_round_trip(self):
        plan = NetworkPlan(seed=9, max_delay=2, duplicate_rate=0.25, reorder=True)
        assert NetworkPlan.from_dict(plan.as_dict()) == plan
