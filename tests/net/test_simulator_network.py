"""Integration: the simulator running over the repro.net delivery layer.

The two contracts that keep the refactor honest:

* **bit-identity** -- a faults-only run routed through the (pristine)
  NetworkManager produces exactly the RunResult the fault layer produced
  before the extraction, and the clean path allocates no manager at all;
* **determinism** -- adversarial delivery is a pure function of
  (plan, traffic): same seed, same events, byte for byte.
"""

import io

import pytest

from repro.core import Simulator
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.net import NetworkManager, NetworkPlan
from repro.resilience import FaultPlan
from repro.resilience.harness import HARNESS_ALGORITHMS


def _run(algorithm="flooding", n=7, faults=None, network=None, trace=None, split=None):
    spec = HARNESS_ALGORITHMS[algorithm]
    instance = (
        two_cycle_instance(n, split, kt=spec.kt)
        if split is not None
        else one_cycle_instance(n, kt=spec.kt)
    )
    sim = Simulator(spec.model(n), trace=trace)
    return sim.run(
        instance, spec.factory(n), spec.rounds(n), faults=faults, network=network
    )


class TestBitIdentity:
    def test_faults_only_matches_direct_fault_path(self):
        plan = FaultPlan(seed=13, bit_flip_rate=0.1, erasure_rate=0.05)
        direct = _run(faults=plan)
        via_pristine_net = _run(faults=plan, network=NetworkPlan(faults=plan))
        assert direct.outputs == via_pristine_net.outputs
        assert direct.fault_events == via_pristine_net.fault_events
        assert [t.comparable() for t in direct.transcripts] == [
            t.comparable() for t in via_pristine_net.transcripts
        ]

    def test_clean_run_has_no_network_surface(self):
        result = _run()
        assert result.network_events == ()
        assert result.delivery_stats == ()

    def test_clean_path_allocates_no_channels(self, monkeypatch):
        """The fast path must not even construct a NetworkManager."""
        def boom(*args, **kwargs):
            raise AssertionError("clean run constructed a NetworkManager")

        monkeypatch.setattr(NetworkManager, "__init__", boom)
        result = _run()
        assert result.all_finished


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ["flooding", "neighbor_exchange"])
    def test_same_seed_same_delivery(self, algorithm):
        plan = NetworkPlan(seed=21, max_delay=2, duplicate_rate=0.2, reorder=True)
        a = _run(algorithm=algorithm, network=plan)
        b = _run(algorithm=algorithm, network=plan)
        assert a.network_events == b.network_events
        assert a.outputs == b.outputs
        assert a.delivery_stats == b.delivery_stats

    def test_different_seed_different_delivery(self):
        a = _run(network=NetworkPlan(seed=1, max_delay=2, duplicate_rate=0.3, reorder=True))
        b = _run(network=NetworkPlan(seed=2, max_delay=2, duplicate_rate=0.3, reorder=True))
        assert a.network_events != b.network_events

    def test_faults_compose_with_network(self):
        faults = FaultPlan(seed=3, bit_flip_rate=0.05)
        plan = NetworkPlan(seed=4, max_delay=1, duplicate_rate=0.1, faults=faults)
        result = _run(network=plan)
        assert result.fault_events  # fault layer still active
        assert result.network_events  # delivery layer active too
        # composing does not perturb the fault RNG stream: the same fault
        # plan alone yields the same fault events
        alone = _run(faults=faults)
        assert [e.kind for e in alone.fault_events] == [
            e.kind for e in result.fault_events
        ]


class TestTraceIntegration:
    def test_delivery_events_traced_and_valid(self):
        from repro.obs import RunTrace, read_trace, validate_trace_events

        buffer = io.StringIO()
        trace = RunTrace(buffer)
        plan = NetworkPlan(seed=5, max_delay=2, duplicate_rate=0.2, reorder=True)
        result = _run(network=plan, trace=trace)
        trace.close()
        events = read_trace(io.StringIO(buffer.getvalue()))
        assert validate_trace_events(events) == []
        deliveries = [e for e in events if e.get("event") == "delivery"]
        assert len(deliveries) == len(result.network_events)
        run_start = next(e for e in events if e.get("event") == "run_start")
        assert run_start["network"]["max_delay"] == 2
        run_end = next(e for e in events if e.get("event") == "run_end")
        assert run_end["delivery_anomalies"] == len(result.network_events)

    def test_clean_trace_shape_unchanged(self):
        from repro.obs import RunTrace, read_trace

        buffer = io.StringIO()
        trace = RunTrace(buffer)
        _run(trace=trace)
        trace.close()
        events = read_trace(io.StringIO(buffer.getvalue()))
        run_start = next(e for e in events if e.get("event") == "run_start")
        run_end = next(e for e in events if e.get("event") == "run_end")
        assert "network" not in run_start
        assert "delivery_anomalies" not in run_end
        assert not any(e.get("event") == "delivery" for e in events)


class TestDeliveryStats:
    def test_stats_cover_trafficked_edges_only(self):
        plan = NetworkPlan(seed=8, max_delay=1)
        result = _run(network=plan)
        assert result.delivery_stats
        for entry in result.delivery_stats:
            assert entry["sent"] or entry["delivered"] or entry["dropped"]
            assert entry["sender"] != entry["receiver"]
