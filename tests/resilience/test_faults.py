"""Tests for the deterministic fault-injection layer."""

import io

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, Simulator
from repro.algorithms import connectivity_factory
from repro.errors import FaultInjectionError
from repro.instances import one_cycle_instance
from repro.obs import RunTrace, read_trace, validate_trace_events
from repro.resilience import FAULT_KINDS, FaultPlan, ScheduledFault


def _run(n=8, plan=None, rounds=8, kt=1):
    inst = one_cycle_instance(n, kt=kt)
    model = BCC1_KT1 if kt else BCC1_KT0
    sim = Simulator(model, faults=plan)
    return sim.run(inst, connectivity_factory(max_degree=2), rounds)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(bit_flip_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(erasure_rate=-0.1)

    def test_scheduled_fault_kind_checked(self):
        with pytest.raises(FaultInjectionError):
            ScheduledFault(round_index=1, kind="meltdown", vertex=0)

    def test_scheduled_vertex_bounds_checked_at_run_start(self):
        plan = FaultPlan(scheduled=(ScheduledFault(1, "crash", vertex=99),))
        with pytest.raises(FaultInjectionError):
            plan.begin_run(8)

    def test_single_rate_constructor(self):
        plan = FaultPlan.single_rate("erasure", 0.25, seed=7)
        assert plan.erasure_rate == 0.25
        assert plan.bit_flip_rate == 0.0
        assert plan.crash_rate == 0.0

    def test_fault_kinds_constant(self):
        assert FAULT_KINDS == ("bit_flip", "erasure", "crash")


class TestDeterminism:
    def test_same_seed_bit_identical_runs(self):
        plan = FaultPlan(seed=11, bit_flip_rate=0.2, erasure_rate=0.1, crash_rate=0.05)
        a = _run(plan=plan)
        b = _run(plan=plan)
        assert a.outputs == b.outputs
        assert a.broadcast_history == b.broadcast_history
        assert a.crashed_vertices == b.crashed_vertices
        assert a.failed_vertices == b.failed_vertices
        assert [e.as_dict() for e in a.fault_events] == [
            e.as_dict() for e in b.fault_events
        ]

    def test_different_seed_differs(self):
        a = _run(plan=FaultPlan(seed=1, bit_flip_rate=0.3))
        b = _run(plan=FaultPlan(seed=2, bit_flip_rate=0.3))
        # fault events depend on the seed; the streams must not coincide
        assert [e.as_dict() for e in a.fault_events] != [
            e.as_dict() for e in b.fault_events
        ]

    def test_zero_rate_plan_equals_clean_run(self):
        clean = _run(plan=None)
        faulted = _run(plan=FaultPlan(seed=3))
        assert clean.outputs == faulted.outputs
        assert clean.broadcast_history == faulted.broadcast_history
        assert faulted.fault_events == ()
        assert faulted.crashed_vertices == ()

    def test_clean_run_has_empty_fault_fields(self):
        res = _run(plan=None)
        assert res.fault_events == ()
        assert res.crashed_vertices == ()
        assert res.failed_vertices == ()


class TestScheduledFaults:
    def test_scheduled_erasure_hits_one_receiver(self):
        plan = FaultPlan(
            scheduled=(ScheduledFault(1, "erasure", vertex=0, receiver=3),)
        )
        res = _run(plan=plan)
        kinds = [(e.t, e.kind, e.vertex, e.receiver) for e in res.fault_events]
        assert (1, "erasure", 0, 3) in kinds

    def test_scheduled_crash_silences_forever(self):
        plan = FaultPlan(scheduled=(ScheduledFault(1, "crash", vertex=2),))
        res = _run(plan=plan)
        assert 2 in res.crashed_vertices
        # from round 1 on, vertex 2's broadcast arrives as the empty string
        for t in range(len(res.broadcast_history)):
            assert res.broadcast_history[t][2] == ""

    def test_scheduled_bit_flip_out_of_range_raises(self):
        # vertex broadcasts are 1 bit wide in BCC(1); flipping bit 5 of a
        # 1-bit message is a configuration error, not a silent no-op
        plan = FaultPlan(
            scheduled=(ScheduledFault(1, "bit_flip", vertex=0, receiver=1, bit_index=5),)
        )
        inst = one_cycle_instance(8, kt=1)
        sim = Simulator(BCC1_KT1, faults=plan)
        with pytest.raises(FaultInjectionError):
            sim.run(inst, connectivity_factory(max_degree=2), 8)


class TestFailStop:
    def test_node_exception_under_faults_becomes_failure(self):
        # crashing vertex 0 in round 1 starves its cycle neighbors of the
        # ID-exchange bits; under fault injection that surfaces as failed
        # vertices (outputs None), never as a simulator crash
        plan = FaultPlan(scheduled=(ScheduledFault(1, "crash", vertex=0),), seed=5)
        inst = one_cycle_instance(8, kt=0)
        res = Simulator(BCC1_KT0, faults=plan).run(
            inst, connectivity_factory(max_degree=2), 8
        )
        assert 0 in res.crashed_vertices
        for v in res.failed_vertices:
            assert res.outputs[v] is None

    def test_max_crashes_cap_respected(self):
        plan = FaultPlan(seed=9, crash_rate=0.9, max_crashes=2)
        res = _run(plan=plan)
        assert len(res.crashed_vertices) <= 2


class TestFaultTraceIntegration:
    def test_fault_events_reach_the_trace_as_schema_v2(self):
        buf = io.StringIO()
        trace = RunTrace(buf)
        plan = FaultPlan(scheduled=(ScheduledFault(1, "erasure", vertex=0, receiver=3),))
        inst = one_cycle_instance(8, kt=1)
        Simulator(BCC1_KT1, trace=trace, faults=plan).run(
            inst, connectivity_factory(max_degree=2), 8
        )
        trace.close()
        events = read_trace(io.StringIO(buf.getvalue()))
        assert validate_trace_events(events) == []
        faults = [e for e in events if e["event"] == "fault"]
        assert faults and faults[0]["kind"] == "erasure"
        run_start = next(e for e in events if e["event"] == "run_start")
        assert "fault_seed" in run_start
        run_end = next(e for e in events if e["event"] == "run_end")
        assert run_end["faults_injected"] == len(faults)
