"""Tests for the SIGTERM -> KeyboardInterrupt mapping."""

import os
import signal

import pytest

from repro.resilience import graceful_interrupts


class TestGracefulInterrupts:
    def test_sigterm_raises_keyboard_interrupt_inside_block(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
                signal.sigtimedwait([], 0.5)  # give the handler a beat
                raise AssertionError("SIGTERM handler did not fire")

    def test_previous_handler_restored_after_block(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with graceful_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
                signal.sigtimedwait([], 0.5)
        assert signal.getsignal(signal.SIGTERM) is before

    def test_block_without_signal_is_a_no_op(self):
        with graceful_interrupts():
            total = sum(range(100))
        assert total == 4950
