"""Tests for atomic checkpoints and the checkpoint/resume search paths."""

import json
import os
import random

import pytest

from repro.errors import BudgetExceededError, CheckpointError
from repro.information.sampling import estimate_protocol_information
from repro.lowerbounds.exhaustive import universal_bound_id_oblivious
from repro.partitions.linalg import rank_bareiss, rank_exact
from repro.resilience import (
    Budget,
    CHECKPOINT_VERSION,
    Checkpointer,
    read_checkpoint,
    write_checkpoint,
)
from repro.twoparty import TrivialPartitionCompProtocol


class TestAtomicWriteRead:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "demo", {"n": 6}, {"index": 41})
        payload = read_checkpoint(path, kind="demo", params={"n": 6})
        assert payload["checkpoint_version"] == CHECKPOINT_VERSION
        assert payload["state"]["index"] == 41

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.json")
        for i in range(5):
            write_checkpoint(path, "demo", {"n": 6}, {"index": i})
        assert sorted(os.listdir(tmp_path)) == ["ck.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "demo", {}, {"index": 1})
        write_checkpoint(path, "demo", {}, {"index": 2})
        assert read_checkpoint(path)["state"]["index"] == 2

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path / "absent.json"))

    def test_corrupt_json_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(str(path))

    def test_kind_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "exhaustive", {}, {})
        with pytest.raises(CheckpointError):
            read_checkpoint(path, kind="sampling")

    def test_params_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "demo", {"n": 6}, {})
        with pytest.raises(CheckpointError):
            read_checkpoint(path, kind="demo", params={"n": 7})


class TestCheckpointer:
    def test_cadence_by_units(self, tmp_path):
        path = str(tmp_path / "ck.json")
        state = {"i": 0}
        ck = Checkpointer(path, "demo", {}, lambda: dict(state), every_units=10, every_seconds=3600.0)
        for i in range(25):
            state["i"] = i
            ck.maybe_write()
        assert 1 <= ck.writes <= 3
        ck.flush()
        assert read_checkpoint(path)["state"]["i"] == 24

    def test_flush_always_writes(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ck = Checkpointer(path, "demo", {}, lambda: {"x": 1}, every_units=10**9)
        ck.flush()
        assert os.path.exists(path)


class TestExhaustiveResume:
    def test_interrupted_plus_resumed_equals_uninterrupted(self, tmp_path):
        plain = universal_bound_id_oblivious(6)
        path = str(tmp_path / "ck.json")
        with pytest.raises(BudgetExceededError) as exc_info:
            universal_bound_id_oblivious(
                6,
                budget=Budget(max_units=200, check_interval=1),
                checkpoint_path=path,
                checkpoint_every=16,
                checkpoint_seconds=0.001,
            )
        assert exc_info.value.checkpoint_path == path
        assert exc_info.value.partial is not None
        stored = json.load(open(path))
        assert stored["state"]["next_index"] == 200
        resumed = universal_bound_id_oblivious(6, resume=path)
        assert resumed == plain

    def test_resume_param_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(BudgetExceededError):
            universal_bound_id_oblivious(
                6,
                budget=Budget(max_units=50, check_interval=1),
                checkpoint_path=path,
                checkpoint_seconds=0.001,
            )
        with pytest.raises(CheckpointError):
            universal_bound_id_oblivious(7, resume=path)

    def test_malformed_state_raises(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(
            path, "exhaustive", {"n": 6, "alphabet": ["", "0", "1"]}, {"nonsense": 1}
        )
        with pytest.raises(CheckpointError):
            universal_bound_id_oblivious(6, resume=path)


class TestSamplingResume:
    def test_interrupted_plus_resumed_equals_uninterrupted(self, tmp_path):
        protocol = TrivialPartitionCompProtocol(5)
        uninterrupted = estimate_protocol_information(
            protocol, 5, 150, random.Random(7), budget=Budget(max_units=10**9)
        )
        path = str(tmp_path / "ck.json")
        with pytest.raises(BudgetExceededError) as exc_info:
            estimate_protocol_information(
                protocol,
                5,
                150,
                random.Random(7),
                budget=Budget(max_units=60, check_interval=1),
                checkpoint_path=path,
                checkpoint_every=8,
                checkpoint_seconds=0.001,
            )
        assert exc_info.value.partial.samples == 60
        # a fresh RNG: the checkpoint restores the stream position exactly
        resumed = estimate_protocol_information(
            protocol, 5, 150, random.Random(999), resume=path
        )
        assert resumed == uninterrupted

    def test_resilient_path_matches_lean_numbers(self):
        protocol = TrivialPartitionCompProtocol(5)
        lean = estimate_protocol_information(protocol, 5, 120, random.Random(3))
        resilient = estimate_protocol_information(
            protocol, 5, 120, random.Random(3), budget=Budget(max_units=10**9)
        )
        assert resilient.information_estimate == pytest.approx(
            lean.information_estimate, abs=1e-9
        )
        assert resilient.distinct_inputs_seen == lean.distinct_inputs_seen
        assert resilient.error_rate_estimate == lean.error_rate_estimate


class TestRankBudget:
    def test_budget_does_not_change_the_answer(self):
        matrix = [[(i * j + i + j) % 2 for j in range(12)] for i in range(12)]
        assert rank_exact(matrix, budget=Budget(max_units=10**6)) == rank_exact(matrix)

    def test_budget_trips_inside_elimination(self):
        matrix = [[(i + j) % 5 for j in range(30)] for i in range(30)]
        with pytest.raises(BudgetExceededError):
            rank_bareiss(matrix, budget=Budget(max_units=2, check_interval=1))
