"""Unit tests for the shared transient-I/O retry policy."""

import errno

import pytest

from repro.errors import CheckpointError
from repro.resilience import (
    DEFAULT_RETRY_ATTEMPTS,
    read_checkpoint,
    retry_transient,
    set_retry_sleep,
    write_checkpoint,
)


class _Flaky:
    """Raises a transient error the first ``failures`` times it is called."""

    def __init__(self, failures, error=None):
        self.failures = failures
        self.calls = 0
        self.error = error or OSError(errno.EINTR, "interrupted system call")

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


@pytest.fixture(autouse=True)
def no_sleep():
    previous = set_retry_sleep(None)
    yield
    set_retry_sleep(previous)


class TestRetryTransient:
    def test_first_try_success_is_single_call(self):
        flaky = _Flaky(failures=0)
        assert retry_transient(flaky) == "ok"
        assert flaky.calls == 1

    def test_transient_failures_retried(self):
        flaky = _Flaky(failures=DEFAULT_RETRY_ATTEMPTS - 1)
        assert retry_transient(flaky) == "ok"
        assert flaky.calls == DEFAULT_RETRY_ATTEMPTS

    def test_persistent_failure_reraises_original(self):
        error = OSError(errno.EIO, "dead disk")
        flaky = _Flaky(failures=99, error=error)
        with pytest.raises(OSError) as excinfo:
            retry_transient(flaky)
        assert excinfo.value is error
        assert flaky.calls == DEFAULT_RETRY_ATTEMPTS

    def test_non_transient_errors_not_retried(self):
        flaky = _Flaky(failures=99, error=KeyError("not io"))
        with pytest.raises(KeyError):
            retry_transient(flaky, transient=(OSError,))
        assert flaky.calls == 1

    def test_backoff_delays_double(self):
        delays = []
        set_retry_sleep(delays.append)
        flaky = _Flaky(failures=3)
        assert retry_transient(flaky, attempts=4, base_delay=0.01) == "ok"
        assert delays == [0.01, 0.02, 0.04]

    def test_no_sleep_mode_never_sleeps(self):
        # the autouse fixture installed None; a sleep call would TypeError
        flaky = _Flaky(failures=2)
        assert retry_transient(flaky) == "ok"

    def test_attempt_bounds_validated(self):
        with pytest.raises(ValueError):
            retry_transient(lambda: None, attempts=0)
        with pytest.raises(ValueError):
            retry_transient(lambda: None, base_delay=-1)


class TestCheckpointRetry:
    def test_transient_replace_failure_survives(self, tmp_path, monkeypatch):
        import os as os_module

        path = str(tmp_path / "ck.json")
        real_replace = os_module.replace
        failures = [2]

        def flaky_replace(src, dst):
            if failures[0] > 0:
                failures[0] -= 1
                raise OSError(errno.EINTR, "interrupted system call")
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.resilience.checkpoint.os.replace", flaky_replace
        )
        write_checkpoint(path, "unit", {"n": 3}, {"cursor": 7})
        payload = read_checkpoint(path, kind="unit", params={"n": 3})
        assert payload["state"] == {"cursor": 7}
        # failed attempts cleaned their temp files up
        leftovers = [f for f in tmp_path.iterdir() if f.name.startswith(".ckpt-")]
        assert leftovers == []

    def test_persistent_failure_still_checkpoint_error(self, tmp_path, monkeypatch):
        def always_fail(src, dst):
            raise OSError(errno.EIO, "dead disk")

        monkeypatch.setattr(
            "repro.resilience.checkpoint.os.replace", always_fail
        )
        with pytest.raises(CheckpointError):
            write_checkpoint(str(tmp_path / "ck.json"), "unit", {}, {})
