"""Tests for the graceful-degradation (fault-sweep) harness."""

import pytest

from repro.errors import FaultInjectionError
from repro.resilience import (
    FAULT_SWEEP_SCHEMA_VERSION,
    HARNESS_ALGORITHMS,
    fault_sweep,
    validate_fault_sweep_payload,
)


def _small_sweep(**overrides):
    kwargs = dict(
        algorithms=("neighbor_exchange",),
        kinds=("erasure", "crash"),
        rates=(0.0, 0.2),
        n=6,
        trials=4,
        seed=3,
    )
    kwargs.update(overrides)
    return fault_sweep(**kwargs)


class TestSweepShape:
    def test_one_curve_per_algorithm_kind_pair(self):
        report = _small_sweep()
        assert len(report.curves) == 2  # 1 algorithm x 2 kinds
        for curve in report.curves:
            assert [p.rate for p in curve.points] == [0.0, 0.2]
            for p in curve.points:
                assert p.trials == 4

    def test_zero_rate_is_always_correct_with_no_faults(self):
        report = _small_sweep()
        for curve in report.curves:
            baseline = curve.points[0]
            assert baseline.rate == 0.0
            assert baseline.correctness_rate == 1.0
            assert baseline.faults_injected == 0

    def test_known_algorithms_registered(self):
        assert set(HARNESS_ALGORITHMS) == {
            "neighbor_exchange",
            "flooding",
            "boruvka",
            "sketch",
        }

    def test_sweep_is_deterministic(self):
        a = _small_sweep().as_payload()
        b = _small_sweep().as_payload()
        for payload in (a, b):
            payload.pop("created_unix")
            payload.pop("wall_time_seconds")
        assert a == b


class TestSweepValidation:
    def test_payload_passes_schema_validation(self):
        payload = _small_sweep().as_payload()
        assert payload["schema_version"] == FAULT_SWEEP_SCHEMA_VERSION
        assert validate_fault_sweep_payload(payload) == []

    def test_validator_flags_broken_payloads(self):
        payload = _small_sweep().as_payload()
        payload["curves"][0]["points"][0]["correct"] = "three"
        del payload["n"]
        problems = validate_fault_sweep_payload(payload)
        assert len(problems) >= 2

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(FaultInjectionError):
            _small_sweep(algorithms=("dijkstra",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            _small_sweep(kinds=("gamma_ray",))

    def test_tiny_n_rejected(self):
        with pytest.raises(FaultInjectionError):
            _small_sweep(n=4)
