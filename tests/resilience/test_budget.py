"""Tests for the cooperative run budget."""

import time

import pytest

from repro.errors import BudgetExceededError
from repro.resilience import Budget


class TestWorkUnitCap:
    def test_tick_raises_at_cap(self):
        budget = Budget(max_units=3, check_interval=1)
        budget.tick()
        budget.tick()
        with pytest.raises(BudgetExceededError):
            budget.tick()

    def test_exception_carries_partial_and_no_checkpoint(self):
        budget = Budget(max_units=1, check_interval=1)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(partial={"best": 0.25})
        assert exc_info.value.partial == {"best": 0.25}
        assert exc_info.value.checkpoint_path is None

    def test_units_done_and_remaining(self):
        budget = Budget(max_units=10, check_interval=1)
        budget.tick()
        budget.tick()
        assert budget.units_done == 2
        assert budget.remaining_units() == 8

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(10_000):
            budget.tick()
        assert budget.remaining_units() is None


class TestWallClock:
    def test_deadline_trips(self):
        budget = Budget(wall_seconds=0.01, check_interval=1)
        deadline = time.perf_counter() + 5.0
        with pytest.raises(BudgetExceededError):
            while time.perf_counter() < deadline:
                budget.tick()

    def test_remaining_seconds_decreases(self):
        budget = Budget(wall_seconds=100.0)
        first = budget.remaining_seconds()
        time.sleep(0.01)
        assert budget.remaining_seconds() < first

    def test_restart_resets_the_clock(self):
        budget = Budget(wall_seconds=50.0, max_units=5, check_interval=1)
        for _ in range(4):
            budget.tick()
        budget.restart()
        assert budget.units_done == 0
        for _ in range(4):
            budget.tick()  # would raise without the restart

    def test_check_interval_amortizes_but_still_trips(self):
        budget = Budget(wall_seconds=0.01, check_interval=256)
        time.sleep(0.02)
        with pytest.raises(BudgetExceededError):
            for _ in range(512):
                budget.tick()
