"""Tests for Definition 3.3 (port-preserving crossings)."""

import pytest

from repro.core import BCCInstance
from repro.crossing import cross, crossed_edge_sets
from repro.errors import InvalidCrossingError
from repro.instances import one_cycle_instance, two_cycle_instance


class TestCrossStructure:
    def test_splits_cycle(self):
        inst = one_cycle_instance(10)
        crossed = cross(inst, (0, 1), (4, 5))
        comps = sorted(len(c) for c in crossed.input_graph().connected_components())
        assert comps == [4, 6]

    def test_new_edges_present_old_absent(self):
        inst = one_cycle_instance(10)
        crossed = cross(inst, (0, 1), (4, 5))
        assert crossed.has_input_edge(0, 5)
        assert crossed.has_input_edge(4, 1)
        assert not crossed.has_input_edge(0, 1)
        assert not crossed.has_input_edge(4, 5)

    def test_crossed_edge_sets_helper(self):
        assert crossed_edge_sets((0, 1), (4, 5)) == ((0, 5), (1, 4))

    def test_merges_two_cycles(self):
        inst = two_cycle_instance(10, 5)
        crossed = cross(inst, (0, 1), (5, 6))
        assert crossed.input_graph().is_connected()

    def test_degrees_preserved(self):
        inst = one_cycle_instance(9)
        crossed = cross(inst, (0, 1), (3, 4))
        for v in range(9):
            assert crossed.input_degree(v) == 2


class TestPortPreservation:
    def test_local_views_unchanged(self):
        """Every vertex keeps its port labels and input ports (the heart of
        Definition 3.3)."""
        inst = one_cycle_instance(10)
        crossed = cross(inst, (0, 1), (4, 5))
        for v in range(10):
            assert inst.port_labels(v) == crossed.port_labels(v)
            assert inst.input_ports(v) == crossed.input_ports(v)

    def test_rewiring_matches_definition(self):
        inst = one_cycle_instance(10)
        v1, u1, v2, u2 = 0, 1, 4, 5
        p1 = inst.port_to_peer(v1, u1)
        q1 = inst.port_to_peer(u1, v1)
        p2 = inst.port_to_peer(v2, u2)
        q2 = inst.port_to_peer(u2, v2)
        p1p = inst.port_to_peer(v1, u2)
        q2p = inst.port_to_peer(u2, v1)
        p2p = inst.port_to_peer(v2, u1)
        q1p = inst.port_to_peer(u1, v2)

        crossed = cross(inst, (v1, u1), (v2, u2))
        # e1 = (v1, u1) now wired at ports (p1', q1')
        assert crossed.port_to_peer(v1, u1) == p1p
        assert crossed.port_to_peer(u1, v1) == q1p
        # e2 = (v2, u2) at (p2', q2')
        assert crossed.port_to_peer(v2, u2) == p2p
        assert crossed.port_to_peer(u2, v2) == q2p
        # e1' = (v1, u2) at (p1, q2)
        assert crossed.port_to_peer(v1, u2) == p1
        assert crossed.port_to_peer(u2, v1) == q2
        # e2' = (v2, u1) at (p2, q1)
        assert crossed.port_to_peer(v2, u1) == p2
        assert crossed.port_to_peer(u1, v2) == q1

    def test_other_wiring_untouched(self):
        inst = one_cycle_instance(10)
        crossed = cross(inst, (0, 1), (4, 5))
        touched = {0, 1, 4, 5}
        for v in range(10):
            for port in inst.port_labels(v):
                peer_before = inst.peer_of_port(v, port)
                peer_after = crossed.peer_of_port(v, port)
                if v not in touched or peer_before not in touched:
                    assert peer_before == peer_after

    def test_crossing_is_involution_on_input_graph(self):
        """Crossing the new pair back restores the original input graph."""
        inst = one_cycle_instance(10)
        crossed = cross(inst, (0, 1), (4, 5))
        # cross back using the new edges (0,5) and (4,1)
        restored = cross(crossed, (0, 5), (4, 1))
        assert restored.input_edges == inst.input_edges


class TestCrossValidation:
    def test_requires_kt0(self):
        inst = one_cycle_instance(10, kt=1)
        with pytest.raises(InvalidCrossingError):
            cross(inst, (0, 1), (4, 5))

    def test_requires_input_edges(self):
        inst = one_cycle_instance(10)
        with pytest.raises(InvalidCrossingError):
            cross(inst, (0, 2), (4, 5))

    def test_requires_independence(self):
        inst = one_cycle_instance(10)
        with pytest.raises(InvalidCrossingError):
            cross(inst, (0, 1), (1, 2))
        with pytest.raises(InvalidCrossingError):
            cross(inst, (0, 1), (2, 3))

    def test_result_is_valid_instance(self):
        inst = one_cycle_instance(12)
        crossed = cross(inst, (2, 3), (7, 8))
        # BCCInstance validates invariants on construction; also spot-check
        for v in range(12):
            peers = {crossed.peer_of_port(v, p) for p in crossed.port_labels(v)}
            assert peers == set(range(12)) - {v}
