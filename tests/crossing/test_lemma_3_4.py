"""Operational validation of Lemma 3.4 on real simulator executions.

Lemma 3.4: if the heads of two crossed independent edges broadcast the same
sequence and the tails broadcast the same sequence during the first t
rounds, then I and I(e1, e2) are indistinguishable after t rounds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BCC1_KT0,
    ConstantAlgorithm,
    FunctionalAlgorithm,
    NodeAlgorithm,
    PublicCoin,
    SilentAlgorithm,
    Simulator,
    YES,
)
from repro.crossing import (
    check_lemma_3_4,
    cross,
    distinguishing_vertices,
    indistinguishable_runs,
    lemma_3_4_premise_holds,
)
from repro.instances import one_cycle_instance

SIM = Simulator(BCC1_KT0)


class BroadcastDegreeParity(NodeAlgorithm):
    """Symmetric algorithm: all vertices of a 2-regular graph act alike."""

    def broadcast(self, t):
        return str(self.knowledge.input_degree % 2)

    def receive(self, t, messages):
        pass

    def output(self):
        return YES


class BroadcastIdBits(NodeAlgorithm):
    """Asymmetric algorithm: vertex broadcasts its ID bit by bit."""

    def broadcast(self, t):
        return str((self.knowledge.vertex_id >> (t - 1)) & 1)

    def receive(self, t, messages):
        pass

    def output(self):
        return YES


class EchoMinPort(NodeAlgorithm):
    """Stateful algorithm: echoes the message heard on the minimum input port.

    Exercises the induction step of Lemma 3.4: round t's broadcast depends
    on messages received in earlier rounds.
    """

    def setup(self, knowledge):
        super().setup(knowledge)
        self._next = "1"

    def broadcast(self, t):
        return self._next

    def receive(self, t, messages):
        port = min(self.knowledge.input_ports)
        self._next = messages[port] or "0"

    def output(self):
        return YES


@pytest.mark.parametrize("factory", [SilentAlgorithm, ConstantAlgorithm, BroadcastDegreeParity, EchoMinPort])
@pytest.mark.parametrize("rounds", [1, 3, 5])
def test_symmetric_algorithms_fooled(factory, rounds):
    """Symmetric algorithms satisfy the premise, so crossing must fool them."""
    inst = one_cycle_instance(10)
    e1, e2 = (0, 1), (4, 5)
    crossed = cross(inst, e1, e2)
    premise, conclusion = check_lemma_3_4(SIM, inst, crossed, factory, e1, e2, rounds)
    assert premise
    assert conclusion


def test_asymmetric_algorithm_premise_fails_and_distinguishes():
    """With distinct IDs broadcast, the premise fails; the lemma is silent,
    and indeed the runs are distinguishable at the crossed endpoints."""
    inst = one_cycle_instance(10)
    e1, e2 = (0, 1), (4, 5)
    crossed = cross(inst, e1, e2)
    premise, conclusion = check_lemma_3_4(
        SIM, inst, crossed, BroadcastIdBits, e1, e2, rounds=4
    )
    assert not premise
    assert not conclusion


def test_asymmetric_with_matching_endpoints():
    """Premise can hold for an ID-based algorithm if the crossed endpoints'
    IDs happen to agree on the broadcast bits; engineer that via ID choice."""
    # IDs chosen so vertices 0 and 4 share low bits, and 1 and 5 share them
    ids = [0b00, 0b01, 0b10, 0b11, 0b100, 0b101, 0b110, 0b111, 0b1000, 0b1001]
    # low 2 bits: v0=00, v4=00; v1=01, v5=01
    inst = one_cycle_instance(10, ids=ids)
    e1, e2 = (0, 1), (4, 5)
    crossed = cross(inst, e1, e2)
    premise, conclusion = check_lemma_3_4(
        SIM, inst, crossed, BroadcastIdBits, e1, e2, rounds=2
    )
    assert premise
    assert conclusion


def test_distinguishing_vertices_are_crossed_endpoints():
    inst = one_cycle_instance(10)
    e1, e2 = (0, 1), (4, 5)
    crossed = cross(inst, e1, e2)
    run_a = SIM.run(inst, BroadcastIdBits, 4)
    run_b = SIM.run(crossed, BroadcastIdBits, 4)
    diff = distinguishing_vertices(SIM, run_a, run_b)
    assert set(diff) <= {0, 1, 4, 5}
    assert diff  # they do differ


def test_randomized_algorithm_with_shared_coin_fooled():
    """Public-coin randomness is identical across runs, so a coin-driven
    symmetric algorithm still satisfies the premise."""

    def factory():
        return FunctionalAlgorithm(
            broadcast=lambda self, t: str(self.knowledge.coin.bit(f"round{t}")),
            receive=lambda self, t, m: None,
            output=lambda self: YES,
        )

    inst = one_cycle_instance(9)
    e1, e2 = (0, 1), (3, 4)
    crossed = cross(inst, e1, e2)
    coin = PublicCoin("lemma34")
    premise, conclusion = check_lemma_3_4(
        SIM, inst, crossed, factory, e1, e2, rounds=5, coin=coin
    )
    assert premise and conclusion


def test_indistinguishable_runs_reflexive():
    inst = one_cycle_instance(8)
    run = SIM.run(inst, ConstantAlgorithm, 3)
    assert indistinguishable_runs(SIM, run, run)


def test_premise_checker():
    inst = one_cycle_instance(10)
    run = SIM.run(inst, BroadcastIdBits, 3)
    # vertices 0 and 4 differ in bit 2 (value 0 vs 1): premise fails at t=3
    assert not lemma_3_4_premise_holds(run, (0, 1), (4, 5))
    # at t=2 their low bits agree only if IDs match there; ids are 0..9
    # v0=0b00, v4=0b100 -> low 2 bits match
    assert lemma_3_4_premise_holds(run, (0, 1), (4, 5), rounds=2)


@given(
    n=st.integers(min_value=8, max_value=14),
    rounds=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_property_premise_implies_indistinguishable(n, rounds, seed):
    """Lemma 3.4 as a property: random independent pair, coin-driven
    symmetric algorithm, arbitrary (shuffled) KT-0 port numbering."""
    rng = random.Random(seed)
    inst = one_cycle_instance(n, rng=rng)
    # pick a random independent consistently-oriented pair on the canonical cycle
    i = rng.randrange(n)
    j = (i + rng.randrange(3, n - 2)) % n
    # ensure distance >= 3 both ways
    d = (j - i) % n
    if d < 3 or n - d < 3:
        return
    e1 = (i, (i + 1) % n)
    e2 = (j, (j + 1) % n)
    crossed = cross(inst, e1, e2)

    def factory():
        return FunctionalAlgorithm(
            broadcast=lambda self, t: str(self.knowledge.coin.bit(f"b{t}")),
            receive=lambda self, t, m: None,
            output=lambda self: YES,
        )

    premise, conclusion = check_lemma_3_4(
        SIM, inst, crossed, factory, e1, e2, rounds, coin=PublicCoin(f"s{seed}")
    )
    assert premise
    assert conclusion
