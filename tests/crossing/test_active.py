"""Tests for active edges and edge labels (the Theorem 3.5 bookkeeping)."""

import pytest

from repro.core import (
    BCC1_KT0,
    ConstantAlgorithm,
    NodeAlgorithm,
    SilentAlgorithm,
    Simulator,
    YES,
)
from repro.crossing import (
    active_edges,
    directed_input_edges,
    edge_label,
    edge_labels,
    label_classes,
    largest_active_pair,
    largest_label_class,
)
from repro.instances import one_cycle_instance

SIM = Simulator(BCC1_KT0)


class _IdBits(NodeAlgorithm):
    def broadcast(self, t):
        return str((self.knowledge.vertex_id >> (t - 1)) & 1)

    def receive(self, t, m):
        pass

    def output(self):
        return YES


class TestDirectedEdges:
    def test_both_orientations(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, SilentAlgorithm, 1)
        edges = directed_input_edges(run)
        assert len(edges) == 12
        assert (0, 1) in edges and (1, 0) in edges


class TestLabels:
    def test_silent_label(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, SilentAlgorithm, 3)
        assert edge_label(run, (0, 1)) == "⊥⊥⊥⊥⊥⊥"

    def test_constant_label(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, ConstantAlgorithm, 2)
        assert edge_label(run, (2, 3)) == "1111"

    def test_id_bits_label(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, _IdBits, 2)
        # head 2 = 0b10 -> bits (0, 1); tail 3 = 0b11 -> bits (1, 1)
        assert edge_label(run, (2, 3)) == "0111"

    def test_label_count(self):
        inst = one_cycle_instance(7)
        run = SIM.run(inst, _IdBits, 2)
        labels = edge_labels(run)
        assert len(labels) == 14

    def test_label_classes_partition(self):
        inst = one_cycle_instance(8)
        run = SIM.run(inst, _IdBits, 1)
        classes = label_classes(run)
        total = sum(len(v) for v in classes.values())
        assert total == 16
        # with one round of ID-low-bit, labels come from {0,1}^2
        assert set(classes) <= {"00", "01", "10", "11"}

    def test_largest_label_class_on_symmetric(self):
        inst = one_cycle_instance(9)
        run = SIM.run(inst, SilentAlgorithm, 2)
        label, edges = largest_label_class(run)
        assert label == "⊥⊥⊥⊥"
        assert len(edges) == 18  # everything


class TestActiveEdges:
    def test_all_active_for_symmetric(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, ConstantAlgorithm, 2)
        act = active_edges(run, ("1", "1"), ("1", "1"))
        assert len(act) == 12

    def test_none_active_for_wrong_strings(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, ConstantAlgorithm, 2)
        assert active_edges(run, ("0", "0"), ("0", "0")) == []

    def test_directional_activity(self):
        inst = one_cycle_instance(6)
        run = SIM.run(inst, _IdBits, 1)
        # x = ('0',), y = ('1',): heads with even ID, tails with odd ID
        act = active_edges(run, ("0",), ("1",))
        for head, tail in act:
            assert head % 2 == 0 and tail % 2 == 1

    def test_largest_active_pair_consistency(self):
        inst = one_cycle_instance(8)
        run = SIM.run(inst, _IdBits, 2)
        x, y, edges = largest_active_pair(run)
        assert edges == active_edges(run, x, y)
        assert len(edges) >= 1
        # no other pair is strictly larger
        for e in directed_input_edges(run):
            pass  # structural check above suffices
