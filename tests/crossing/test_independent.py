"""Tests for Definition 3.2 (independent edges).

Orientation subtleties on a cycle (all verified here):

* consistently oriented edges (both "clockwise") are independent iff their
  circular distance is >= 3 in both directions -- and crossing such a pair
  splits the cycle in two;
* oppositely oriented edges are independent already at distance >= 2 --
  crossing such a pair *reverses* a segment and keeps a single cycle.

Both kinds are legitimate crossings under Definition 3.3; only the first
kind produces TwoCycle NO-instances, which is why the indistinguishability
graph builder filters by component count.
"""

from repro.crossing import (
    are_independent,
    cross,
    independent_edge_set_on_cycle,
    independent_pairs,
)
from repro.instances import one_cycle_instance


class TestAreIndependent:
    def test_consistent_distance_three(self):
        inst = one_cycle_instance(9)
        assert are_independent(inst, (0, 1), (3, 4))

    def test_shared_vertex_not_independent(self):
        inst = one_cycle_instance(9)
        assert not are_independent(inst, (0, 1), (1, 2))

    def test_consistent_distance_two_not_independent(self):
        # crossing (0,1) and (2,3) would need {1,2} absent, but it's an edge
        inst = one_cycle_instance(9)
        assert not are_independent(inst, (0, 1), (2, 3))

    def test_reversed_distance_two_is_independent(self):
        # (0,1) with (3,2): new edges {0,2} and {1,3} are both absent
        inst = one_cycle_instance(9)
        assert are_independent(inst, (0, 1), (3, 2))

    def test_reversed_crossing_preserves_one_cycle(self):
        inst = one_cycle_instance(9)
        crossed = cross(inst, (0, 1), (3, 2))
        assert crossed.input_graph().is_connected()

    def test_consistent_crossing_disconnects(self):
        inst = one_cycle_instance(9)
        crossed = cross(inst, (0, 1), (3, 4))
        assert not crossed.input_graph().is_connected()

    def test_non_input_edges_rejected(self):
        inst = one_cycle_instance(9)
        assert not are_independent(inst, (0, 2), (4, 5))


class TestIndependentPairs:
    @staticmethod
    def _expected_count(n):
        """Directed independent pairs on the canonical n-cycle.

        Per unordered pair of undirected edges at circular distance d:
        2 reversed variants are independent at d >= 2, plus 2 consistent
        variants at d >= 3. There are n unordered pairs at each distance
        d < n/2 and n/2 at d = n/2.
        """
        total = 0
        for d in range(2, n // 2 + 1):
            pairs = n if 2 * d != n else n // 2
            variants = 2 if d == 2 else 4
            total += pairs * variants
        return total

    def test_count_on_cycles(self):
        for n in (6, 7, 8, 9):
            inst = one_cycle_instance(n)
            pairs = list(independent_pairs(inst))
            assert len(pairs) == self._expected_count(n), n
            for e1, e2 in pairs:
                assert are_independent(inst, e1, e2)

    def test_every_pair_crossable(self):
        inst = one_cycle_instance(8)
        for e1, e2 in independent_pairs(inst):
            crossed = cross(inst, e1, e2)
            assert crossed.input_graph().is_regular(2)

    def test_tiny_cycle_has_no_disconnecting_pairs(self):
        # n = 5: reversed pairs exist (segment reversal), but no crossing
        # can split into two cycles of length >= 3
        inst = one_cycle_instance(5)
        for e1, e2 in independent_pairs(inst):
            assert cross(inst, e1, e2).input_graph().is_connected()


class TestIndependentEdgeSet:
    def test_floor_n_over_3(self):
        for n in (9, 10, 11, 12, 13):
            inst = one_cycle_instance(n)
            edges = independent_edge_set_on_cycle(n)
            assert len(edges) == n // 3
            for i, e1 in enumerate(edges):
                for e2 in edges[i + 1 :]:
                    assert are_independent(inst, e1, e2), (n, e1, e2)

    def test_all_crossings_in_set_disconnect(self):
        n = 12
        inst = one_cycle_instance(n)
        edges = independent_edge_set_on_cycle(n)
        for i, e1 in enumerate(edges):
            for e2 in edges[i + 1 :]:
                assert not cross(inst, e1, e2).input_graph().is_connected()

    def test_rejects_tight_spacing(self):
        try:
            independent_edge_set_on_cycle(9, spacing=2)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")
