"""Tests for the Theorem 4.5 engine (PartitionComp information bound)."""

import math

import pytest

from repro.information import (
    evaluate_protocol,
    hard_distribution,
    implied_round_lower_bound,
    information_lower_bound,
)
from repro.partitions import bell_number, log2_bell
from repro.twoparty import LossyPartitionCompProtocol, TrivialPartitionCompProtocol


class TestHardDistribution:
    def test_uniform_over_bell(self):
        dist = hard_distribution(4)
        assert len(dist) == bell_number(4)
        assert all(p == pytest.approx(1 / bell_number(4)) for p in dist.values())


class TestErrorFreeProtocol:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_information_equals_input_entropy(self, n):
        """For a correct protocol on the hard distribution, the transcript
        determines P_A, so I(P_A; Pi) = H(P_A) = log2 B_n exactly."""
        report = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
        assert report.error_rate == 0.0
        assert report.information == pytest.approx(log2_bell(n), abs=1e-9)
        assert report.residual_entropy == pytest.approx(0.0, abs=1e-9)

    def test_chain_of_inequalities(self):
        report = evaluate_protocol(TrivialPartitionCompProtocol(5), 5)
        assert report.chain_holds()
        assert report.max_transcript_bits >= report.information

    def test_transcript_bits_dominate_entropy(self):
        report = evaluate_protocol(TrivialPartitionCompProtocol(4), 4)
        assert report.max_transcript_bits >= report.transcript_entropy


class TestLossyProtocol:
    def test_information_respects_eps_bound(self):
        """Theorem 4.5's robustness: even with error eps, the protocol
        carries at least (1 - eps) H(P_A) bits about P_A."""
        n = 5
        report = evaluate_protocol(LossyPartitionCompProtocol(n, 0.25), n)
        assert report.error_rate > 0
        assert report.information >= information_lower_bound(n, report.error_rate) - 1e-9

    def test_more_error_less_information(self):
        n = 5
        low = evaluate_protocol(LossyPartitionCompProtocol(n, 0.1), n)
        high = evaluate_protocol(LossyPartitionCompProtocol(n, 0.6), n)
        assert high.information < low.information


class TestRoundBoundArithmetic:
    def test_information_lower_bound_values(self):
        assert information_lower_bound(5, 0.0) == pytest.approx(math.log2(52))
        assert information_lower_bound(5, 0.5) == pytest.approx(0.5 * math.log2(52))

    def test_implied_round_bound(self):
        # I bits over 8n-bit rounds
        assert implied_round_lower_bound(10, 160.0) == pytest.approx(2.0)

    def test_omega_log_shape(self):
        """The implied bound grows like log n (the Theorem 4.5 statement)."""
        from repro.analysis import fit_logarithmic

        ns = [8, 16, 32, 64, 128]
        bounds = [
            implied_round_lower_bound(n, information_lower_bound(n, 1 / 3))
            for n in ns
        ]
        fit = fit_logarithmic(ns, bounds)
        assert fit.slope > 0
        assert fit.r_squared > 0.98
