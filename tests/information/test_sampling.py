"""Tests for sampled mutual-information estimation."""

import math
import random

import pytest

from repro.information import (
    estimate_protocol_information,
    evaluate_protocol,
)
from repro.partitions import bell_number, log2_bell
from repro.twoparty import LossyPartitionCompProtocol, TrivialPartitionCompProtocol


class TestSampledEstimation:
    def test_converges_to_exact_small_n(self):
        """At n = 4 (B_4 = 15) a few thousand samples pin the exact value."""
        n = 4
        exact = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
        rng = random.Random(1)
        report = estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples=4000, rng=rng
        )
        assert report.information_estimate == pytest.approx(exact.information, abs=0.1)
        assert report.distinct_inputs_seen == bell_number(n)
        assert report.error_rate_estimate == 0.0
        assert not report.saturated

    def test_larger_n_than_exact_enumeration(self):
        """n = 9 (B_9 = 21147): enumeration-free estimation still tracks
        the Theta(n log n) input entropy from below."""
        n = 9
        rng = random.Random(2)
        report = estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples=3000, rng=rng
        )
        assert report.true_input_entropy == pytest.approx(math.log2(21147))
        # the plug-in estimate is capped near log2(samples): saturation flag
        assert report.saturated
        assert report.information_estimate <= math.log2(3000) + 0.1
        assert report.information_estimate > 8.0  # still large

    def test_lossy_protocol_error_estimated(self):
        n = 5
        rng = random.Random(3)
        report = estimate_protocol_information(
            LossyPartitionCompProtocol(n, 0.4), n, samples=2500, rng=rng
        )
        assert 0.2 < report.error_rate_estimate < 0.6
        exact = evaluate_protocol(LossyPartitionCompProtocol(n, 0.4), n)
        assert report.information_estimate == pytest.approx(exact.information, abs=0.2)

    def test_correction_is_small_and_nonnegative_regime(self):
        n = 4
        rng = random.Random(4)
        report = estimate_protocol_information(
            TrivialPartitionCompProtocol(n), n, samples=3000, rng=rng
        )
        assert abs(report.miller_madow_correction) < 0.05
        assert report.corrected_information >= 0

    def test_minimum_samples(self):
        with pytest.raises(ValueError):
            estimate_protocol_information(
                TrivialPartitionCompProtocol(3), 3, samples=1, rng=random.Random(0)
            )
