"""Unit and property tests for the entropy toolkit."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.information import (
    binary_entropy,
    conditional_entropy,
    empirical_joint,
    entropy,
    joint_entropy,
    joint_from_function,
    marginal_x,
    marginal_y,
    mutual_information,
    uniform_distribution,
    validate_distribution,
)


@st.composite
def joints(draw):
    nx = draw(st.integers(1, 5))
    ny = draw(st.integers(1, 5))
    weights = [
        [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(ny)]
        for _ in range(nx)
    ]
    total = sum(sum(row) for row in weights)
    if total == 0:
        weights[0][0] = 1.0
        total = 1.0
    return {
        (x, y): weights[x][y] / total
        for x in range(nx)
        for y in range(ny)
        if weights[x][y] > 0
    }


class TestEntropy:
    def test_uniform(self):
        assert entropy(uniform_distribution(range(8))) == pytest.approx(3.0)

    def test_point_mass(self):
        assert entropy({"x": 1.0}) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            validate_distribution({"a": 0.5, "b": 0.6})
        with pytest.raises(ValueError):
            validate_distribution({"a": -0.1, "b": 1.1})

    def test_binary_entropy(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.0) == binary_entropy(1.0) == 0.0
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    def test_uniform_distribution_empty(self):
        with pytest.raises(ValueError):
            uniform_distribution([])


class TestJointQuantities:
    def test_independent_variables(self):
        joint = {
            (x, y): 0.25 for x in range(2) for y in range(2)
        }
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)
        assert conditional_entropy(joint) == pytest.approx(1.0)

    def test_fully_dependent(self):
        joint = {(0, 0): 0.5, (1, 1): 0.5}
        assert mutual_information(joint) == pytest.approx(1.0)
        assert conditional_entropy(joint) == pytest.approx(0.0, abs=1e-12)

    def test_marginals(self):
        joint = {(0, "a"): 0.2, (0, "b"): 0.3, (1, "a"): 0.5}
        assert marginal_x(joint) == pytest.approx({0: 0.5, 1: 0.5})
        assert marginal_y(joint) == pytest.approx({"a": 0.7, "b": 0.3})

    def test_joint_from_function_deterministic(self):
        x_dist = uniform_distribution(range(4))
        joint = joint_from_function(x_dist, lambda x: x % 2)
        # Y determined by X: H(Y|X) = 0, so I = H(Y) = 1 bit
        assert mutual_information(joint) == pytest.approx(1.0)

    def test_empirical_joint(self):
        samples = [(0, "a")] * 3 + [(1, "b")] * 1
        joint = empirical_joint(samples)
        assert joint[(0, "a")] == pytest.approx(0.75)

    def test_empirical_joint_empty(self):
        with pytest.raises(ValueError):
            empirical_joint([])


class TestInformationInequalities:
    @given(joints())
    @settings(max_examples=100, deadline=None)
    def test_nonnegativity(self, joint):
        assert mutual_information(joint) >= 0
        assert entropy(marginal_x(joint)) >= -1e-12
        assert joint_entropy(joint) >= -1e-12

    @given(joints())
    @settings(max_examples=100, deadline=None)
    def test_conditioning_reduces_entropy(self, joint):
        # H(X|Y) <= H(X)
        hx = entropy(marginal_x(joint))
        assert conditional_entropy(joint) <= hx + 1e-9

    @given(joints())
    @settings(max_examples=100, deadline=None)
    def test_chain_rule(self, joint):
        # H(X, Y) = H(Y) + H(X|Y)
        assert joint_entropy(joint) == pytest.approx(
            entropy(marginal_y(joint)) + conditional_entropy(joint), abs=1e-9
        )

    @given(joints())
    @settings(max_examples=100, deadline=None)
    def test_information_symmetric_bound(self, joint):
        # I(X;Y) <= min(H(X), H(Y))
        i = mutual_information(joint)
        assert i <= entropy(marginal_x(joint)) + 1e-9
        assert i <= entropy(marginal_y(joint)) + 1e-9
