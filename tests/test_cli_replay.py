"""CLI tests for record / replay / rewind / report --session."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def recorded_run(tmp_path):
    path = str(tmp_path / "run.jsonl")
    code = main(
        [
            "record", "run",
            "--session", path,
            "--algorithm", "flooding",
            "--n", "7",
            "--bit-flip-rate", "0.05",
            "--fault-seed", "7",
            "--max-delay", "1",
            "--duplicate-rate", "0.1",
            "--reorder",
            "--net-seed", "11",
        ]
    )
    assert code == 0
    return path


def _tamper_step(path, step, field="broadcasts", value="999"):
    lines = open(path).read().splitlines()
    for index, line in enumerate(lines):
        event = json.loads(line)
        if event.get("event") == "step" and event.get("step") == step:
            event[field][0] = value
            lines[index] = json.dumps(event)
            break
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


class TestRecord:
    def test_record_emits_summary(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        code = main(
            ["record", "run", "--session", path, "--algorithm", "flooding", "--n", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded session" in out and "decision=" in out

    def test_record_batch_kind(self, tmp_path, capsys):
        path = str(tmp_path / "ranks.jsonl")
        assert main(["record", "ranks", "--session", path, "--ns", "3", "4"]) == 0

    def test_record_bad_algorithm_is_user_error(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        code = main(
            ["record", "run", "--session", path, "--algorithm", "nope", "--n", "6"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_crash_at_schedule(self, tmp_path, capsys):
        path = str(tmp_path / "crash.jsonl")
        code = main(
            [
                "record", "run",
                "--session", path,
                "--algorithm", "flooding",
                "--n", "6",
                "--crash-at", "2:1",
            ]
        )
        assert code == 0
        header = next(
            json.loads(line)
            for line in open(path)
            if '"session_start"' in line
        )
        assert header["params"]["faults"]["scheduled"][0]["vertex"] == 2

    def test_malformed_crash_at_rejected(self, tmp_path, capsys):
        code = main(
            [
                "record", "run",
                "--session", str(tmp_path / "x.jsonl"),
                "--algorithm", "flooding",
                "--n", "6",
                "--crash-at", "nonsense",
            ]
        )
        assert code == 2


class TestReplay:
    def test_clean_replay_exits_zero(self, recorded_run, capsys):
        assert main(["replay", recorded_run]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_verify_prints_full_report(self, recorded_run, capsys):
        assert main(["replay", recorded_run, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "steps:" in out and "result: compared" in out

    def test_tampered_log_exits_four(self, recorded_run, capsys):
        _tamper_step(recorded_run, step=2)
        assert main(["replay", recorded_run, "--verify"]) == 4
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "step 2" in out

    def test_json_divergence_report(self, recorded_run, capsys):
        _tamper_step(recorded_run, step=1)
        assert main(["replay", recorded_run, "--json"]) == 4
        data = json.loads(capsys.readouterr().out)
        assert data["matched"] is False
        assert data["divergence"]["location"] == "step 1"

    def test_unreadable_session_is_user_error(self, capsys):
        assert main(["replay", "/nonexistent/session.jsonl"]) == 2


class TestRewind:
    def test_rewind_walk(self, recorded_run, capsys):
        assert main(["rewind", recorded_run, "--to", "2", "--walk", "3"]) == 0
        out = capsys.readouterr().out
        assert "from step 2" in out

    def test_branch_future_only_override(self, recorded_run, tmp_path, capsys):
        out_path = str(tmp_path / "branch.jsonl")
        code = main(
            [
                "rewind", recorded_run,
                "--to", "3",
                "--branch",
                '{"faults": {"seed": 7, "bit_flip_rate": 0.05, "last_round": 3}}',
                "--out", out_path,
            ]
        )
        assert code == 0
        assert "branch OK" in capsys.readouterr().out
        assert main(["replay", out_path]) == 0  # a branch is itself replayable

    def test_branch_changing_past_exits_four(self, recorded_run, capsys):
        code = main(
            [
                "rewind", recorded_run,
                "--to", "3",
                "--branch", '{"faults": {"seed": 99, "bit_flip_rate": 0.5}}',
            ]
        )
        assert code == 4
        assert "divergence:" in capsys.readouterr().err

    def test_rewind_past_end_is_user_error(self, recorded_run, capsys):
        assert main(["rewind", recorded_run, "--to", "999"]) == 2


class TestSessionReport:
    def test_report_session_summary(self, recorded_run, capsys):
        assert main(["report", "--session", recorded_run]) == 0
        out = capsys.readouterr().out
        assert "session report" in out
        assert "per-edge delivery anomalies" in out
        assert "cost parity: OK" in out

    def test_report_detects_cost_tampering(self, recorded_run, capsys):
        _tamper_step(recorded_run, step=0)
        assert main(["report", "--session", recorded_run]) == 1
        assert "cost parity: MISMATCH" in capsys.readouterr().err

    def test_list_mentions_new_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "record" in out and "replay" in out and "rewind" in out
