"""Tests for the spanning-tree proof-labeling scheme."""

import random

import pytest

from repro.core import BCCInstance
from repro.algorithms import encode_fixed, id_bit_width
from repro.graphs import gnp_random_graph, one_cycle, path_graph, random_forest, two_cycles
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.pls import SpanningTreePLS


def _kt1(graph):
    return BCCInstance.kt1_from_graph(graph)


class TestCompleteness:
    @pytest.mark.parametrize(
        "graph_builder",
        [lambda: one_cycle(9), lambda: path_graph(7), lambda: random_forest(10, 1, random.Random(1))],
    )
    def test_honest_prover_accepted(self, graph_builder):
        inst = _kt1(graph_builder())
        assert SpanningTreePLS().completeness_holds(inst)

    def test_works_on_kt0_instances_too(self):
        # the scheme only reads IDs and neighbor IDs, both defined for any
        # instance object; run() supplies them from the instance directly
        inst = one_cycle_instance(8, kt=0)
        scheme = SpanningTreePLS()
        assert scheme.run(inst, scheme.prove(inst)).accepted

    def test_prover_rejects_disconnected(self):
        inst = _kt1(two_cycles(8, 4))
        with pytest.raises(ValueError):
            SpanningTreePLS().prove(inst)

    def test_verification_complexity(self):
        inst = _kt1(one_cycle(9))
        scheme = SpanningTreePLS()
        labels = scheme.prove(inst)
        result = scheme.run(inst, labels)
        assert result.verification_bits == scheme.verification_complexity(inst) == 3 * id_bit_width(8)


class TestSoundness:
    def test_empty_labels_rejected(self):
        inst = _kt1(two_cycles(8, 4))
        scheme = SpanningTreePLS()
        assert scheme.soundness_holds(inst, {v: "" for v in range(8)})

    def test_forged_bfs_labels_rejected(self):
        """Labels copied from a *connected* graph's BFS tree still fail on
        the disconnected instance: the parent edges don't exist."""
        scheme = SpanningTreePLS()
        connected = _kt1(one_cycle(8))
        forged = scheme.prove(connected)
        disconnected = _kt1(two_cycles(8, 4))
        assert scheme.soundness_holds(disconnected, forged)

    def test_random_forgeries_rejected(self):
        rng = random.Random(5)
        scheme = SpanningTreePLS()
        inst = _kt1(two_cycles(10, 4))
        width = id_bit_width(9)
        for _ in range(25):
            labels = {
                v: encode_fixed(rng.randrange(10), width)
                + encode_fixed(rng.randrange(10), width)
                + encode_fixed(rng.randrange(10), width)
                for v in range(10)
            }
            assert scheme.soundness_holds(inst, labels)

    def test_soundness_defined_only_on_no_instances(self):
        scheme = SpanningTreePLS()
        with pytest.raises(ValueError):
            scheme.soundness_holds(_kt1(one_cycle(6)), {})

    def test_wrong_root_agreement_rejected(self):
        """Two halves claiming different roots: rejected by the global
        root-agreement check (every label is broadcast)."""
        scheme = SpanningTreePLS()
        inst = _kt1(two_cycles(8, 4))
        width = id_bit_width(7)
        labels = {}
        for v in range(8):
            root = 0 if v < 4 else 4
            dist = v % 4
            parent = v - 1 if v % 4 else root
            labels[v] = (
                encode_fixed(root, width)
                + encode_fixed(dist, width)
                + encode_fixed(parent, width)
            )
        assert scheme.soundness_holds(inst, labels)

    def test_distance_cheating_rejected(self):
        """All vertices claim the same root with plausible distances --
        the component without the root still cannot justify its chains."""
        scheme = SpanningTreePLS()
        inst = _kt1(two_cycles(8, 4))
        width = id_bit_width(7)
        labels = {}
        for v in range(8):
            if v < 4:
                dist, parent = (0 if v == 0 else 1, 0 if v != 0 else 0)
                if v in (2, 3):
                    dist, parent = 1, 0
            else:
                dist, parent = v - 3, v - 1 if v > 4 else 4
            labels[v] = (
                encode_fixed(0, width)
                + encode_fixed(dist, width)
                + encode_fixed(parent, width)
            )
        assert scheme.soundness_holds(inst, labels)


class TestSoundnessSweep:
    def test_connected_random_graphs_accept_disconnected_reject(self):
        rng = random.Random(11)
        scheme = SpanningTreePLS()
        for _ in range(6):
            g = gnp_random_graph(9, 0.4, rng)
            inst = _kt1(g)
            if g.is_connected():
                assert scheme.completeness_holds(inst)
            else:
                # forge with the labels of some connected graph
                donor = _kt1(one_cycle(9))
                assert scheme.soundness_holds(inst, scheme.prove(donor))
