"""Tests for the transcript proof-labeling scheme (Section 1.3 bridge)."""

import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, PublicCoin, Simulator
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.pls import TranscriptPLS


def _scheme(kt=0, n=10):
    sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
    width = id_bit_width(4 * n - 1) if kt == 0 else id_bit_width(n - 1)
    rounds = neighbor_exchange_rounds(kt, 2, width)
    factory = connectivity_factory(2, id_bits=width if kt == 0 else None)
    return TranscriptPLS(sim, factory, rounds), rounds


class TestCompleteness:
    @pytest.mark.parametrize("kt", [0, 1])
    def test_honest_labels_accepted(self, kt):
        scheme, _rounds = _scheme(kt=kt)
        inst = one_cycle_instance(10, kt=kt)
        assert scheme.completeness_holds(inst)

    def test_verification_complexity_is_2t(self):
        scheme, rounds = _scheme(kt=0)
        inst = one_cycle_instance(10, kt=0)
        result = scheme.run(inst, scheme.prove(inst))
        assert result.verification_bits == scheme.verification_complexity() == 2 * rounds

    def test_shuffled_kt0_ports(self):
        sim = Simulator(BCC1_KT0)
        n = 8
        width = id_bit_width(4 * n - 1)
        rounds = neighbor_exchange_rounds(0, 2, width)
        scheme = TranscriptPLS(sim, connectivity_factory(2), rounds)
        inst = one_cycle_instance(n, kt=0, rng=random.Random(3))
        assert scheme.completeness_holds(inst)


class TestSoundness:
    @pytest.mark.parametrize("kt", [0, 1])
    def test_honest_transcripts_of_no_instance_reject(self, kt):
        """Even the *true* transcripts of the algorithm on the disconnected
        instance must be rejected: the algorithm outputs NO somewhere."""
        scheme, _r = _scheme(kt=kt)
        inst = two_cycle_instance(10, 4, kt=kt)
        honest_but_no = scheme.prove(inst)
        assert scheme.soundness_holds(inst, honest_but_no)

    def test_forged_transcripts_reject(self):
        """Transcripts stolen from a connected instance fail the local
        replay checks on the disconnected one."""
        scheme, _r = _scheme(kt=0)
        donor = one_cycle_instance(10, kt=0)
        forged = scheme.prove(donor)
        inst = two_cycle_instance(10, 4, kt=0)
        assert scheme.soundness_holds(inst, forged)

    def test_random_forgeries_reject(self):
        scheme, rounds = _scheme(kt=0)
        inst = two_cycle_instance(10, 4, kt=0)
        rng = random.Random(9)
        from repro.algorithms import pack_symbols

        for _ in range(10):
            labels = {
                v: pack_symbols(
                    [rng.choice(["", "0", "1"]) for _ in range(rounds)]
                )
                for v in range(10)
            }
            assert scheme.soundness_holds(inst, labels)

    def test_malformed_labels_reject(self):
        scheme, _r = _scheme(kt=0)
        inst = two_cycle_instance(10, 4, kt=0)
        assert scheme.soundness_holds(inst, {v: "01" for v in range(10)})


class TestLowerBoundBridge:
    def test_verification_bits_track_rounds(self):
        """The Section 1.3 inequality, executable: a t-round algorithm
        yields a 2t-bit PLS, so PLS-verification >= Omega(log n) forces
        t >= Omega(log n). Here: the scheme built from the real Theta(log n)
        algorithm has Theta(log n)-bit labels, matching the [PP17] tight
        bound for the broadcast model."""
        import math

        for n in (8, 16, 32):
            scheme, rounds = _scheme(kt=1, n=n)
            assert scheme.verification_complexity() == 2 * rounds
            assert scheme.verification_complexity() >= math.log2(n)
