"""Tests for the randomized (fingerprint) spanning-tree scheme (BFP15)."""

import random

import pytest

from repro.core import BCCInstance, PublicCoin
from repro.algorithms import encode_fixed, id_bit_width
from repro.graphs import one_cycle, path_graph, two_cycles
from repro.pls import RandomizedSpanningTreePLS, SpanningTreePLS

SEEDS = [f"seed-{i}" for i in range(40)]


def _kt1(graph):
    return BCCInstance.kt1_from_graph(graph)


class TestCompleteness:
    @pytest.mark.parametrize("builder", [lambda: one_cycle(10), lambda: path_graph(8)])
    def test_honest_labels_always_accepted(self, builder):
        scheme = RandomizedSpanningTreePLS()
        inst = _kt1(builder())
        labels = scheme.prove(inst)
        for seed in SEEDS[:10]:
            assert scheme.run(inst, labels, PublicCoin(seed)).accepted

    def test_completeness_helper(self):
        scheme = RandomizedSpanningTreePLS()
        assert scheme.completeness_holds(_kt1(one_cycle(8)))


class TestOneSidedSoundness:
    def test_forged_bfs_rejected_whp(self):
        scheme = RandomizedSpanningTreePLS()
        donor = _kt1(one_cycle(10))
        forged = scheme.prove(donor)
        inst = _kt1(two_cycles(10, 4))
        rate = scheme.soundness_rejection_rate(inst, forged, SEEDS)
        assert rate == 1.0  # structural checks fail regardless of the coin

    def test_distance_cheat_rejected_whp(self):
        """A labelling wrong only in a *value* (not structure) is caught by
        the fingerprint comparison for almost every coin."""
        scheme = RandomizedSpanningTreePLS(field_bits=16)
        inst = _kt1(two_cycles(8, 4))
        width = id_bit_width(7)
        labels = {}
        for v in range(8):
            # all claim root 0 with a fake consistent-looking distance chain;
            # the second component has no path to 0
            dist = v if v < 4 else v - 4 + 1
            parent = 0 if v in (0, 1, 4) else v - 1
            if v == 4:
                parent = 5  # a genuine neighbor in its own cycle
                dist = 2
            labels[v] = (
                encode_fixed(0, width)
                + encode_fixed(dist, width)
                + encode_fixed(parent if v != 0 else 0, width)
            )
        rate = scheme.soundness_rejection_rate(inst, labels, SEEDS)
        assert rate > 0.9

    def test_rejection_matches_deterministic_scheme(self):
        """Whatever the deterministic verifier rejects structurally, the
        randomized one rejects too (fingerprints only relax value reads)."""
        rng = random.Random(4)
        det = SpanningTreePLS()
        rand = RandomizedSpanningTreePLS()
        inst = _kt1(two_cycles(10, 5))
        width = id_bit_width(9)
        for _ in range(10):
            labels = {
                v: encode_fixed(rng.randrange(10), width)
                + encode_fixed(rng.randrange(10), width)
                + encode_fixed(rng.randrange(10), width)
                for v in range(10)
            }
            assert not det.run(inst, labels).accepted
            rate = rand.soundness_rejection_rate(inst, labels, SEEDS[:10])
            assert rate > 0.8


class TestCompression:
    def test_fingerprint_smaller_than_labels_for_large_ids(self):
        """With wide IDs, the broadcast fingerprint (≈ 2 log n bits) beats
        the 3W-bit full label."""
        n = 12
        ids = [i * 1000 for i in range(n)]  # W = 14 bits -> labels 42 bits
        inst = BCCInstance.kt1_from_graph(one_cycle(n), ids=ids)
        det = SpanningTreePLS()
        rand = RandomizedSpanningTreePLS(field_bits=16)
        det_bits = det.verification_complexity(inst)
        rand_bits = rand.verification_bits(inst)
        assert rand_bits < det_bits

    def test_field_too_small_rejected(self):
        with pytest.raises(ValueError):
            RandomizedSpanningTreePLS(field_bits=2)

    def test_malformed_labels_rejected(self):
        scheme = RandomizedSpanningTreePLS()
        inst = _kt1(two_cycles(8, 4))
        assert scheme.soundness_rejection_rate(inst, {v: "01" for v in range(8)}, SEEDS[:5]) == 1.0
