"""Framework-level tests for the PLS scheme base class."""

import pytest

from repro.core import BCCInstance
from repro.graphs import one_cycle, two_cycles
from repro.pls import ProofLabelingScheme, SpanningTreePLS, VertexView


class AcceptAll(ProofLabelingScheme):
    """A degenerate scheme used to exercise the driver."""

    def predicate(self, instance):
        return instance.input_graph().is_connected()

    def prove(self, instance):
        return {v: "" for v in range(instance.n)}

    def verify_at(self, view):
        return True


class RejectVertexZero(ProofLabelingScheme):
    def predicate(self, instance):
        return True

    def prove(self, instance):
        return {v: "1" for v in range(instance.n)}

    def verify_at(self, view):
        return view.vertex_id != 0


class TestDriver:
    def test_run_reports_rejectors(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(5))
        scheme = RejectVertexZero()
        result = scheme.run(inst, scheme.prove(inst))
        assert not result.accepted
        assert result.rejecting_vertices == [0]

    def test_verification_bits_is_longest_label(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(4))
        result = AcceptAll().run(inst, {0: "101", 1: "", 2: "1", 3: ""})
        assert result.verification_bits == 3

    def test_missing_labels_become_empty(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(4))
        result = AcceptAll().run(inst, {})
        assert result.accepted  # AcceptAll does not look at labels
        assert result.verification_bits == 0

    def test_completeness_guard(self):
        inst = BCCInstance.kt1_from_graph(two_cycles(8, 4))
        with pytest.raises(ValueError):
            AcceptAll().completeness_holds(inst)

    def test_soundness_guard(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(6))
        with pytest.raises(ValueError):
            AcceptAll().soundness_holds(inst, {})

    def test_bool_of_result(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(4))
        assert bool(AcceptAll().run(inst, {}))


class TestVertexView:
    def test_view_contents(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(5), ids=[10, 11, 12, 13, 14])
        captured = {}

        class Capture(ProofLabelingScheme):
            def predicate(self, instance):
                return True

            def prove(self, instance):
                return {v: "x" and "1" for v in range(instance.n)}

            def verify_at(self, view):
                captured[view.vertex_id] = view
                return True

        Capture().run(inst, {v: "1" for v in range(5)})
        view = captured[12]
        assert isinstance(view, VertexView)
        assert view.all_ids == (10, 11, 12, 13, 14)
        assert view.neighbor_ids == (11, 13)
        assert view.own_label == "1"
        assert view.labels_by_id[10] == "1"

    def test_spanning_tree_uses_views_only(self):
        """The deterministic scheme's verifier is a pure function of the
        view: the same labels on equal-view instances verify identically."""
        scheme = SpanningTreePLS()
        inst = BCCInstance.kt1_from_graph(one_cycle(6))
        labels = scheme.prove(inst)
        r1 = scheme.run(inst, labels)
        r2 = scheme.run(inst, dict(labels))
        assert r1.accepted == r2.accepted == True  # noqa: E712
