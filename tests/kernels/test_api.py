"""The kernel-mode vocabulary shared by every consumer."""

import pytest

from repro.kernels import KERNEL_MODES, resolve_kernel


class TestResolveKernel:
    def test_modes(self):
        assert KERNEL_MODES == (
            "auto",
            "packed",
            "four-russians",
            "sparse",
            "reference",
        )

    def test_auto_prefers_packed(self):
        assert resolve_kernel("auto") == "packed"

    def test_packed(self):
        assert resolve_kernel("packed") == "packed"

    def test_rank_modes_resolve_to_packed_family(self):
        # four-russians / sparse change only which *rank* engine runs;
        # every family consumer (matching, graph build) sees "packed"
        assert resolve_kernel("four-russians") == "packed"
        assert resolve_kernel("sparse") == "packed"

    def test_reference(self):
        assert resolve_kernel("reference") == "reference"

    @pytest.mark.parametrize("bad", ["", "fast", "numpy", "AUTO", None])
    def test_unknown_raises(self, bad):
        with pytest.raises(ValueError):
            resolve_kernel(bad)
