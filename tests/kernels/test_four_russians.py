"""Four-Russians GF(2) elimination == packed == reference, everywhere.

The M4RI engine reorganizes the *work* of the elimination (per-block XOR
tables instead of per-pivot row fixups) but not its mathematics: ranks,
budget tick counts, and exhaustion boundaries must equal both the packed
bitset engine's and the pure-python reference's on every input, at every
block width k, on both the numpy and the pure-python code paths.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.kernels import (
    M4RI_DEFAULT_K,
    pack_rows,
    rank_gf2,
    rank_gf2_four_russians,
    rank_gf2_m4ri,
    rank_gf2_packed,
)
from repro.kernels.gf2 import _rank_gf2_m4ri_python
from repro.partitions import build_e_matrix, build_m_matrix, rank_mod_p
from repro.resilience import Budget


def _reference_rank2(matrix):
    return rank_mod_p(matrix, 2, kernel="reference")


class TestExhaustiveSmall:
    def test_all_3x3_binary_matrices_every_k(self):
        for flat in product((0, 1), repeat=9):
            matrix = [list(flat[0:3]), list(flat[3:6]), list(flat[6:9])]
            ref = _reference_rank2(matrix)
            for k in (1, 2, 3, 8):
                assert rank_gf2_four_russians(matrix, k=k) == ref

    def test_empty_shapes(self):
        assert rank_gf2_m4ri([], 5) == 0
        assert rank_gf2_m4ri([0b1], 0) == 0


class TestBlockBoundaries:
    """Block widths that straddle the 64-bit word boundary of the numpy path."""

    @pytest.mark.parametrize("cols", [63, 64, 65, 127, 128, 130])
    @pytest.mark.parametrize("k", [7, 8, 13])
    def test_word_straddling_blocks(self, cols, k):
        import random

        rng = random.Random(cols * 1000 + k)
        matrix = [
            [rng.randrange(2) for _ in range(cols)] for _ in range(17)
        ]
        packed = pack_rows(matrix)
        assert rank_gf2_m4ri(list(packed), cols, k=k) == rank_gf2_packed(
            list(packed), cols
        )

    @pytest.mark.parametrize("bad_k", [0, -1, 17])
    def test_block_width_validated(self, bad_k):
        with pytest.raises(ValueError):
            rank_gf2_m4ri([0b1], 1, k=bad_k)


class TestPurePythonEngine:
    """The no-numpy schedule agrees with the numpy one and the reference."""

    def test_matches_packed_on_randoms(self):
        import random

        rng = random.Random(42)
        for _ in range(60):
            rows = rng.randrange(1, 12)
            cols = rng.randrange(1, 40)
            matrix = [
                [rng.randrange(2) for _ in range(cols)] for _ in range(rows)
            ]
            packed = pack_rows(matrix)
            ref = rank_gf2_packed(list(packed), cols)
            k = rng.choice([1, 2, 5, 8])
            assert _rank_gf2_m4ri_python(list(packed), cols, k, None) == ref

    def test_budget_ticks_match_packed(self):
        _parts, matrix = build_m_matrix(4)
        packed = pack_rows(matrix)
        b_py, b_packed = Budget(max_units=10_000), Budget(max_units=10_000)
        assert _rank_gf2_m4ri_python(
            list(packed), len(matrix), 3, b_py
        ) == rank_gf2_packed(list(packed), len(matrix), b_packed)
        assert b_py.units_done == b_packed.units_done


class TestPaperMatrices:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_m_matrix(self, n):
        _parts, matrix = build_m_matrix(n)
        assert rank_gf2_four_russians(matrix) == _reference_rank2(matrix)

    @pytest.mark.parametrize("n", [4, 6])
    def test_e_matrix(self, n):
        _matchings, matrix = build_e_matrix(n)
        assert rank_gf2_four_russians(matrix) == _reference_rank2(matrix)

    def test_m4_rank_collapse_is_preserved(self):
        _parts, matrix = build_m_matrix(4)
        assert rank_gf2_four_russians(matrix) == 8


class TestKernelMode:
    def test_rank_mod_p_dispatch(self):
        _parts, matrix = build_m_matrix(4)
        assert rank_mod_p(matrix, 2, kernel="four-russians") == rank_mod_p(
            matrix, 2, kernel="reference"
        )

    def test_odd_primes_unaffected(self):
        # four-russians is a GF(2) mode; odd primes dispatch as "packed"
        _parts, matrix = build_m_matrix(3)
        for p in (3, 1_000_003):
            assert rank_mod_p(matrix, p, kernel="four-russians") == rank_mod_p(
                matrix, p, kernel="packed"
            )


class TestBudgetParity:
    def test_tick_counts_match_reference(self):
        _parts, matrix = build_m_matrix(4)
        b_fast, b_ref = Budget(max_units=10_000), Budget(max_units=10_000)
        assert rank_gf2_four_russians(matrix, k=3, budget=b_fast) == rank_mod_p(
            matrix, 2, b_ref, kernel="reference"
        )
        assert b_fast.units_done == b_ref.units_done

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_exhaustion_boundary_matches_reference(self, k):
        """BudgetExceededError fires at the same mid-elimination unit count."""
        _parts, matrix = build_m_matrix(4)
        probe = Budget(max_units=10_000)
        rank_gf2_four_russians(matrix, k=k, budget=probe)
        total = probe.units_done
        assert total >= 2
        for cutoff in (1, total // 2, total - 1):
            with pytest.raises(BudgetExceededError):
                rank_gf2_four_russians(matrix, k=k, budget=Budget(max_units=cutoff))
            with pytest.raises(BudgetExceededError):
                rank_mod_p(matrix, 2, Budget(max_units=cutoff), kernel="reference")
        # one more unit than ticks needed: all engines complete
        assert rank_gf2_four_russians(
            matrix, k=k, budget=Budget(max_units=total + 1)
        ) == rank_mod_p(matrix, 2, Budget(max_units=total + 1), kernel="reference")


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=-5, max_value=5), min_size=5, max_size=5),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from([1, 2, 3, M4RI_DEFAULT_K]),
)
def test_hypothesis_m4ri_equals_packed_equals_reference(matrix, k):
    ref = _reference_rank2(matrix)
    assert rank_gf2(matrix) == ref
    assert rank_gf2_four_russians(matrix, k=k) == ref
