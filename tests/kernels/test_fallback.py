"""Silent degradation when numpy is absent: same numbers, pure python.

The packed mode must never *require* numpy: the GF(2) and bitset-HK
engines are dependency-free, and the numpy-backed engines (batched
mod-p, batched crossing filter) fall back to the reference path. These
tests simulate a numpy-less install by monkeypatching the module-level
``_np`` handles, mirroring ``tests/lowerbounds/test_vectorized.py``.
"""

import random

import pytest

import repro.kernels.crossing_batch as crossing_batch
import repro.kernels.gf2 as gf2
import repro.kernels.modp as modp
import repro.partitions.linalg as linalg
from repro.indist.graph_builder import build_combinatorial_graph, crossing_neighbors
from repro.instances.enumeration import enumerate_one_cycle_covers
from repro.kernels import valid_crossing_pairs
from repro.partitions import DEFAULT_PRIMES, build_m_matrix, rank_exact, rank_mod_p


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setattr(modp, "_np", None)
    monkeypatch.setattr(modp, "HAVE_NUMPY", False)
    monkeypatch.setattr(crossing_batch, "_np", None)
    monkeypatch.setattr(crossing_batch, "HAVE_NUMPY", False)
    monkeypatch.setattr(gf2, "_np", None)
    yield


class TestModpFallback:
    def test_supported_is_false_without_numpy(self, no_numpy):
        assert not modp.batched_modp_supported(DEFAULT_PRIMES[0])

    def test_batched_raises_without_numpy(self, no_numpy):
        with pytest.raises(RuntimeError):
            modp.rank_mod_p_batched([[1]], DEFAULT_PRIMES[0])

    def test_engine_dispatch_degrades_to_python(self, no_numpy):
        # odd primes fall back to the reference engine; GF(2) stays packed
        assert linalg._modp_engine(DEFAULT_PRIMES[0], "packed") == "python"
        assert linalg._modp_engine(2, "packed") == "gf2-packed"

    def test_rank_values_unchanged(self, no_numpy):
        _parts, matrix = build_m_matrix(3)
        for p in DEFAULT_PRIMES:
            assert rank_mod_p(matrix, p, kernel="packed") == rank_mod_p(
                matrix, p, kernel="reference"
            )
        assert rank_exact(matrix, kernel="packed") == rank_exact(
            matrix, kernel="reference"
        )


class TestGf2Fallback:
    def test_pack_rows_identical_without_numpy(self, no_numpy):
        rng = random.Random(7)
        for _ in range(30):
            rows = rng.randrange(0, 8)
            cols = rng.randrange(0, 70)
            m = [[rng.randrange(-4, 5) for _ in range(cols)] for _ in range(rows)]
            assert gf2.pack_rows(m) == gf2._pack_rows_reference(m)

    def test_m4ri_pure_python_engine_runs(self, no_numpy):
        rng = random.Random(11)
        for trial in range(40):
            rows = rng.randrange(1, 10)
            cols = rng.randrange(1, 30)
            m = [[rng.randrange(2) for _ in range(cols)] for _ in range(rows)]
            packed = gf2.pack_rows(m)
            ref = gf2.rank_gf2_packed(list(packed), cols)
            k = rng.choice([1, 3, 8])
            assert gf2.rank_gf2_m4ri(list(packed), cols, k=k) == ref

    def test_auto_never_picks_m4ri_without_numpy(self, no_numpy):
        # the pure-python M4RI is correct but not faster than packed,
        # so size-based auto routing only makes sense with numpy
        big = [[1] * 4 for _ in range(linalg.M4RI_ROW_THRESHOLD + 1)]
        assert linalg._modp_engine(2, "auto", big) == "gf2-packed"
        # ...while an explicit request still runs (and agrees)
        assert rank_mod_p(big, 2, kernel="four-russians") == rank_mod_p(
            big, 2, kernel="reference"
        )


class TestCrossingFallback:
    def test_filter_identical_without_numpy(self, no_numpy):
        for cover in enumerate_one_cycle_covers(5):
            active = []
            for u, v in sorted(cover.edges):
                active.append((u, v))
                active.append((v, u))
            with_fallback = valid_crossing_pairs(cover.n, cover.edges, active)
            assert with_fallback == crossing_batch._valid_pairs_python(
                cover.n, cover.edges, active
            )

    def test_graph_builder_unchanged_without_numpy(self, no_numpy):
        fast = build_combinatorial_graph(5, kernel="packed")
        ref = build_combinatorial_graph(5, kernel="reference")
        for v in fast.iter_left():
            assert fast.iter_neighbors(v) == ref.iter_neighbors(v)
        cover = next(iter(enumerate_one_cycle_covers(5)))
        assert crossing_neighbors(cover, kernel="packed") == crossing_neighbors(
            cover, kernel="reference"
        )
