"""Batched crossing-pair filter == the pair-by-pair reference filter."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indist.graph_builder import (
    cross_cover,
    crossing_neighbors,
    build_combinatorial_graph,
)
from repro.instances.enumeration import enumerate_one_cycle_covers
from repro.kernels import valid_crossing_pairs
from repro.kernels.crossing_batch import _valid_pairs_python


def _all_active(cover):
    active = []
    for u, v in sorted(cover.edges):
        active.append((u, v))
        active.append((v, u))
    return active


def _reference_pairs(cover, active):
    out = []
    for e1, e2 in combinations(active, 2):
        if cross_cover(cover, e1, e2) is not None:
            out.append((e1, e2))
    return out


class TestValidCrossingPairs:
    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_equals_reference_on_every_one_cycle_cover(self, n):
        for cover in enumerate_one_cycle_covers(n):
            active = _all_active(cover)
            got = valid_crossing_pairs(cover.n, cover.edges, active)
            assert got == _reference_pairs(cover, active)

    def test_restricted_active_sets(self):
        rng = random.Random(5)
        covers = list(enumerate_one_cycle_covers(6))
        for cover in covers:
            full = _all_active(cover)
            active = [e for e in full if rng.random() < 0.5]
            got = valid_crossing_pairs(cover.n, cover.edges, active)
            assert got == _reference_pairs(cover, active)

    def test_empty_inputs(self):
        cover = next(iter(enumerate_one_cycle_covers(4)))
        assert valid_crossing_pairs(4, cover.edges, []) == []
        assert valid_crossing_pairs(4, cover.edges, [(0, 1)]) == []
        assert valid_crossing_pairs(4, frozenset(), [(0, 1), (2, 3)]) == []

    def test_python_fallback_identical(self):
        for cover in enumerate_one_cycle_covers(6):
            active = _all_active(cover)
            assert _valid_pairs_python(
                cover.n, cover.edges, active
            ) == valid_crossing_pairs(cover.n, cover.edges, active)


class TestGraphBuilderIdentity:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_crossing_neighbors_equal(self, n):
        for cover in enumerate_one_cycle_covers(n):
            assert crossing_neighbors(cover, kernel="packed") == crossing_neighbors(
                cover, kernel="reference"
            )

    @pytest.mark.parametrize("n", [4, 6])
    def test_combinatorial_graph_edge_for_edge(self, n):
        fast = build_combinatorial_graph(n, kernel="packed")
        ref = build_combinatorial_graph(n, kernel="reference")
        assert sorted(fast.iter_left(), key=repr) == sorted(ref.iter_left(), key=repr)
        assert sorted(fast.iter_right(), key=repr) == sorted(
            ref.iter_right(), key=repr
        )
        for v in fast.iter_left():
            assert fast.iter_neighbors(v) == ref.iter_neighbors(v)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_hypothesis_random_active_subsets(seed):
    rng = random.Random(seed)
    covers = list(enumerate_one_cycle_covers(6))
    cover = covers[rng.randrange(len(covers))]
    full = _all_active(cover)
    active = [e for e in full if rng.random() < rng.choice([0.3, 0.7, 1.0])]
    assert valid_crossing_pairs(cover.n, cover.edges, active) == _reference_pairs(
        cover, active
    )


class TestNumpyBranch:
    """The batched path itself (above BATCH_THRESHOLD) stays identical."""

    def test_forced_batch_identical_on_small_covers(self, monkeypatch):
        pytest.importorskip("numpy")
        import repro.kernels.crossing_batch as cb

        monkeypatch.setattr(cb, "BATCH_THRESHOLD", 2)
        for cover in enumerate_one_cycle_covers(6):
            active = _all_active(cover)
            assert cb.valid_crossing_pairs(
                cover.n, cover.edges, active
            ) == _reference_pairs(cover, active)

    def test_large_cycle_crosses_threshold_naturally(self):
        pytest.importorskip("numpy")
        from repro.indist.graph_builder import cover_from_edges
        from repro.kernels.crossing_batch import BATCH_THRESHOLD

        n = 40  # 80 active directed edges: the batch path engages
        edges = [(i, (i + 1) % n) for i in range(n)]
        cover = cover_from_edges(n, [(min(a, b), max(a, b)) for a, b in edges])
        active = _all_active(cover)
        assert len(active) >= BATCH_THRESHOLD
        got = valid_crossing_pairs(cover.n, cover.edges, active)
        assert got == _reference_pairs(cover, active)
        assert got  # a long cycle has plenty of independent pairs
