"""Bitset Hopcroft-Karp and the shared-mask k-clone engine vs the reference.

The engine-invariant quantities (pinned here): maximum-matching *size*
on every graph, validity of every returned matching/star, saturation
verdicts and ``max_saturating_k``. The specific matched edges -- and,
in deficient k-matching cases, the number of *complete* stars -- are
artifacts of which maximum matching a search finds and are NOT pinned
(see the module docstring of :mod:`repro.kernels.bitset_matching`).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indist import (
    BipartiteGraph,
    hopcroft_karp,
    is_valid_k_matching,
    is_valid_matching,
    k_matching,
    max_saturating_k,
    maximum_matching_size,
    saturates,
)
from repro.kernels import compile_bipartite, hopcroft_karp_bitset, k_matching_bitset


def _graph(lefts, rights, edges):
    g = BipartiteGraph()
    for v in lefts:
        g.add_left(v)
    for v in rights:
        g.add_right(v)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def _random_graph(rng, lefts=8, rights=8, density=0.3):
    g = BipartiteGraph()
    for u in range(lefts):
        g.add_left(("L", u))
    for v in range(rights):
        g.add_right(("R", v))
    for u in range(lefts):
        for v in range(rights):
            if rng.random() < density:
                g.add_edge(("L", u), ("R", v))
    return g


class TestCompile:
    def test_repr_sorted_and_masked(self):
        g = _graph(["b", "a"], ["y", "x"], [("a", "x"), ("b", "x"), ("b", "y")])
        lefts, rights, masks = compile_bipartite(g)
        assert lefts == ["a", "b"]
        assert rights == ["x", "y"]
        assert masks == [0b01, 0b11]

    def test_empty(self):
        lefts, rights, masks = compile_bipartite(BipartiteGraph())
        assert (lefts, rights, masks) == ([], [], [])


class TestHopcroftKarpBitset:
    def test_empty_graph(self):
        assert hopcroft_karp_bitset(BipartiteGraph()) == {}

    def test_perfect_matching(self):
        g = _graph([0, 1, 2], ["a", "b", "c"],
                   [(0, "a"), (1, "b"), (2, "c"), (0, "b")])
        m = hopcroft_karp_bitset(g)
        assert len(m) == 3
        assert is_valid_matching(g, m)

    def test_size_matches_reference_on_random_graphs(self):
        rng = random.Random(7)
        for _ in range(150):
            g = _random_graph(rng, lefts=rng.randrange(0, 9),
                              rights=rng.randrange(0, 9),
                              density=rng.choice([0.1, 0.3, 0.6]))
            fast = hopcroft_karp_bitset(g)
            ref = hopcroft_karp(g, kernel="reference")
            assert is_valid_matching(g, fast)
            assert len(fast) == len(ref)

    def test_front_door_kernel_param(self):
        g = _graph([0, 1], ["a"], [(0, "a"), (1, "a")])
        assert maximum_matching_size(g, kernel="packed") == 1
        assert maximum_matching_size(g, kernel="reference") == 1


class TestKMatchingBitset:
    def test_k_below_one_raises(self):
        with pytest.raises(ValueError):
            k_matching_bitset(BipartiteGraph(), 0)

    def test_empty_graph(self):
        assert k_matching_bitset(BipartiteGraph(), 2) == {}

    def test_saturating_case_counts_forced(self):
        # K_{2,4}: every left vertex gets a full 2-star; count is forced.
        g = _graph([0, 1], ["a", "b", "c", "d"],
                   [(u, r) for u in (0, 1) for r in "abcd"])
        stars = k_matching_bitset(g, 2)
        assert len(stars) == 2
        assert is_valid_k_matching(g, 2, stars)
        ref = k_matching(g, 2, kernel="reference")
        assert len(ref) == 2

    def test_invariants_match_reference_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(80):
            g = _random_graph(rng, lefts=rng.randrange(1, 6),
                              rights=rng.randrange(1, 8),
                              density=rng.choice([0.2, 0.5, 0.8]))
            for k in (1, 2, 3):
                fast = k_matching_bitset(g, k)
                assert is_valid_k_matching(g, k, fast)
                assert saturates(g, k, kernel="packed") == saturates(
                    g, k, kernel="reference"
                )
            assert max_saturating_k(g, kernel="packed") == max_saturating_k(
                g, kernel="reference"
            )

    def test_deficient_star_counts_may_differ_but_size_is_pinned(self):
        # L = {0, 1}, R = {a, b}, complete, k = 2: max matching of the
        # cloned graph has size 2, realizable as one full star or two
        # half-stars. Both engines must agree on saturation (False) and
        # produce only valid stars.
        g = _graph([0, 1], ["a", "b"], [(0, "a"), (0, "b"), (1, "a"), (1, "b")])
        for kern in ("packed", "reference"):
            assert not saturates(g, 2, kernel=kern)
            assert is_valid_k_matching(g, 2, k_matching(g, 2, kernel=kern))


@settings(max_examples=50, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
    st.integers(min_value=1, max_value=3),
)
def test_hypothesis_sizes_and_saturation_agree(edge_set, k):
    g = BipartiteGraph()
    for u in range(6):
        g.add_left(("L", u))
    for v in range(6):
        g.add_right(("R", v))
    for u, v in edge_set:
        g.add_edge(("L", u), ("R", v))
    fast = hopcroft_karp(g, kernel="packed")
    ref = hopcroft_karp(g, kernel="reference")
    assert is_valid_matching(g, fast)
    assert len(fast) == len(ref)
    assert saturates(g, k, kernel="packed") == saturates(g, k, kernel="reference")
