"""Sparse dict-row mod-p elimination == dense engines, everywhere.

The sparse engine changes the row representation, not the elimination:
the pivot-column order mirrors the reference exactly, so ranks, budget
tick counts, and exhaustion boundaries must agree on every input at
every prime -- including p = 2, where it coexists with the GF(2)
bitset engines.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.kernels import (
    SPARSE_DENSITY_CUTOFF,
    SPARSE_MIN_CELLS,
    matrix_density,
    rank_mod_p_sparse,
    rank_mod_p_sparse_rows,
    sparsify_rows,
)
from repro.partitions import DEFAULT_PRIMES, build_e_matrix, build_m_matrix, rank_mod_p
from repro.partitions.linalg import _modp_engine
from repro.resilience import Budget

PRIMES = (2, 3, 97, DEFAULT_PRIMES[0])


class TestSparsifyRows:
    def test_zero_entries_never_stored(self):
        rows = sparsify_rows([[0, 1, 0], [2, 0, 4]], 3)
        assert rows == [{1: 1}, {0: 2, 2: 1}]

    def test_values_reduced_into_range(self):
        rows = sparsify_rows([[-1, 7, 5]], 5)
        assert rows == [{0: 4, 1: 2}]
        assert all(1 <= v < 5 for row in rows for v in row.values())

    def test_density(self):
        assert matrix_density([[0, 1], [1, 1]]) == 0.75
        assert matrix_density([]) == 0.0
        assert matrix_density([[], []]) == 0.0


class TestExhaustiveSmall:
    @pytest.mark.parametrize("p", [2, 3])
    def test_all_3x3_matrices_mod_p(self, p):
        for flat in product(range(p), repeat=9):
            matrix = [list(flat[0:3]), list(flat[3:6]), list(flat[6:9])]
            assert rank_mod_p_sparse(matrix, p) == rank_mod_p(
                matrix, p, kernel="reference"
            )

    def test_empty_shapes(self):
        assert rank_mod_p_sparse([], 7) == 0
        assert rank_mod_p_sparse_rows([{}], 0, 7) == 0


class TestPaperMatrices:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("p", [2, DEFAULT_PRIMES[0]])
    def test_m_matrix(self, n, p):
        _parts, matrix = build_m_matrix(n)
        assert rank_mod_p_sparse(matrix, p) == rank_mod_p(
            matrix, p, kernel="reference"
        )

    @pytest.mark.parametrize("n", [4, 6])
    def test_e_matrix(self, n):
        _matchings, matrix = build_e_matrix(n)
        for p in (2, DEFAULT_PRIMES[0]):
            assert rank_mod_p_sparse(matrix, p) == rank_mod_p(
                matrix, p, kernel="reference"
            )


class TestKernelMode:
    def test_rank_mod_p_dispatch(self):
        _parts, matrix = build_m_matrix(4)
        for p in PRIMES:
            assert rank_mod_p(matrix, p, kernel="sparse") == rank_mod_p(
                matrix, p, kernel="reference"
            )

    def test_auto_dispatches_on_density(self):
        # big and nearly empty: sparse; big and dense: stays batched
        side = 200
        assert side * side >= SPARSE_MIN_CELLS
        thin = [[0] * side for _ in range(side)]
        for i in range(side):
            thin[i][i] = 1
        assert matrix_density(thin) <= SPARSE_DENSITY_CUTOFF
        assert _modp_engine(DEFAULT_PRIMES[0], "auto", thin) == "sparse"
        fat = [[1] * side for _ in range(side)]
        assert _modp_engine(DEFAULT_PRIMES[0], "auto", fat) == "numpy-batched"

    def test_auto_never_sparse_below_min_cells(self):
        tiny = [[0, 1], [0, 0]]
        assert _modp_engine(DEFAULT_PRIMES[0], "auto", tiny) == "numpy-batched"

    def test_legacy_two_argument_dispatch_unchanged(self):
        # the matrix-free form keeps the PR 5 behavior exactly
        assert _modp_engine(DEFAULT_PRIMES[0], "auto") == "numpy-batched"
        assert _modp_engine(2, "auto") == "gf2-packed"


class TestBudgetParity:
    @pytest.mark.parametrize("p", [2, DEFAULT_PRIMES[0]])
    def test_tick_counts_match_reference(self, p):
        _parts, matrix = build_m_matrix(4)
        b_fast, b_ref = Budget(max_units=10_000), Budget(max_units=10_000)
        assert rank_mod_p_sparse(matrix, p, b_fast) == rank_mod_p(
            matrix, p, b_ref, kernel="reference"
        )
        assert b_fast.units_done == b_ref.units_done

    def test_exhaustion_boundary_matches_reference(self):
        """BudgetExceededError fires at the same mid-elimination unit count."""
        p = DEFAULT_PRIMES[0]
        _parts, matrix = build_m_matrix(4)
        probe = Budget(max_units=10_000)
        rank_mod_p_sparse(matrix, p, probe)
        total = probe.units_done
        assert total >= 2
        for cutoff in (1, total // 2, total - 1):
            with pytest.raises(BudgetExceededError):
                rank_mod_p_sparse(matrix, p, Budget(max_units=cutoff))
            with pytest.raises(BudgetExceededError):
                rank_mod_p(matrix, p, Budget(max_units=cutoff), kernel="reference")
        assert rank_mod_p_sparse(
            matrix, p, Budget(max_units=total + 1)
        ) == rank_mod_p(matrix, p, Budget(max_units=total + 1), kernel="reference")


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=-9, max_value=9), min_size=5, max_size=5),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from(PRIMES),
)
def test_hypothesis_sparse_equals_dense(matrix, p):
    ref = rank_mod_p(matrix, p, kernel="reference")
    assert rank_mod_p_sparse(matrix, p) == ref
    assert rank_mod_p(matrix, p, kernel="sparse") == ref
