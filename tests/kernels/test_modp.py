"""Batched mod-p elimination: identity with the reference and int64 safety."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.kernels import HAVE_NUMPY, batched_modp_supported, rank_mod_p_batched
from repro.partitions import (
    DEFAULT_PRIMES,
    build_m_matrix,
    rank_bareiss,
    rank_exact,
    rank_mod_p,
    rank_multi_prime,
)
from repro.resilience import Budget

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")

#: The Mersenne prime 2^31 - 1 -- the largest default prime and the
#: worst case the int64 reduction must survive: (p-1)^2 = 2^62 - 2^33 + 4.
MERSENNE = 2_147_483_647


class TestSupportBound:
    def test_all_default_primes_supported_iff_numpy(self):
        for p in DEFAULT_PRIMES:
            assert batched_modp_supported(p) == HAVE_NUMPY

    def test_mersenne_is_a_default_prime(self):
        assert MERSENNE in DEFAULT_PRIMES

    def test_oversized_prime_unsupported(self):
        # (p-1)^2 alone overflows int64 once p - 1 > ~3.04e9
        assert not batched_modp_supported(2**32 + 15)

    @needs_numpy
    def test_batched_raises_on_unsupported_prime(self):
        with pytest.raises(RuntimeError):
            rank_mod_p_batched([[1]], 2**32 + 15)


@needs_numpy
class TestOverflowSafetyAtMersenne:
    """Max-residue matrices at p = 2^31 - 1: every intermediate is extremal."""

    def test_all_max_residue_rank_one(self):
        p = MERSENNE
        matrix = [[p - 1] * 4 for _ in range(4)]
        assert rank_mod_p_batched(matrix, p) == 1
        assert rank_mod_p(matrix, p, kernel="reference") == 1
        assert rank_bareiss(matrix) == 1

    def test_max_residue_diagonal_full_rank(self):
        p = MERSENNE
        matrix = [[p - 1 if i == j else 0 for j in range(3)] for i in range(3)]
        assert rank_mod_p_batched(matrix, p) == 3
        assert rank_mod_p(matrix, p, kernel="reference") == 3
        assert rank_bareiss(matrix) == 3

    def test_adversarial_update_hits_p_minus_1_squared(self):
        # eliminating row 2 computes 0 - (p-1) * inv(p-1)*(p-1) terms:
        # the raw outer-product intermediate is exactly -(p-1)^2.
        p = MERSENNE
        matrix = [[p - 1, p - 1], [p - 1, 0]]
        # det = -(p-1)^2 = -(p^2 - 2p + 1) == -1 (mod p): full rank both ways
        assert rank_mod_p_batched(matrix, p) == 2
        assert rank_mod_p(matrix, p, kernel="reference") == 2
        assert rank_bareiss(matrix) == 2


class TestEngineIdentity:
    @pytest.mark.parametrize("p", DEFAULT_PRIMES)
    def test_m3_matrix_all_engines(self, p):
        _parts, matrix = build_m_matrix(3)
        ref = rank_mod_p(matrix, p, kernel="reference")
        assert rank_mod_p(matrix, p, kernel="packed") == ref
        assert rank_mod_p(matrix, p, kernel="auto") == ref
        if batched_modp_supported(p) and p != 2:
            assert rank_mod_p_batched(matrix, p) == ref

    def test_empty_matrix(self):
        for p in DEFAULT_PRIMES:
            assert rank_mod_p([], p, kernel="packed") == 0


@needs_numpy
class TestBudgetParity:
    def test_tick_counts_match_reference(self):
        _parts, matrix = build_m_matrix(3)
        p = DEFAULT_PRIMES[0]
        b_fast, b_ref = Budget(max_units=10_000), Budget(max_units=10_000)
        assert rank_mod_p_batched(matrix, p, b_fast) == rank_mod_p(
            matrix, p, b_ref, kernel="reference"
        )
        assert b_fast.units_done == b_ref.units_done

    def test_exhaustion_boundary_matches_reference(self):
        _parts, matrix = build_m_matrix(3)
        p = DEFAULT_PRIMES[0]
        probe = Budget(max_units=10_000)
        rank_mod_p_batched(matrix, p, probe)
        cutoff = probe.units_done - 1
        assert cutoff >= 1
        with pytest.raises(BudgetExceededError):
            rank_mod_p_batched(matrix, p, Budget(max_units=cutoff))
        with pytest.raises(BudgetExceededError):
            rank_mod_p(matrix, p, Budget(max_units=cutoff), kernel="reference")


class TestWorkersTimesKernels:
    """The PR 4 contract extended: any workers x any kernel, same number."""

    def test_rank_exact_packed_workers_equals_serial_reference(self):
        _parts, matrix = build_m_matrix(4)
        serial_ref = rank_exact(matrix, workers=1, kernel="reference")
        assert rank_exact(matrix, workers=2, kernel="packed") == serial_ref
        assert rank_exact(matrix, workers=2, kernel="reference") == serial_ref
        assert rank_exact(matrix, workers=1, kernel="packed") == serial_ref

    def test_rank_multi_prime_packed_workers_equals_serial_reference(self):
        _parts, matrix = build_m_matrix(3)
        serial_ref = rank_multi_prime(matrix, workers=1, kernel="reference")
        assert rank_multi_prime(matrix, workers=2, kernel="packed") == serial_ref


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=3, max_size=3),
        min_size=1,
        max_size=5,
    ),
    st.sampled_from(DEFAULT_PRIMES),
)
def test_hypothesis_packed_equals_reference(matrix, p):
    assert rank_mod_p(matrix, p, kernel="packed") == rank_mod_p(
        matrix, p, kernel="reference"
    )


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.lists(
            st.sampled_from([0, 1, MERSENNE - 1, MERSENNE - 2]),
            min_size=3,
            max_size=3,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_hypothesis_max_residue_entries_at_mersenne(matrix):
    """Entries at the top of the residue range never corrupt the batch."""
    assert rank_mod_p(matrix, MERSENNE, kernel="packed") == rank_mod_p(
        matrix, MERSENNE, kernel="reference"
    )
