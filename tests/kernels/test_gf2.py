"""Word-packed GF(2) elimination == the reference rank mod 2, everywhere."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.kernels import pack_rows, rank_gf2
from repro.kernels.gf2 import _pack_row_bytes, _pack_rows_reference, rank_gf2_packed
from repro.partitions import build_e_matrix, build_m_matrix, rank_mod_p
from repro.resilience import Budget


def _reference_rank2(matrix):
    return rank_mod_p(matrix, 2, kernel="reference")


class TestPackRows:
    def test_bits_are_columns(self):
        assert pack_rows([[1, 0, 1], [0, 1, 0]]) == [0b101, 0b010]

    def test_entries_taken_mod_2(self):
        assert pack_rows([[2, 3, -1]]) == [0b110]

    def test_empty(self):
        assert pack_rows([]) == []


class TestPackRowsParity:
    """The fast packer (numpy packbits / bytearray) == the original packer."""

    def test_wide_rows(self):
        import random

        rng = random.Random(3)
        for cols in (1, 7, 8, 63, 64, 65, 200):
            m = [[rng.randrange(-5, 6) for _ in range(cols)] for _ in range(5)]
            assert pack_rows(m) == _pack_rows_reference(m)

    def test_huge_entries_take_the_fallback(self):
        # numpy cannot hold 2**80 in an integer dtype; the bytearray
        # fallback must still agree with the original packer
        m = [[2**80 + 1, 2**80, 3]]
        assert pack_rows(m) == _pack_rows_reference(m) == [0b101]

    def test_float_rows_take_the_fallback(self):
        m = [[1.0, 0.0, 3.0]]
        assert pack_rows(m) == _pack_rows_reference(m) == [0b101]

    def test_bytearray_fallback_matches_everywhere(self):
        import random

        rng = random.Random(5)
        for _ in range(40):
            cols = rng.randrange(0, 90)
            row = [rng.randrange(-9, 10) for _ in range(cols)]
            assert _pack_row_bytes(row) == _pack_rows_reference([row])[0]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=-100, max_value=100), max_size=70),
            max_size=5,
        )
    )
    def test_hypothesis_parity(self, matrix):
        assert pack_rows(matrix) == _pack_rows_reference(matrix)


class TestRankGF2Exhaustive:
    def test_all_2x3_binary_matrices(self):
        for flat in product((0, 1), repeat=6):
            matrix = [list(flat[:3]), list(flat[3:])]
            assert rank_gf2(matrix) == _reference_rank2(matrix)

    def test_all_3x3_binary_matrices(self):
        for flat in product((0, 1), repeat=9):
            matrix = [list(flat[0:3]), list(flat[3:6]), list(flat[6:9])]
            assert rank_gf2(matrix) == _reference_rank2(matrix)


class TestRankGF2PaperMatrices:
    @pytest.mark.parametrize("n", [3, 4])
    def test_m_matrix(self, n):
        _parts, matrix = build_m_matrix(n)
        assert rank_gf2(matrix) == _reference_rank2(matrix)

    @pytest.mark.parametrize("n", [4, 6])
    def test_e_matrix(self, n):
        _matchings, matrix = build_e_matrix(n)
        assert rank_gf2(matrix) == _reference_rank2(matrix)

    def test_m4_is_not_full_rank_mod_2(self):
        # rank collapse over GF(2) is exactly why rank_exact certifies
        # with odd primes; pin the collapse so nobody "optimizes" it away.
        _parts, matrix = build_m_matrix(4)
        assert rank_gf2(matrix) == 8
        assert len(matrix) == 15


class TestBudgetParity:
    def test_tick_counts_match_reference(self):
        _parts, matrix = build_m_matrix(3)
        b_fast, b_ref = Budget(max_units=10_000), Budget(max_units=10_000)
        assert rank_gf2(matrix, b_fast) == rank_mod_p(
            matrix, 2, b_ref, kernel="reference"
        )
        assert b_fast.units_done == b_ref.units_done

    def test_exhaustion_boundary_matches_reference(self):
        _parts, matrix = build_m_matrix(3)
        probe = Budget(max_units=10_000)
        rank_gf2(matrix, probe)
        cutoff = probe.units_done - 1
        assert cutoff >= 1
        with pytest.raises(BudgetExceededError):
            rank_gf2(matrix, Budget(max_units=cutoff))
        with pytest.raises(BudgetExceededError):
            rank_mod_p(matrix, 2, Budget(max_units=cutoff), kernel="reference")


class TestPackedEntryPoint:
    def test_empty_rows_or_cols(self):
        assert rank_gf2_packed([], 5) == 0
        assert rank_gf2_packed([0b1], 0) == 0

    def test_destructive_on_rows_but_correct(self):
        rows = pack_rows([[1, 1], [1, 1]])
        assert rank_gf2_packed(rows, 2) == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=-5, max_value=5), min_size=4, max_size=4),
        min_size=1,
        max_size=6,
    )
)
def test_hypothesis_packed_equals_reference(matrix):
    assert rank_gf2(matrix) == _reference_rank2(matrix)
