"""CLI surface of the result cache: --cache flags, the cache subcommand,
warm-run byte identity, and the trace/dash/history integrations."""

import json
import os

import pytest

from repro.cache import ResultCache
from repro.cli import main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestWarmRunsAreByteIdentical:
    def test_exhaustive_json_stdout(self, tmp_path, capsys):
        argv = ["exhaustive", "--n", "4", "--json", "--cache", str(tmp_path / "c")]
        code, cold_out, cold_err = run_cli(capsys, argv)
        assert code == 0
        code, warm_out, warm_err = run_cli(capsys, argv)
        assert code == 0
        assert warm_out == cold_out  # stdout byte-identical, cold or warm
        assert "cache: hits=0 misses=1" in cold_err
        assert "cache: hits=1 misses=0" in warm_err
        json.loads(cold_out)  # stdout stays one parseable object

    def test_fault_sweep_out_file(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        argv = [
            "fault-sweep", "--quick", "--out", str(out),
            "--cache", str(tmp_path / "c"),
        ]
        assert run_cli(capsys, argv)[0] == 0
        cold_bytes = out.read_bytes()
        out.unlink()
        assert run_cli(capsys, argv)[0] == 0
        assert out.read_bytes() == cold_bytes

    def test_ranks_and_sampling_report_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        ranks = ["ranks", "--max-n", "3", "--cache", cache_dir]
        run_cli(capsys, ranks)
        _code, _out, err = run_cli(capsys, ranks)
        assert "hits=1" in err
        sampling = [
            "sampling", "--n", "4", "--samples", "50", "--cache", cache_dir,
        ]
        run_cli(capsys, sampling)
        _code, _out, err = run_cli(capsys, sampling)
        assert "hits=1" in err

    def test_env_var_enables_the_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        run_cli(capsys, ["exhaustive", "--n", "4"])
        _code, _out, err = run_cli(capsys, ["exhaustive", "--n", "4"])
        assert "hits=1" in err

    def test_no_cache_flag_means_no_cache_chatter(self, tmp_path, capsys):
        _code, _out, err = run_cli(capsys, ["exhaustive", "--n", "4"])
        assert "cache:" not in err


class TestCacheSubcommand:
    def _warm(self, capsys, cache_dir):
        run_cli(capsys, ["exhaustive", "--n", "4", "--cache", cache_dir])

    def test_stats(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        self._warm(capsys, cache_dir)
        code, out, _err = run_cli(capsys, ["cache", "stats", "--dir", cache_dir])
        assert code == 0
        assert "entries" in out and "exhaustive" in out

    def test_stats_json(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        self._warm(capsys, cache_dir)
        code, out, _err = run_cli(
            capsys, ["cache", "stats", "--dir", cache_dir, "--json"]
        )
        assert code == 0
        json.loads(out)

    def test_verify_clean_then_corrupt(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        self._warm(capsys, cache_dir)
        assert run_cli(capsys, ["cache", "verify", "--dir", cache_dir])[0] == 0
        cache = ResultCache(cache_dir)
        key, path = next(iter(cache._iter_entries()))
        with open(path, "wb") as handle:
            handle.write(b"{torn")
        code, _out, err = run_cli(capsys, ["cache", "verify", "--dir", cache_dir])
        assert code == 1
        assert key in err
        code, _out, _err = run_cli(
            capsys, ["cache", "verify", "--dir", cache_dir, "--delete"]
        )
        assert code == 0
        assert not os.path.exists(path)

    def test_gc(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        self._warm(capsys, cache_dir)
        code, out, _err = run_cli(
            capsys, ["cache", "gc", "--dir", cache_dir, "--max-bytes", "0"]
        )
        assert code == 0
        assert "evicted" in out
        assert ResultCache(cache_dir).stats()["entries"] == 0


class TestObservabilityIntegrations:
    def test_trace_validate_stats_shows_cache_traffic(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        run_cli(
            capsys,
            [
                "fault-sweep", "--quick", "--trace", trace,
                "--cache", str(tmp_path / "c"),
            ],
        )
        code, out, _err = run_cli(capsys, ["trace-validate", trace, "--stats"])
        assert code == 0
        assert "hits=0 misses=1" in out

    def test_dash_cache_panel(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        run_cli(capsys, ["exhaustive", "--n", "4", "--cache", cache_dir])
        out = str(tmp_path / "dash.html")
        code, _out, _err = run_cli(
            capsys,
            [
                "dash", "--dir", str(tmp_path), "--cache", cache_dir,
                "--out", out, "--timestamp", "pinned",
            ],
        )
        assert code == 0
        html = open(out, encoding="utf-8").read()
        assert "Result cache" in html
        assert "entries[exhaustive]" in html

    def test_bench_history_records_cache_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "bench", "--quick", "--only", "simulator",
            "--out-dir", str(tmp_path), "--history",
        ]
        assert run_cli(capsys, argv)[0] == 0
        record = json.loads(
            open(tmp_path / "BENCH_HISTORY.jsonl", encoding="utf-8").readline()
        )
        assert record["cache"] == "off"  # harness default: cache-disabled
        assert run_cli(capsys, argv + ["--cache", str(tmp_path / "c")])[0] == 0
        lines = open(tmp_path / "BENCH_HISTORY.jsonl", encoding="utf-8").readlines()
        assert json.loads(lines[-1])["cache"] == "on"
