"""Key derivation: canonical JSON, fingerprints, request/item addresses."""

import hashlib

import pytest

from repro.cache.keys import (
    FINGERPRINT_PREFIXES,
    canonical_json,
    code_fingerprint,
    fingerprint_modules,
    item_key,
    kind_fingerprint,
    payload_digest,
    request_key,
    shard_key,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )

    def test_no_whitespace_and_ascii(self):
        text = canonical_json({"k": "café", "n": 1})
        assert " " not in text
        assert text.encode("ascii")  # must not raise

    def test_non_json_values_raise(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})

    def test_payload_digest_is_sha256_of_canonical_form(self):
        payload = {"z": 0, "a": 1}
        expected = hashlib.sha256(
            canonical_json(payload).encode("ascii")
        ).hexdigest()
        assert payload_digest(payload) == expected
        assert payload_digest({"a": 1, "z": 0}) == expected


class TestFingerprints:
    def test_deterministic_across_calls(self):
        assert code_fingerprint(["repro.partitions"]) == code_fingerprint(
            ["repro.partitions"]
        )

    def test_prefix_order_is_irrelevant(self):
        a = fingerprint_modules(("repro.partitions", "repro.kernels"))
        b = fingerprint_modules(("repro.kernels", "repro.partitions"))
        assert a == b

    def test_different_prefixes_differ(self):
        assert code_fingerprint(["repro.partitions"]) != code_fingerprint(
            ["repro.kernels"]
        )

    def test_non_repro_prefix_rejected(self):
        with pytest.raises(ValueError):
            code_fingerprint(["os.path"])

    def test_every_engine_kind_has_a_table_entry(self):
        for kind in ("run", "exhaustive", "sampling", "ranks", "fault-sweep", "bench"):
            assert kind in FINGERPRINT_PREFIXES
            assert len(kind_fingerprint(kind)) == 64

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            kind_fingerprint("nope")


class TestRequestKey:
    def test_deterministic_and_hex(self):
        key = request_key("exhaustive", {"n": 4}, kernel="auto", fingerprint="f")
        assert key == request_key("exhaustive", {"n": 4}, kernel="auto", fingerprint="f")
        assert len(key) == 64
        int(key, 16)  # must be a hex digest

    def test_every_material_field_matters(self):
        base = request_key("exhaustive", {"n": 4}, kernel="auto", fingerprint="f")
        assert base != request_key("sampling", {"n": 4}, kernel="auto", fingerprint="f")
        assert base != request_key("exhaustive", {"n": 5}, kernel="auto", fingerprint="f")
        assert base != request_key("exhaustive", {"n": 4}, kernel="packed", fingerprint="f")
        assert base != request_key("exhaustive", {"n": 4}, kernel="auto", fingerprint="g")
        assert base != request_key(
            "exhaustive", {"n": 4}, kernel="auto", result_version=2, fingerprint="f"
        )

    def test_workers_never_reaches_the_key(self):
        # normalization strips workers before keying; even a stray field
        # spelled identically must change the key (it is part of params),
        # so the invariance contract lives in normalization, not hashing.
        a = request_key("exhaustive", {"n": 4}, fingerprint="f")
        b = request_key("exhaustive", {"n": 4, "workers": 2}, fingerprint="f")
        assert a != b  # params are hashed verbatim: callers must normalize


class TestItemKey:
    def test_shard_key_is_a_contiguous_item_key(self):
        assert shard_key(
            "exhaustive", {"n": 4}, 0, 81, seed=123, fingerprint="f"
        ) == item_key(
            "exhaustive",
            {"n": 4},
            {"start": 0, "stop": 81, "seed": 123},
            fingerprint="f",
        )

    def test_item_and_request_keys_never_collide(self):
        params = {"n": 4}
        assert request_key("exhaustive", params, fingerprint="f") != item_key(
            "exhaustive", params, {"start": 0, "stop": 81, "seed": 1}, fingerprint="f"
        )

    def test_distinct_items_get_distinct_keys(self):
        params = {"n": 6, "trials": 2, "seed": 0}
        a = item_key("fault-sweep", params, {"algorithm": "flooding", "a_idx": 0})
        b = item_key("fault-sweep", params, {"algorithm": "flooding", "a_idx": 1})
        assert a != b
