"""ResultCache: round-trips, corruption-as-miss, verify, LRU gc."""

import json
import os

import pytest

from repro.cache import ResultCache
from repro.cache.keys import canonical_json
from repro.obs.metrics import MetricsRegistry, use_registry

KEY = "ab" + "0" * 62
KEY2 = "cd" + "1" * 62


def entry_path(cache, key):
    return os.path.join(cache.objects_dir, key[:2], key + ".json")


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        payload = {"rows": [[1, 2], [3, 4]], "note": "x"}
        assert cache.put(KEY, "ranks", payload)
        got = cache.get(KEY)
        assert got == payload
        assert canonical_json(got) == canonical_json(payload)
        assert cache.counters() == {
            "hits": 1,
            "misses": 0,
            "stored": 1,
            "bytes_saved": len(canonical_json(payload).encode("ascii")),
            "corrupt": 0,
        }

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_disabled_cache_is_inert(self, tmp_path):
        root = tmp_path / "c"
        cache = ResultCache(str(root), enabled=False)
        assert not cache.put(KEY, "ranks", {"x": 1})
        assert cache.get(KEY) is None
        assert not os.path.exists(str(root))
        assert cache.counters() == {
            "hits": 0, "misses": 0, "stored": 0, "bytes_saved": 0, "corrupt": 0,
        }

    def test_non_hex_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")

    def test_metrics_registry_sees_traffic(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        registry = MetricsRegistry()
        with use_registry(registry):
            cache.put(KEY, "ranks", {"x": 1})
            cache.get(KEY)
            cache.get(KEY2)
        counters = registry.snapshot()["counters"]
        assert counters["cache.stored"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.miss"] == 1
        assert counters["cache.bytes_saved"] == cache.bytes_saved


class TestCorruption:
    """Every flavor of bad entry is a miss, never a served payload."""

    def _seed(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.put(KEY, "ranks", {"value": 42})
        return cache, entry_path(cache, KEY)

    def test_flipped_payload_byte_is_a_miss(self, tmp_path):
        cache, path = self._seed(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["payload"]["value"] = 43  # digest no longer matches
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_torn_tail_is_a_miss(self, tmp_path):
        cache, path = self._seed(tmp_path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert cache.get(KEY) is None

    def test_wrong_envelope_version_is_a_miss(self, tmp_path):
        cache, path = self._seed(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["cache_version"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(KEY) is None

    def test_recompute_overwrites_and_serves(self, tmp_path):
        cache, path = self._seed(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"{garbage")
        assert cache.get(KEY) is None  # miss -> caller recomputes
        assert cache.put(KEY, "ranks", {"value": 42})
        assert cache.get(KEY) == {"value": 42}

    def test_verify_flags_and_deletes(self, tmp_path):
        cache, path = self._seed(tmp_path)
        assert cache.put(KEY2, "ranks", {"other": 1})
        with open(path, "wb") as handle:
            handle.write(b"{garbage")
        report = cache.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == [KEY]
        assert report["deleted"] == 0
        report = cache.verify(delete=True)
        assert report["deleted"] == 1
        assert not os.path.exists(path)
        assert cache.verify() == {"checked": 1, "ok": 1, "corrupt": [], "deleted": 0}


class TestGc:
    def test_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        keys = [f"{i:02x}" + "e" * 62 for i in range(4)]
        for i, key in enumerate(keys):
            assert cache.put(key, "ranks", {"i": i, "pad": "x" * 100})
            # explicit mtimes: keys[0] oldest ... keys[3] newest
            os.utime(entry_path(cache, key), (1000 + i, 1000 + i))
        # a hit rejuvenates keys[0], so keys[1] becomes the LRU victim
        assert cache.get(keys[0]) is not None
        # entry sizes vary by a few bytes (created_unix repr width), so
        # budget against the real total: one byte under it evicts exactly
        # the one oldest entry
        total = sum(os.path.getsize(entry_path(cache, k)) for k in keys)
        report = cache.gc(max_bytes=total - 1)
        assert report["evicted"] == 1
        assert cache.get(keys[1]) is None  # the true LRU entry went
        assert all(cache.get(k) is not None for k in (keys[0], keys[2], keys[3]))

    def test_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.put(KEY, "ranks", {"x": 1})
        shard_dir = os.path.dirname(entry_path(cache, KEY))
        orphan = os.path.join(shard_dir, ".cache-dead.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("partial")
        report = cache.gc()
        assert report["swept_tmp"] == 1
        assert not os.path.exists(orphan)
        assert cache.get(KEY) is not None  # named entries untouched

    def test_zero_budget_clears_everything(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put(KEY, "ranks", {"x": 1})
        cache.put(KEY2, "ranks", {"y": 2})
        report = cache.gc(max_bytes=0)
        assert report["evicted"] == 2
        assert report["remaining_bytes"] == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path / "c")).gc(max_bytes=-1)

    def test_stats_reports_shape(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put(KEY, "ranks", {"x": 1})
        cache.put(KEY2, "exhaustive", {"y": 2})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"exhaustive": 1, "ranks": 1}
        assert stats["bytes"] > 0
