"""Kill-mid-write: a dying writer can never publish a torn entry.

The child process runs a real ``ResultCache.put`` but SIGKILLs itself at
the publication point (``os.replace``) -- the worst possible instant: the
temp file is fully written and fsynced, the named entry is one syscall
away. Deterministic, no sleep/poll races, same idiom as the replay
layer's kill-mid-run test. The parent then asserts the crash left *no*
named entry (a miss, not a torn read), only an orphaned ``.tmp`` that
``gc`` sweeps, and that a fresh writer repopulates the same key cleanly.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.cache import ResultCache

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

KEY = "ab" + "0" * 62

CHILD = textwrap.dedent(
    f"""
    import os, signal, sys
    sys.path.insert(0, {SRC!r})
    import repro.cache.store as store_mod

    def killed_at_publish(src, dst):
        os.kill(os.getpid(), signal.SIGKILL)  # dies holding a full .tmp

    store_mod.os.replace = killed_at_publish
    cache = store_mod.ResultCache(sys.argv[1])
    cache.put({KEY!r}, "exhaustive", {{"rows": list(range(200))}})
    sys.exit(0)  # unreachable if the kill landed
    """
)


@pytest.fixture(scope="module")
def killed_cache_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("killed") / "cache")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, root],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    return root


class TestKilledMidWrite:
    def test_no_named_entry_was_published(self, killed_cache_root):
        cache = ResultCache(killed_cache_root)
        named = [path for _key, path in cache._iter_entries()]
        assert named == []

    def test_torn_write_reads_as_a_plain_miss(self, killed_cache_root):
        cache = ResultCache(killed_cache_root)
        assert cache.get(KEY) is None
        assert cache.misses == 1
        assert cache.corrupt == 0  # nothing corrupt: nothing was published

    def test_orphaned_tmp_exists_and_gc_sweeps_it(self, killed_cache_root):
        shard_dir = os.path.join(killed_cache_root, "objects", KEY[:2])
        tmps = [n for n in os.listdir(shard_dir) if n.endswith(".tmp")]
        assert len(tmps) == 1
        report = ResultCache(killed_cache_root).gc()
        assert report["swept_tmp"] == 1
        assert [n for n in os.listdir(shard_dir) if n.endswith(".tmp")] == []

    def test_fresh_writer_repopulates_the_key(self, killed_cache_root):
        cache = ResultCache(killed_cache_root)
        payload = {"rows": list(range(200))}
        assert cache.put(KEY, "exhaustive", payload)
        assert cache.get(KEY) == payload
