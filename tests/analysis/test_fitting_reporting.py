"""Tests for growth fitting and table rendering."""

import math
import random

import pytest

from repro.analysis import (
    fit_linear,
    fit_logarithmic,
    is_logarithmic_growth,
    print_table,
    ratio_stability,
    render_table,
)


class TestLogFit:
    def test_exact_log_series(self):
        xs = [2, 4, 8, 16, 32, 64]
        ys = [3 * math.log(x) + 1 for x in xs]
        fit = fit_logarithmic(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        xs = [2, 4, 8]
        ys = [math.log(x) for x in xs]
        fit = fit_logarithmic(xs, ys)
        assert fit.predict(16) == pytest.approx(math.log(16), abs=1e-9)

    def test_noisy_log_series(self):
        rng = random.Random(0)
        xs = list(range(10, 200, 10))
        ys = [2 * math.log(x) + rng.uniform(-0.1, 0.1) for x in xs]
        fit = fit_logarithmic(xs, ys)
        assert abs(fit.slope - 2.0) < 0.2
        assert fit.r_squared > 0.98

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_logarithmic([2], [1])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            fit_logarithmic([5, 5], [1, 2])

    def test_is_logarithmic_growth(self):
        xs = [4, 8, 16, 32, 64, 128]
        log_ys = [5 * math.log(x) for x in xs]
        assert is_logarithmic_growth(xs, log_ys)
        # a linear series fits ln poorly over a wide range
        lin_ys = [3 * x for x in xs]
        assert not is_logarithmic_growth(xs, lin_ys)

    def test_ratio_stability(self):
        xs = [10, 100, 1000]
        ys = [0.5 * math.log(x) for x in xs]
        lo, hi = ratio_stability(xs, ys)
        assert lo == pytest.approx(0.5) and hi == pytest.approx(0.5)


class TestLinearFit:
    def test_exact_line(self):
        a, b, r2 = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert a == pytest.approx(2.0) and b == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_flat_series(self):
        a, b, r2 = fit_linear([1, 2, 3], [4, 4, 4])
        assert a == pytest.approx(0.0)
        assert r2 == pytest.approx(1.0)


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["n", "value"], [[8, 0.5], [128, 12345.678]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("n")
        assert "1.235e+04" in out or "12345" in out

    def test_render_empty(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_print_table_smoke(self, capsys):
        print_table("demo", ["x"], [[1], [2]])
        captured = capsys.readouterr().out
        assert "== demo ==" in captured
        assert "1" in captured
