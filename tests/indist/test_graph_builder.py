"""Tests for the indistinguishability graph builders (Definition 3.6)."""

import pytest

from repro.core import BCC1_KT0, ConstantAlgorithm, NodeAlgorithm, Simulator, YES
from repro.indist import (
    all_two_cycle_covers_present,
    build_combinatorial_graph,
    build_operational_graph,
    cover_from_edges,
    cross_cover,
    crossing_neighbors,
    one_cycle_degree,
    one_cycle_two_cycle_neighbors,
)
from repro.instances import (
    CycleCover,
    count_one_cycle_covers,
    count_two_cycle_covers,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
)


def _canonical_cycle(n):
    return CycleCover.from_cycles(n, (tuple(range(n)),))


class TestCoverCrossing:
    def test_cover_from_edges(self):
        edges = {(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (3, 5)}
        cover = cover_from_edges(6, edges)
        assert cover.num_cycles == 2
        assert cover.cycle_lengths() == (3, 3)

    def test_cross_cover_splits(self):
        cover = _canonical_cycle(8)
        crossed = cross_cover(cover, (0, 1), (4, 5))
        assert crossed is not None
        assert crossed.cycle_lengths() == (4, 4)

    def test_cross_cover_rejects_dependent(self):
        cover = _canonical_cycle(8)
        assert cross_cover(cover, (0, 1), (1, 2)) is None
        assert cross_cover(cover, (0, 1), (2, 3)) is None

    def test_cross_cover_rejects_non_edges(self):
        cover = _canonical_cycle(8)
        assert cross_cover(cover, (0, 2), (4, 5)) is None

    def test_reversal_crossing_keeps_one_cycle(self):
        cover = _canonical_cycle(8)
        crossed = cross_cover(cover, (0, 1), (4, 3))
        assert crossed is not None
        assert crossed.num_cycles == 1

    def test_neighbors_include_both_kinds(self):
        cover = _canonical_cycle(8)
        nbrs = crossing_neighbors(cover)
        kinds = {c.num_cycles for c in nbrs}
        assert kinds == {1, 2}

    def test_two_cycle_neighbor_count_formula(self):
        for n in (7, 8, 9, 10):
            cover = _canonical_cycle(n)
            assert len(one_cycle_two_cycle_neighbors(cover)) == one_cycle_degree(n)


class TestCombinatorialGraph:
    @pytest.mark.parametrize("n", [6, 7])
    def test_sides_complete(self, n):
        g = build_combinatorial_graph(n)
        assert len(g.left) == count_one_cycle_covers(n)
        assert len(g.right) == count_two_cycle_covers(n)
        assert all_two_cycle_covers_present(g, n)

    def test_left_degrees_uniform(self):
        n = 7
        g = build_combinatorial_graph(n)
        degs = {g.degree(v) for v in g.left}
        assert degs == {one_cycle_degree(n)}

    def test_edge_count_consistent(self):
        n = 7
        g = build_combinatorial_graph(n)
        assert g.edge_count() == count_one_cycle_covers(n) * one_cycle_degree(n)

    def test_edges_are_crossings(self):
        n = 6
        g = build_combinatorial_graph(n)
        for one in list(g.left)[:10]:
            for two in g.neighbors(one):
                # symmetric difference is exactly two old + two new edges
                assert len(one.edges - two.edges) == 2
                assert len(two.edges - one.edges) == 2


class _SpeakOnce(NodeAlgorithm):
    """Round 1: broadcast 1; silent afterwards. Keeps everything symmetric."""

    def broadcast(self, t):
        return "1" if t == 1 else ""

    def receive(self, t, messages):
        pass

    def output(self):
        return YES


class _IdParity(NodeAlgorithm):
    """Breaks symmetry: broadcasts the parity of the vertex ID each round."""

    def broadcast(self, t):
        return str(self.knowledge.vertex_id % 2)

    def receive(self, t, messages):
        pass

    def output(self):
        return YES


class TestOperationalGraph:
    def test_symmetric_algorithm_keeps_full_graph(self):
        n, t = 6, 2
        sim = Simulator(BCC1_KT0)
        x = y = ("1", "")
        g = build_operational_graph(sim, _SpeakOnce, n, t, x, y)
        full = build_combinatorial_graph(n)
        assert g.edge_count() == full.edge_count()
        assert {v for v in g.left} == {v for v in full.left}

    def test_wrong_strings_give_empty_graph(self):
        n, t = 6, 2
        sim = Simulator(BCC1_KT0)
        g = build_operational_graph(sim, _SpeakOnce, n, t, ("0", "0"), ("0", "0"))
        assert g.edge_count() == 0

    def test_asymmetric_algorithm_shrinks_graph(self):
        n, t = 6, 1
        sim = Simulator(BCC1_KT0)
        # only odd-ID heads with even-ID tails are active for x=("1",), y=("0",)
        # (same-parity pairs cannot yield two disjoint active edges at n = 6:
        # there are only three vertices of each parity)
        g = build_operational_graph(sim, _IdParity, n, t, ("1",), ("0",))
        full = build_combinatorial_graph(n)
        assert 0 < g.edge_count() < full.edge_count()

    def test_operational_edges_subset_of_combinatorial(self):
        n, t = 6, 1
        sim = Simulator(BCC1_KT0)
        g = build_operational_graph(sim, _IdParity, n, t, ("1",), ("0",))
        full = build_combinatorial_graph(n)
        for one in g.left:
            assert g.neighbors(one) <= full.neighbors(one)
