"""Tests for the Hopcroft-Karp matching engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indist import (
    BipartiteGraph,
    hopcroft_karp,
    is_valid_matching,
    maximum_matching_size,
)


def _graph_from_edges(edges):
    g = BipartiteGraph()
    for l, r in edges:
        g.add_edge(("L", l), ("R", r))
    return g


class TestBipartiteGraph:
    def test_counts(self):
        g = _graph_from_edges([(0, 0), (0, 1), (1, 1)])
        assert len(g.left) == 2 and len(g.right) == 2
        assert g.edge_count() == 3

    def test_neighborhood(self):
        g = _graph_from_edges([(0, 0), (0, 1), (1, 1), (2, 2)])
        assert g.neighborhood([("L", 0), ("L", 1)]) == {("R", 0), ("R", 1)}

    def test_isolated_left(self):
        g = BipartiteGraph()
        g.add_left("lonely")
        assert g.degree("lonely") == 0
        assert maximum_matching_size(g) == 0


class TestHopcroftKarp:
    def test_perfect_matching(self):
        g = _graph_from_edges([(i, i) for i in range(5)])
        m = hopcroft_karp(g)
        assert len(m) == 5
        assert is_valid_matching(g, m)

    def test_augmenting_path_needed(self):
        # greedy could match L0-R0 and strand L1; HK must find size 2
        g = _graph_from_edges([(0, 0), (0, 1), (1, 0)])
        m = hopcroft_karp(g)
        assert len(m) == 2
        assert is_valid_matching(g, m)

    def test_deficiency(self):
        # three left vertices share one right vertex
        g = _graph_from_edges([(0, 0), (1, 0), (2, 0)])
        assert maximum_matching_size(g) == 1

    def test_complete_bipartite(self):
        g = _graph_from_edges([(l, r) for l in range(4) for r in range(6)])
        assert maximum_matching_size(g) == 4

    def test_empty(self):
        assert hopcroft_karp(BipartiteGraph()) == {}

    def test_is_valid_matching_rejects_shared_right(self):
        g = _graph_from_edges([(0, 0), (1, 0)])
        assert not is_valid_matching(g, {("L", 0): ("R", 0), ("L", 1): ("R", 0)})

    def test_is_valid_matching_rejects_non_edge(self):
        g = _graph_from_edges([(0, 0)])
        assert not is_valid_matching(g, {("L", 0): ("R", 1)})


def _brute_force_max_matching(edges):
    """Exponential reference matcher for small graphs."""
    best = 0
    edges = list(edges)

    def rec(i, used_l, used_r, size):
        nonlocal best
        best = max(best, size)
        if i == len(edges):
            return
        l, r = edges[i]
        rec(i + 1, used_l, used_r, size)
        if l not in used_l and r not in used_r:
            rec(i + 1, used_l | {l}, used_r | {r}, size + 1)

    rec(0, frozenset(), frozenset(), 0)
    return best


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=0,
        max_size=14,
        unique=True,
    )
)
@settings(max_examples=80, deadline=None)
def test_hk_matches_brute_force(edges):
    g = _graph_from_edges(edges)
    assert maximum_matching_size(g) == _brute_force_max_matching(
        [(("L", l), ("R", r)) for l, r in set(edges)]
    )
