"""Exact validation of the counting lemmas 3.7 and 3.9 at small n."""

import math
import random

import pytest

from repro.indist import (
    build_combinatorial_graph,
    hall_expansion_curve,
    harmonic,
    lemma_3_9_table,
    measured_one_cycle_degree,
    measured_split_population,
    measured_two_cycle_degree,
    one_cycle_degree,
    one_cycle_neighbor_split_counts,
    predicted_split_counts,
    predicted_v2_v1_ratio,
    split_population_bound,
    two_cycle_degree,
)
from repro.instances import (
    count_one_cycle_covers,
    count_two_cycle_covers,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
)


class TestOneCycleDegrees:
    @pytest.mark.parametrize("n", [7, 8, 9, 10])
    def test_exact_degree_formula(self, n):
        for cover in list(enumerate_one_cycle_covers(n))[:5]:
            assert measured_one_cycle_degree(cover) == one_cycle_degree(n)

    @pytest.mark.parametrize("n", [8, 9, 10])
    def test_split_profile_lemma_3_7(self, n):
        """Each one-cycle cover has n two-cycle neighbors per split i < n/2
        and n/2 for i = n/2; this is the per-i neighbor count behind
        Lemma 3.7 (with d = n at t = 0)."""
        cover = next(enumerate_one_cycle_covers(n))
        measured = one_cycle_neighbor_split_counts(cover)
        predicted = predicted_split_counts(n)
        # splits at distance < 3 from both ends cannot occur
        assert measured == {
            i: c for i, c in predicted.items() if i >= 3 and n - i >= 3
        }

    def test_degree_counts_sum(self):
        n = 9
        cover = next(enumerate_one_cycle_covers(n))
        assert sum(one_cycle_neighbor_split_counts(cover).values()) == one_cycle_degree(n)


class TestTwoCycleDegrees:
    @pytest.mark.parametrize("n", [7, 8, 9])
    def test_degree_2i_n_minus_i(self, n):
        """Measured two-cycle degree is 2 i (n - i): each unordered pair of
        edges in different cycles admits two orientation variants. (The
        paper's Lemma 3.9 quotes i (n - i), an orientation-fixed count;
        the factor 2 cancels in every Theta().)"""
        seen_splits = set()
        for cover in enumerate_two_cycle_covers(n):
            i = cover.cycle_lengths()[0]
            if i in seen_splits:
                continue
            seen_splits.add(i)
            assert measured_two_cycle_degree(cover) == two_cycle_degree(n, i)

    def test_population_bound_lemma_3_9(self):
        """|T_i| <= |V1| * n / (i (n - i)) for every split."""
        for n in (8, 9, 10, 12):
            for i in range(3, n // 2 + 1):
                if n - i < 3:
                    continue
                assert measured_split_population(n, i) <= split_population_bound(n, i)


class TestLemma39Ratio:
    def test_exact_ratio_small(self):
        for n in (8, 9, 10):
            v1 = count_one_cycle_covers(n)
            v2 = count_two_cycle_covers(n)
            assert predicted_v2_v1_ratio(n) == pytest.approx(v2 / v1)

    def test_ratio_is_theta_log_n(self):
        """|V2|/|V1| divided by ln n settles between constants (-> 1/2)."""
        for n in (100, 1000, 10000):
            ratio = predicted_v2_v1_ratio(n)
            assert 0.25 * math.log(n) < ratio < 0.55 * math.log(n)

    def test_table_rows(self):
        rows = lemma_3_9_table([8, 10])
        assert rows[0][0] == 8
        assert rows[0][1] == count_one_cycle_covers(8)
        assert rows[0][2] == count_two_cycle_covers(8)

    def test_harmonic(self):
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)


class TestHallExpansion:
    def test_expansion_positive_on_full_graph(self):
        """Lemma 3.8 direction: at t=0 every subset of V1 expands; measured
        min |N(S)|/|S| over sampled subsets is strictly positive and grows
        as subsets shrink."""
        g = build_combinatorial_graph(7)
        rng = random.Random(1)
        curve = hall_expansion_curve(g, [1, 5, 20], rng)
        assert all(value > 0 for _size, value in curve)
        # singletons see the full one-cycle degree
        assert curve[0][1] == one_cycle_degree(7)
