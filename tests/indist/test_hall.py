"""Tests for polygamous Hall's theorem and k-matchings (Theorem 2.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indist import (
    BipartiteGraph,
    all_subsets_satisfy_hall,
    cloned_graph,
    hall_condition_violations,
    is_valid_k_matching,
    k_matching,
    k_matching_size,
    max_saturating_k,
    sampled_hall_check,
    saturates,
)


def _graph(edges):
    g = BipartiteGraph()
    for l, r in edges:
        g.add_edge(l, r)
    return g


class TestCloning:
    def test_clone_counts(self):
        g = _graph([("a", 1), ("a", 2), ("b", 2)])
        c = cloned_graph(g, 3)
        assert len(c.left) == 6
        assert c.neighbors(("a", 0)) == {1, 2}
        assert c.neighbors(("b", 2)) == {2}

    def test_bad_k(self):
        with pytest.raises(ValueError):
            cloned_graph(_graph([]), 0)


class TestKMatching:
    def test_k1_is_ordinary_matching(self):
        g = _graph([(l, r) for l in "ab" for r in (1, 2)])
        stars = k_matching(g, 1)
        assert len(stars) == 2
        assert is_valid_k_matching(g, 1, stars)

    def test_k2_complete(self):
        g = _graph([(l, r) for l in "ab" for r in (1, 2, 3, 4)])
        stars = k_matching(g, 2)
        assert len(stars) == 2
        assert is_valid_k_matching(g, 2, stars)

    def test_k2_insufficient_rights(self):
        g = _graph([(l, r) for l in "abc" for r in (1, 2, 3, 4, 5)])
        assert k_matching_size(g, 2) == 2  # 5 rights can host only 2 full stars

    def test_partial_stars_discarded(self):
        g = _graph([("a", 1), ("a", 2), ("a", 3)])
        stars = k_matching(g, 4)
        assert stars == {}

    def test_saturates(self):
        g = _graph([(l, r) for l in "ab" for r in range(6)])
        assert saturates(g, 3)
        assert not saturates(g, 4)

    def test_max_saturating_k(self):
        g = _graph([(l, r) for l in "ab" for r in range(6)])
        assert max_saturating_k(g) == 3

    def test_max_saturating_k_zero(self):
        g = BipartiteGraph()
        g.add_left("isolated")
        assert max_saturating_k(g) == 0

    def test_max_saturating_k_empty(self):
        assert max_saturating_k(BipartiteGraph()) == 0


class TestHallCondition:
    def test_violations_found(self):
        g = _graph([("a", 1), ("b", 1)])
        violations = hall_condition_violations(g, 1, [["a", "b"]])
        assert violations == [(("a", "b"), 1)]

    def test_exhaustive_check_positive(self):
        g = _graph([(l, r) for l in "abc" for r in range(9)])
        assert all_subsets_satisfy_hall(g, 3)
        assert not all_subsets_satisfy_hall(g, 4)

    def test_exhaustive_check_too_large(self):
        g = _graph([(i, i) for i in range(25)])
        with pytest.raises(ValueError):
            all_subsets_satisfy_hall(g, 1)

    def test_sampled_check(self):
        rng = random.Random(0)
        g = _graph([("a", 1), ("b", 1)])
        violations = sampled_hall_check(g, 1, rng, samples=100)
        assert violations  # the {a, b} subset is found with high probability


class TestTheorem21:
    """Empirical verification of Theorem 2.1: Hall condition at level k
    implies a k-matching of size |L| (and the converse, which also holds)."""

    @given(
        k=st.integers(min_value=1, max_value=3),
        edges=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 11)),
            min_size=1,
            max_size=30,
            unique=True,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_hall_iff_saturating_k_matching(self, k, edges):
        g = _graph([((("L", l), ("R", r))) for l, r in edges])
        hall = all_subsets_satisfy_hall(g, k)
        sat = saturates(g, k)
        assert hall == sat

    @given(
        k=st.integers(min_value=1, max_value=3),
        edges=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 11)),
            min_size=1,
            max_size=30,
            unique=True,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_returned_stars_always_valid(self, k, edges):
        g = _graph([((("L", l), ("R", r))) for l, r in edges])
        stars = k_matching(g, k)
        assert is_valid_k_matching(g, k, stars)
