"""Tests for the 2-party problem definitions."""

import pytest

from repro.partitions import SetPartition
from repro.twoparty import (
    PartitionCompProblem,
    PartitionProblem,
    TwoPartitionProblem,
)


def sp(n, text):
    return SetPartition.from_string(n, text)


class TestPartitionProblem:
    problem = PartitionProblem(5)

    def test_answer_positive(self):
        pa = sp(5, "(1,2)(3,4)(5)")
        pc = sp(5, "(1,2,4)(3,5)")
        assert self.problem.answer(pa, pc) == 1

    def test_answer_negative(self):
        pa = sp(5, "(1,2)(3,4)(5)")
        pb = sp(5, "(1,2,4)(3)(5)")
        assert self.problem.answer(pa, pb) == 0

    def test_valid_input(self):
        assert self.problem.valid_input(sp(5, "(1,2,3,4,5)"), SetPartition.finest(5))
        assert not self.problem.valid_input(SetPartition.finest(4), SetPartition.finest(5))


class TestTwoPartitionProblem:
    def test_odd_ground_set_rejected(self):
        with pytest.raises(ValueError):
            TwoPartitionProblem(5)

    def test_valid_input_requires_matchings(self):
        problem = TwoPartitionProblem(4)
        assert problem.valid_input(sp(4, "(1,2)(3,4)"), sp(4, "(1,3)(2,4)"))
        assert not problem.valid_input(sp(4, "(1,2,3)(4)"), sp(4, "(1,3)(2,4)"))

    def test_answer(self):
        problem = TwoPartitionProblem(4)
        assert problem.answer(sp(4, "(1,2)(3,4)"), sp(4, "(1,3)(2,4)")) == 1
        assert problem.answer(sp(4, "(1,2)(3,4)"), sp(4, "(1,2)(3,4)")) == 0


class TestPartitionCompProblem:
    problem = PartitionCompProblem(5)

    def test_answer_is_join(self):
        pa = sp(5, "(1,2)(3,4)(5)")
        pb = sp(5, "(1,2,4)(3)(5)")
        assert self.problem.answer(pa, pb) == sp(5, "(1,2,3,4)(5)")

    def test_correct_checker(self):
        pa = sp(5, "(1,2)(3,4)(5)")
        pb = sp(5, "(1,2,4)(3)(5)")
        assert self.problem.correct(pa, pb, sp(5, "(1,2,3,4)(5)"))
        assert not self.problem.correct(pa, pb, SetPartition.coarsest(5))
