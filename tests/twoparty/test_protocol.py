"""Tests for the two-party protocol framework."""

import pytest

from repro.errors import ProtocolError
from repro.twoparty import (
    ALICE,
    BOB,
    ProtocolResult,
    Turn,
    TwoPartyProtocol,
    decode_int,
    encode_int,
)


class PingPong(TwoPartyProtocol):
    """Alice sends her number, Bob replies with the XOR; both output it."""

    def next_speaker(self, turns):
        return [ALICE, BOB][len(turns)] if len(turns) < 2 else None

    def message(self, speaker, own_input, turns):
        if speaker == ALICE:
            return encode_int(own_input, 8)
        return encode_int(own_input ^ decode_int(turns[0].bits), 8)

    def alice_output(self, alice_input, turns):
        return decode_int(turns[1].bits)

    def bob_output(self, bob_input, turns):
        return bob_input ^ decode_int(turns[0].bits)


class Forever(TwoPartyProtocol):
    max_turns = 50

    def next_speaker(self, turns):
        return ALICE

    def message(self, speaker, own_input, turns):
        return "0"

    def alice_output(self, a, t):
        return None

    def bob_output(self, b, t):
        return None


class TestTurn:
    def test_valid(self):
        t = Turn(ALICE, "0101")
        assert t.speaker == ALICE and t.bits == "0101"

    def test_bad_speaker(self):
        with pytest.raises(ProtocolError):
            Turn("carol", "0")

    def test_bad_bits(self):
        with pytest.raises(ProtocolError):
            Turn(BOB, "2")


class TestRun:
    def test_ping_pong(self):
        res = PingPong().run(0b1100, 0b1010)
        assert res.alice_output == res.bob_output == 0b0110
        assert res.total_bits == 16
        assert res.alice_bits == 8 and res.bob_bits == 8
        assert res.rounds == 2

    def test_transcript_string(self):
        res = PingPong().run(1, 2)
        s = res.transcript_string()
        assert s.startswith("a:") and "|b:" in s

    def test_non_terminating_protocol_caught(self):
        with pytest.raises(ProtocolError):
            Forever().run(None, None)


class TestEncoding:
    def test_round_trip(self):
        assert decode_int(encode_int(37, 7)) == 37

    def test_width_enforced(self):
        with pytest.raises(ProtocolError):
            encode_int(128, 7)

    def test_empty_decodes_zero(self):
        assert decode_int("") == 0
