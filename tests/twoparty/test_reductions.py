"""Tests for the Section 4.2 reduction graphs and Theorem 4.3."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitions import (
    SetPartition,
    enumerate_partitions,
    enumerate_perfect_matchings,
    random_partition,
    random_perfect_matching,
)
from repro.problems import MultiCycle
from repro.twoparty import (
    build_partition_reduction,
    build_two_partition_reduction,
    paper_id,
    to_kt1_instance,
)


def sp(n, text):
    return SetPartition.from_string(n, text)


class TestFigure2Examples:
    """The exact inputs drawn in Figure 2 of the paper."""

    def test_left_figure(self):
        pa = sp(8, "(1,2,3)(4,5,6)(7,8)")
        pb = sp(8, "(1,2,6)(3,4,7)(5,8)")
        red = build_partition_reduction(pa, pb)
        join = pa.join(pb)
        assert red.induced_partition_on_l() == join
        assert red.induced_partition_on_r() == join
        # (1,2,3,4,5,6,7,8): the join is trivial, so G must be connected
        assert join.is_coarsest() and red.is_connected()

    def test_right_figure(self):
        pa = sp(8, "(1,2)(3,4)(5,6)(7,8)")
        pb = sp(8, "(1,3)(2,4)(5,7)(6,8)")
        red = build_two_partition_reduction(pa, pb)
        assert red.graph.is_regular(2)
        join = pa.join(pb)
        assert red.induced_partition_on_l() == join
        assert not join.is_coarsest() and not red.is_connected()


class TestPartitionReduction:
    def test_vertex_count(self):
        pa = sp(4, "(1,2)(3,4)")
        red = build_partition_reduction(pa, pa)
        assert red.graph.vertex_count == 16  # 4n

    def test_rungs_always_present(self):
        pa = sp(5, "(1,2,3,4,5)")
        pb = SetPartition.finest(5)
        red = build_partition_reduction(pa, pb)
        for i in range(1, 6):
            assert red.graph.has_edge(("l", i), ("r", i))

    def test_unused_owner_vertices_anchor(self):
        # one-part partition uses a_1 only; a_2..a_n attach to l* = l_n
        pa = sp(4, "(1,2,3,4)")
        red = build_partition_reduction(pa, SetPartition.finest(4))
        for k in (2, 3, 4):
            assert red.graph.has_edge(("a", k), ("l", 4))

    def test_connected_iff_join_trivial_exhaustive_n4(self):
        parts = list(enumerate_partitions(4))
        for pa in parts[::3]:
            for pb in parts[::4]:
                red = build_partition_reduction(pa, pb)
                assert red.is_connected() == pa.join(pb).is_coarsest()

    @given(st.integers(0, 10_000), st.integers(min_value=3, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_theorem_4_3_property(self, seed, n):
        rng = random.Random(seed)
        pa = random_partition(n, rng)
        pb = random_partition(n, rng)
        red = build_partition_reduction(pa, pb)
        assert red.induced_partition_on_l() == pa.join(pb)
        assert red.induced_partition_on_r() == pa.join(pb)

    def test_mismatched_ground_sets(self):
        with pytest.raises(ValueError):
            build_partition_reduction(SetPartition.finest(3), SetPartition.finest(4))


class TestTwoPartitionReduction:
    def test_requires_matchings(self):
        with pytest.raises(ValueError):
            build_two_partition_reduction(sp(4, "(1,2,3)(4)"), sp(4, "(1,2)(3,4)"))

    def test_always_2_regular_and_long_cycles(self):
        problem = MultiCycle()
        rng = random.Random(7)
        for _ in range(10):
            pa = random_perfect_matching(8, rng)
            pb = random_perfect_matching(8, rng)
            red = build_two_partition_reduction(pa, pb)
            assert red.graph.is_regular(2)
            lengths = [len(c) for c in red.graph.cycle_decomposition()]
            assert all(l >= 4 for l in lengths)
            assert all(l % 2 == 0 for l in lengths)  # rungs alternate sides

    @given(st.integers(0, 10_000), st.sampled_from([4, 6, 8]))
    @settings(max_examples=40, deadline=None)
    def test_theorem_4_3_on_matchings(self, seed, n):
        rng = random.Random(seed)
        pa = random_perfect_matching(n, rng)
        pb = random_perfect_matching(n, rng)
        red = build_two_partition_reduction(pa, pb)
        assert red.induced_partition_on_l() == pa.join(pb)

    def test_exhaustive_n4(self):
        matchings = list(enumerate_perfect_matchings(4))
        for pa in matchings:
            for pb in matchings:
                red = build_two_partition_reduction(pa, pb)
                assert red.is_connected() == pa.join(pb).is_coarsest()


class TestKT1Conversion:
    def test_ids_follow_paper_scheme(self):
        pa = sp(4, "(1,2)(3,4)")
        pb = sp(4, "(1,3)(2,4)")
        hosted = to_kt1_instance(build_two_partition_reduction(pa, pb))
        inst = hosted.instance
        assert inst.n == 8
        # l_i -> n + i, r_i -> 2n + i
        for idx, (kind, i) in enumerate(hosted.name_of_index):
            assert inst.vertex_id(idx) == paper_id(kind, i, 4)

    def test_hosting_split(self):
        pa = sp(4, "(1,2)(3,4)")
        hosted = to_kt1_instance(build_partition_reduction(pa, pa))
        assert len(hosted.alice_indices) == 8  # A + L
        assert len(hosted.bob_indices) == 8  # B + R
        assert set(hosted.alice_indices) | set(hosted.bob_indices) == set(range(16))
        for idx in hosted.alice_indices:
            kind, _ = hosted.name_of_index[idx]
            assert kind in ("a", "l")

    def test_instance_edges_match_graph(self):
        pa = sp(4, "(1,2)(3,4)")
        pb = sp(4, "(1,4)(2,3)")
        red = build_two_partition_reduction(pa, pb)
        hosted = to_kt1_instance(red)
        index_of = {name: i for i, name in enumerate(hosted.name_of_index)}
        expected = {
            frozenset((index_of[u], index_of[v])) for u, v in red.graph.edges()
        }
        actual = {frozenset(e) for e in hosted.instance.input_edges}
        assert actual == expected
