"""Tests for combinatorial rectangle structure of deterministic protocols."""

import pytest

from repro.partitions import SetPartition, enumerate_partitions, joins_to_top
from repro.twoparty import (
    ALICE,
    BOB,
    TrivialPartitionProtocol,
    TwoPartyProtocol,
    all_classes_are_rectangles,
    encode_int,
    is_rectangle,
    partition_is_monochromatic,
    rectangle_count_bound,
    transcript_partition,
    verify_rectangle_structure,
    worst_case_bits,
)


class TestIsRectangle:
    def test_product_set(self):
        pairs = {(x, y) for x in "ab" for y in (1, 2, 3)}
        assert is_rectangle(pairs)

    def test_missing_corner(self):
        pairs = {("a", 1), ("a", 2), ("b", 1)}
        assert not is_rectangle(pairs)

    def test_singleton(self):
        assert is_rectangle({("x", "y")})


class _XorBit(TwoPartyProtocol):
    """Both send their bit; output is the XOR (a classic tiny protocol)."""

    def next_speaker(self, turns):
        return [ALICE, BOB][len(turns)] if len(turns) < 2 else None

    def message(self, speaker, own_input, turns):
        return str(own_input)

    def alice_output(self, a, turns):
        return int(turns[0].bits) ^ int(turns[1].bits)

    def bob_output(self, b, turns):
        return int(turns[0].bits) ^ int(turns[1].bits)


class TestTranscriptPartition:
    def test_xor_protocol_rectangles(self):
        xs = ys = [0, 1]
        partition = transcript_partition(_XorBit(), xs, ys)
        assert len(partition) == 4  # all four transcripts distinct
        assert all_classes_are_rectangles(partition)
        assert partition_is_monochromatic(partition, lambda x, y: x ^ y)

    def test_class_count_respects_bit_bound(self):
        xs = ys = [0, 1]
        partition = transcript_partition(_XorBit(), xs, ys)
        assert len(partition) <= rectangle_count_bound(worst_case_bits(_XorBit(), xs, ys))


class TestPartitionProtocolStructure:
    def test_trivial_partition_protocol_rectangles(self):
        """The O(n log n) Partition protocol's transcript classes are
        monochromatic rectangles on the full B_4 x B_4 grid -- the exact
        structure the rank bound counts."""
        n = 4
        parts = list(enumerate_partitions(n))
        proto = TrivialPartitionProtocol(n)
        rect_ok, mono_ok, classes, bound = verify_rectangle_structure(
            proto, parts, parts, lambda pa, pb: 1 if joins_to_top(pa, pb) else 0
        )
        assert rect_ok
        assert mono_ok
        assert classes <= bound

    def test_rank_needs_many_rectangles(self):
        """rank(M_4) = 15 forces > log2(15) bits: with fewer bits the
        protocol could not generate enough transcript classes to cover 15
        linearly independent rows. Verified numerically: the measured
        class count must be >= the 1-entries' rectangle demand implied by
        the rank (>= rank for a partition into monochromatic rectangles
        covering a full-rank matrix, counting both colors)."""
        import math

        from repro.partitions import bell_number

        n = 4
        parts = list(enumerate_partitions(n))
        proto = TrivialPartitionProtocol(n)
        partition = transcript_partition(proto, parts, parts)
        # a monochromatic-rectangle partition of a full-rank 0/1 matrix
        # needs at least rank(M) rectangles in total
        assert len(partition) >= bell_number(n)
        assert worst_case_bits(proto, parts, parts) >= math.log2(bell_number(n))


class _LeakyProtocol(TwoPartyProtocol):
    """A broken 'protocol' whose message depends on the OTHER party's
    input (smuggled via a closure) -- its classes are NOT rectangles.
    Serves as a negative control for the rectangle checker."""

    def __init__(self):
        self.last_bob = None

    def next_speaker(self, turns):
        return [BOB, ALICE][len(turns)] if len(turns) < 2 else None

    def message(self, speaker, own_input, turns):
        if speaker == BOB:
            self.last_bob = own_input
            return ""  # says nothing, but we cheat below
        return str(own_input ^ self.last_bob)  # depends on both inputs!

    def alice_output(self, a, turns):
        return None

    def bob_output(self, b, turns):
        return None


class TestNegativeControl:
    def test_leaky_protocol_breaks_rectangles(self):
        partition = transcript_partition(_LeakyProtocol(), [0, 1], [0, 1])
        assert not all_classes_are_rectangles(partition)
