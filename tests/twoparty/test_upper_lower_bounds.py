"""Tests for the trivial protocols and the CC lower-bound calculators."""

import math
import random

import pytest

from repro.partitions import (
    SetPartition,
    bell_number,
    build_e_matrix,
    enumerate_partitions,
    enumerate_perfect_matchings,
    random_partition,
)
from repro.twoparty import (
    LossyPartitionCompProtocol,
    TrivialPartitionCompProtocol,
    TrivialPartitionProtocol,
    decode_partition,
    encode_partition,
    fooling_set_lower_bound,
    is_fooling_set,
    rank_lower_bound,
    rgs_bit_width,
    verify_rank_bound_on_protocol,
)


class TestPartitionEncoding:
    def test_round_trip(self):
        for p in enumerate_partitions(5):
            assert decode_partition(5, encode_partition(p)) == p

    def test_length(self):
        p = SetPartition.finest(6)
        assert len(encode_partition(p)) == 6 * rgs_bit_width(6)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            decode_partition(4, "0101")


class TestTrivialPartitionProtocol:
    def test_correct_on_all_n4_inputs(self):
        proto = TrivialPartitionProtocol(4)
        parts = list(enumerate_partitions(4))
        for pa in parts:
            for pb in parts[::2]:
                res = proto.run(pa, pb)
                expected = 1 if pa.join(pb).is_coarsest() else 0
                assert res.alice_output == expected
                assert res.bob_output == expected

    def test_communication_is_n_log_n(self):
        n = 8
        proto = TrivialPartitionProtocol(n)
        res = proto.run(SetPartition.finest(n), SetPartition.coarsest(n))
        assert res.total_bits == n * rgs_bit_width(n) + 1

    def test_cost_dominates_rank_bound(self):
        """Cor. 2.4 coherence: measured upper bound >= log2 rank(M_n)."""
        n = 4
        proto = TrivialPartitionProtocol(n)
        parts = list(enumerate_partitions(n))
        from repro.partitions import build_m_matrix

        _, matrix = build_m_matrix(n)
        inputs = [(parts[0], parts[1]), (parts[2], parts[3])]
        bound, worst = verify_rank_bound_on_protocol(proto, inputs, matrix)
        assert bound == pytest.approx(math.log2(bell_number(n)))
        assert worst >= bound


class TestTrivialPartitionComp:
    def test_outputs_join(self):
        rng = random.Random(2)
        proto = TrivialPartitionCompProtocol(5)
        for _ in range(10):
            pa, pb = random_partition(5, rng), random_partition(5, rng)
            res = proto.run(pa, pb)
            assert res.alice_output == res.bob_output == pa.join(pb)

    def test_cost(self):
        proto = TrivialPartitionCompProtocol(6)
        res = proto.run(SetPartition.finest(6), SetPartition.finest(6))
        assert res.total_bits == 2 * 6 * rgs_bit_width(6)


class TestLossyProtocol:
    def test_zero_error_is_trivial(self):
        proto = LossyPartitionCompProtocol(4, 0.0)
        pa = SetPartition.from_string(4, "(1,2)(3,4)")
        pb = SetPartition.finest(4)
        assert proto.run(pa, pb).bob_output == pa

    def test_errs_on_roughly_the_requested_fraction(self):
        proto = LossyPartitionCompProtocol(5, 0.4)
        pb = SetPartition.finest(5)
        errors = sum(
            1 for pa in enumerate_partitions(5) if proto.run(pa, pb).bob_output != pa
        )
        rate = errors / bell_number(5)
        assert 0.2 < rate < 0.6

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            LossyPartitionCompProtocol(4, 1.0)


class TestFoolingSets:
    def test_rank_lower_bound(self):
        _, e4 = build_e_matrix(4)
        assert rank_lower_bound(e4) == pytest.approx(math.log2(3))

    def test_rank_lower_bound_zero_matrix(self):
        assert rank_lower_bound([[0, 0], [0, 0]]) == 0.0

    def test_fooling_set_on_two_partition(self):
        """Each perfect matching paired with a 'complementary' matching
        whose join is trivial gives a classic fooling family on small n."""
        matchings = list(enumerate_perfect_matchings(4))

        def f(pa, pb):
            return 1 if pa.join(pb).is_coarsest() else 0

        # pick pairs (P, Q) with f = 1; on n = 4 a matching joined with a
        # *different* matching is always trivial, so pair each with the next
        pairs = [
            (matchings[0], matchings[1]),
            (matchings[1], matchings[2]),
            (matchings[2], matchings[0]),
        ]
        if is_fooling_set(pairs, f):
            assert fooling_set_lower_bound(len(pairs)) == pytest.approx(math.log2(3))
        else:
            # the diagonal-style family must still be checkable without error
            assert isinstance(is_fooling_set(pairs, f), bool)

    def test_is_fooling_set_rejects_non_one_pairs(self):
        def f(x, y):
            return 0

        assert not is_fooling_set([(1, 2)], f)
