"""Tests for the Section 4.3 Alice/Bob simulation of KT-1 BCC algorithms.

The strongest check here: the two-party simulation must reproduce the
*exact* broadcast history of a direct full-instance simulation -- the
parties simulate real vertices, not approximations of them.
"""

import random

import pytest

from repro.core import BCC1_KT1, PublicCoin, Simulator
from repro.algorithms import (
    components_factory,
    connectivity_factory,
    id_bit_width,
    neighbor_exchange_rounds,
    unpack_symbols,
)
from repro.partitions import SetPartition, random_partition, random_perfect_matching
from repro.twoparty import (
    BCCSimulationProtocol,
    build_partition_reduction,
    build_two_partition_reduction,
    rounds_lower_bound_from_cc,
    simulation_bits_per_round,
    to_kt1_instance,
)

SIM1 = Simulator(BCC1_KT1)


def sp(n, text):
    return SetPartition.from_string(n, text)


def _ne_rounds(variant, n):
    if variant == "two_partition":
        return neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    return neighbor_exchange_rounds(1, 4 * n, id_bit_width(4 * n))


class TestSimulationMatchesDirectExecution:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_partition_broadcast_history_identical(self, seed):
        n = 6
        rng = random.Random(seed)
        pa = random_perfect_matching(n, rng)
        pb = random_perfect_matching(n, rng)
        rounds = _ne_rounds("two_partition", n)
        coin = PublicCoin(f"sim-{seed}")

        # direct execution on the fully wired instance
        hosted = to_kt1_instance(build_two_partition_reduction(pa, pb))
        direct = SIM1.run(hosted.instance, components_factory(2), rounds, coin=coin)

        # two-party simulation
        proto = BCCSimulationProtocol(
            "two_partition", components_factory(2), rounds, mode="components", coin=coin
        )
        res = proto.run(pa, pb)

        # decode the per-round symbols from the protocol transcript and
        # compare with the direct broadcast history, vertex by vertex
        id_of_index = [hosted.instance.vertex_id(v) for v in range(hosted.instance.n)]
        alice_ids = sorted(
            hosted.instance.vertex_id(v) for v in hosted.alice_indices
        )
        bob_ids = sorted(hosted.instance.vertex_id(v) for v in hosted.bob_indices)
        for t in range(rounds):
            alice_syms = unpack_symbols(res.turns[2 * t].bits, n)
            bob_syms = unpack_symbols(res.turns[2 * t + 1].bits, n)
            sym_of_id = dict(zip(alice_ids, alice_syms))
            sym_of_id.update(zip(bob_ids, bob_syms))
            for v in range(hosted.instance.n):
                assert direct.broadcast_history[t][v] == sym_of_id[id_of_index[v]]

    def test_components_output_is_the_join(self):
        n = 6
        rng = random.Random(9)
        for _ in range(3):
            pa = random_perfect_matching(n, rng)
            pb = random_perfect_matching(n, rng)
            proto = BCCSimulationProtocol(
                "two_partition",
                components_factory(2),
                _ne_rounds("two_partition", n),
                mode="components",
            )
            res = proto.run(pa, pb)
            assert res.alice_output == pa.join(pb)
            assert res.bob_output == pa.join(pb)

    def test_partition_variant_decision(self):
        n = 4
        rng = random.Random(3)
        w = id_bit_width(4 * n)
        rounds = neighbor_exchange_rounds(1, n + 1, w)
        for _ in range(4):
            pa = random_partition(n, rng)
            pb = random_partition(n, rng)
            proto = BCCSimulationProtocol(
                "partition",
                connectivity_factory(n + 1, id_bits=w),
                rounds,
                mode="decision",
            )
            res = proto.run(pa, pb)
            expected = 1 if pa.join(pb).is_coarsest() else 0
            assert res.alice_output == expected == res.bob_output


class TestCommunicationAccounting:
    def test_bits_per_round_exact(self):
        n = 6
        rounds = 5
        pa = sp(6, "(1,2)(3,4)(5,6)")
        pb = sp(6, "(1,4)(2,5)(3,6)")
        proto = BCCSimulationProtocol(
            "two_partition", components_factory(2), rounds, mode="components"
        )
        res = proto.run(pa, pb)
        assert res.total_bits == rounds * simulation_bits_per_round("two_partition", n)

    def test_decision_mode_adds_two_bits(self):
        n = 4
        rounds = 3
        pa = sp(4, "(1,2)(3,4)")
        proto = BCCSimulationProtocol(
            "partition", connectivity_factory(5), rounds, mode="decision"
        )
        res = proto.run(pa, pa)
        assert res.total_bits == rounds * simulation_bits_per_round("partition", n) + 2

    def test_round_bound_inversion(self):
        # Theorem 4.4 arithmetic: cc / (bits per round)
        assert rounds_lower_bound_from_cc(80.0, "two_partition", 10) == pytest.approx(2.0)
        assert rounds_lower_bound_from_cc(80.0, "partition", 10) == pytest.approx(1.0)


class TestValidation:
    def test_bad_mode(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            BCCSimulationProtocol("partition", connectivity_factory(5), 2, mode="wat")

    def test_two_partition_needs_matchings(self):
        from repro.errors import ProtocolError

        proto = BCCSimulationProtocol(
            "two_partition", components_factory(2), 2, mode="components"
        )
        with pytest.raises(ProtocolError):
            proto.run(sp(4, "(1,2,3)(4)"), sp(4, "(1,2)(3,4)"))
