"""Cross-package integration tests: each theorem's full pipeline.

These tests chain instance construction, simulation, adversaries,
reductions, and information accounting the way the paper's proofs do --
they are the executable versions of the three main results' statements.
"""

import math
import random

import pytest

from repro.core import (
    BCC1_KT0,
    BCC1_KT1,
    BCCModel,
    NO,
    PublicCoin,
    SilentAlgorithm,
    Simulator,
    YES,
    decision_of_run,
    distributional_error,
    labelling_error,
    per_input_error,
)
from repro.algorithms import (
    boruvka_factory,
    boruvka_max_rounds,
    components_factory,
    connectivity_factory,
    full_adjacency_components_factory,
    id_bit_width,
    neighbor_exchange_rounds,
)
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.lowerbounds import (
    adversary_defeats,
    fool_algorithm,
    forced_error_of_algorithm,
    measure_bcc_algorithm_information,
    multicycle_round_bound,
    star_distribution,
    theorem_3_5_error_bound,
    uniform_v1_v2_distribution,
)
from repro.partitions import SetPartition, random_perfect_matching
from repro.problems import ConnectedComponents, Connectivity, TwoCycle
from repro.twoparty import (
    BCCSimulationProtocol,
    build_two_partition_reduction,
    to_kt1_instance,
)

SIM0 = Simulator(BCC1_KT0)
SIM1 = Simulator(BCC1_KT1)


class TestResultOnePipeline:
    """Theorem 3.1 / 3.5 end to end: lower bound vs upper bound at one n."""

    def test_sandwich_at_n12(self):
        n = 12
        schedule = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
        inst = one_cycle_instance(n, kt=0)
        # at t = 1 only one ID bit has been spoken: crossing pairs with
        # matching bit prefixes exist and the adversary provably fools it
        assert adversary_defeats(SIM0, connectivity_factory(2), inst, 1)
        # mid-schedule the ID phase has broken the crossing premise, but
        # the algorithm still cannot answer: it errs on the entire NO side
        dist = star_distribution(n)
        mid_err = distributional_error(
            SIM0, dist, connectivity_factory(2), schedule // 2
        )
        assert mid_err >= 0.25
        # at the full Theta(log n) schedule: zero error on the distribution
        err = distributional_error(SIM0, dist, connectivity_factory(2), schedule)
        assert err == 0.0

    def test_forced_error_matches_measured_error_for_silent(self):
        """The forced-error engine's prediction must be realized by the
        actual distributional error of the same algorithm."""
        n = 6
        forced = forced_error_of_algorithm(SIM0, SilentAlgorithm, n, 2).forced_error
        measured = distributional_error(
            SIM0, uniform_v1_v2_distribution(n), SilentAlgorithm, 2
        )
        assert measured >= forced - 1e-9

    def test_theorem_3_5_bound_respected_by_all_tested_algorithms(self):
        """No tested algorithm beats the closed-form error floor at its
        round budget on the star distribution."""
        n = 15
        for factory, t in [
            (SilentAlgorithm, 1),
            (connectivity_factory(2), 1),
            (connectivity_factory(2), 2),
        ]:
            err = distributional_error(SIM0, star_distribution(n), factory, t)
            assert err >= theorem_3_5_error_bound(n, t) - 1e-9


class TestResultTwoPipeline:
    """Theorem 4.4 end to end: reduction instance, real algorithm, bound."""

    def test_real_algorithm_on_reduction_instance(self):
        rng = random.Random(8)
        n = 8
        pa, pb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
        hosted = to_kt1_instance(build_two_partition_reduction(pa, pb))
        res = SIM1.run_until_done(hosted.instance, connectivity_factory(2), 200)
        expected = YES if pa.join(pb).is_coarsest() else NO
        assert decision_of_run(res) == expected

    def test_measured_rounds_dominate_lower_bound(self):
        for n in (8, 16):
            bound = multicycle_round_bound(n).round_lower_bound
            rng = random.Random(n)
            pa, pb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
            hosted = to_kt1_instance(build_two_partition_reduction(pa, pb))
            res = SIM1.run_until_done(hosted.instance, components_factory(2), 400)
            assert res.rounds_executed >= bound

    def test_simulation_and_direct_decisions_agree(self):
        n = 6
        rng = random.Random(77)
        pa, pb = random_perfect_matching(n, rng), random_perfect_matching(n, rng)
        rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
        proto = BCCSimulationProtocol(
            "two_partition", connectivity_factory(2), rounds, mode="decision"
        )
        res = proto.run(pa, pb)
        hosted = to_kt1_instance(build_two_partition_reduction(pa, pb))
        direct = SIM1.run(hosted.instance, connectivity_factory(2), rounds)
        assert res.alice_output == (1 if decision_of_run(direct) == YES else 0)


class TestResultThreePipeline:
    """Theorem 4.5 end to end: information of a real algorithm >= bound."""

    def test_information_accounting_closes(self):
        n = 4
        w = id_bit_width(4 * n)
        rounds = neighbor_exchange_rounds(1, n + 1, w)
        report = measure_bcc_algorithm_information(
            components_factory(n + 1, id_bits=w), n, rounds
        )
        # the exact chain of Theorem 4.5's proof
        assert report.max_transcript_bits >= report.transcript_entropy
        assert report.transcript_entropy >= report.information - 1e-9
        assert report.information == pytest.approx(
            report.input_entropy - report.residual_entropy, abs=1e-9
        )
        assert report.information == pytest.approx(math.log2(15), abs=1e-9)


class TestMonteCarloSemantics:
    """Randomized (public-coin) algorithms under the epsilon-error regime."""

    @staticmethod
    def _coin_guess_factory():
        """An algorithm that guesses the answer from one public coin flip.

        Correct on any fixed instance with probability exactly 1/2 --
        the boundary of the epsilon-error definition.
        """
        from repro.core import FunctionalAlgorithm

        return lambda: FunctionalAlgorithm(
            broadcast=lambda self, t: "",
            receive=lambda self, t, m: None,
            output=lambda self: YES if self.knowledge.coin.bit("guess") else NO,
        )

    def test_per_input_error_of_coin_guess(self):
        inst = one_cycle_instance(8, kt=0)
        seeds = [f"s{i}" for i in range(60)]
        est = per_input_error(
            SIM0, inst, self._coin_guess_factory(), 1, YES, seeds
        )
        assert 0.25 < est.rate < 0.75

    def test_labelling_error_helper(self):
        problem = ConnectedComponents()
        inst_good = two_cycle_instance(8, 4, kt=1)
        weighted = [(inst_good, 1.0)]
        err = labelling_error(
            SIM1,
            weighted,
            components_factory(2),
            neighbor_exchange_rounds(1, 2, id_bit_width(7)),
            lambda inst, outputs: problem.verify(inst, outputs),
        )
        assert err == 0.0

    def test_private_coins_via_substreams(self):
        """Private coins are modelled by per-vertex substreams: different
        vertices then draw different bits from the same master coin."""
        from repro.core import FunctionalAlgorithm

        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: str(
                    self.knowledge.coin.substream(str(self.knowledge.vertex_id)).bit("b")
                ),
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        inst = one_cycle_instance(10, kt=0)
        res = SIM0.run(inst, factory, 1, coin=PublicCoin("master"))
        assert len(set(res.broadcast_history[0])) == 2  # both bits occur


class TestCrossAlgorithmAgreement:
    """All four upper-bound algorithms agree with ground truth and with
    each other on the same instances."""

    def test_agreement_on_cycles(self):
        n = 12
        problem = Connectivity()
        for inst_builder in (
            lambda: one_cycle_instance(n, kt=1),
            lambda: two_cycle_instance(n, 5, kt=1),
        ):
            inst = inst_builder()
            r_ne = SIM1.run_until_done(inst, connectivity_factory(2), 300)
            r_fa = SIM1.run_until_done(
                inst, full_adjacency_components_factory(), n + 1
            )
            sim_log = Simulator(BCCModel(bandwidth=4, kt=1))
            r_bo = sim_log.run_until_done(inst, boruvka_factory(), boruvka_max_rounds(n))
            assert problem.verify(inst, r_ne.outputs)
            truth_connected = inst.input_graph().is_connected()
            assert (len(set(r_fa.outputs)) == 1) == truth_connected
            assert (len(set(r_bo.outputs)) == 1) == truth_connected
