"""Smoke tests: the shipped examples must run end to end.

Each example's ``main()`` is imported and executed in-process (stdout
captured), so a regression anywhere in the public API surfaces here.
Only the faster examples are exercised to keep the suite quick; the full
set is run by CI-style shell loops (see README).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,expect",
    [
        ("quickstart", "adversary"),
        ("mst_demo", "Kruskal"),
        ("mutual_information_demo", "Theorem 4.5"),
    ],
)
def test_example_runs(capsys, name, expect):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert expect.lower() in out.lower()
    assert "Traceback" not in out


def test_examples_exist_and_have_mains():
    expected = {
        "quickstart",
        "kt0_crossing_adversary",
        "kt1_partition_reduction",
        "mutual_information_demo",
        "sketch_connectivity",
        "sparse_and_verification",
        "mst_demo",
    }
    found = {p.stem for p in EXAMPLES.glob("*.py")}
    assert expected <= found
