"""The paper's headline sandwich, asserted end to end.

Section 1.1's closing claim: the Omega(log n) lower bounds are *tight*
for uniformly sparse graphs. These tests assert the full sandwich with
every component measured, not assumed:

    Thm 4.4 / 4.5 lower bounds  <=  measured upper-bound rounds
    and both sides grow as Theta(log N) (or better on the upper side).
"""

import math
import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, Simulator, YES, decision_of_run
from repro.algorithms import (
    connectivity_factory,
    id_bit_width,
    mt16_connectivity_factory,
    mt16_rounds,
    neighbor_exchange_rounds,
    peeling_round_budget,
)
from repro.instances import one_cycle_instance
from repro.lowerbounds import (
    components_round_bound,
    multicycle_round_bound,
    theorem_3_5_error_bound,
)

SIM1 = Simulator(BCC1_KT1)


class TestSandwich:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_lower_bounds_below_all_upper_bounds(self, n):
        lb_det = multicycle_round_bound(n).round_lower_bound
        lb_mc = components_round_bound(n).round_lower_bound
        uppers = [
            neighbor_exchange_rounds(1, 2, id_bit_width(3 * n)),
            peeling_round_budget(2 * n, 2),
            mt16_rounds(2),
        ]
        for upper in uppers:
            assert lb_det <= upper
            assert lb_mc <= upper

    def test_both_sides_logarithmic(self):
        from repro.analysis import fit_logarithmic

        ns = [8, 16, 32, 64, 128, 256]
        lowers = [multicycle_round_bound(n).round_lower_bound for n in ns]
        uppers = [neighbor_exchange_rounds(1, 2, id_bit_width(3 * n)) for n in ns]
        fit_low = fit_logarithmic(ns, lowers)
        fit_up = fit_logarithmic(ns, uppers)
        assert fit_low.slope > 0 and fit_low.r_squared > 0.95
        assert fit_up.slope > 0 and fit_up.r_squared > 0.9

    def test_measured_upper_bound_actually_runs_at_that_count(self):
        n = 24
        inst = one_cycle_instance(n, kt=1)
        res = SIM1.run_until_done(inst, connectivity_factory(2), 10_000)
        assert res.rounds_executed == neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
        assert decision_of_run(res) == YES

    def test_mt16_run_matches_closed_form(self):
        n = 18
        inst = one_cycle_instance(n, kt=1)
        res = SIM1.run_until_done(
            inst, mt16_connectivity_factory(2), mt16_rounds(2) + 1
        )
        assert res.rounds_executed == mt16_rounds(2)
        assert decision_of_run(res) == YES

    def test_gap_is_constant_factor_in_the_log(self):
        """Upper / lower stays bounded as n grows (no log factor gap)."""
        ratios = []
        for n in (16, 64, 256, 1024):
            lb = multicycle_round_bound(n).round_lower_bound
            ub = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
            ratios.append(ub / lb)
        # ratios should be decreasing-then-flat, never exploding
        assert ratios[-1] < ratios[0]
        assert ratios[-1] < 60


class TestLowerBoundsNeverVacuous:
    def test_thm35_floor_positive_below_threshold(self):
        for k in (6, 8, 10):
            n = 3**k
            t = max(0, k // 4 - 1)  # strictly below the ~log3(n)/4 threshold
            assert theorem_3_5_error_bound(n, t) > 1.0 / n

    def test_thm44_bound_positive_everywhere(self):
        for n in (6, 8, 100, 1000):
            if n % 2 == 0:
                assert multicycle_round_bound(n).round_lower_bound > 0
