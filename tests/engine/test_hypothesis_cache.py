"""Property: cached ≡ recomputed, byte for byte, across workers × kernels.

The ISSUE's acceptance bar for the result cache is *byte* identity, not
structural similarity: whatever (workers, kernel, spec) tuple produced an
entry, a warm read must canonical-JSON-serialize to exactly the bytes a
cold recompute would produce. Hypothesis drives the tuple; every example
gets a fresh cache directory so examples never warm each other.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import ResultCache
from repro.cache.keys import canonical_json
from repro.engine import EngineRequest, execute

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)


@settings(max_examples=6, **COMMON)
@given(
    workers=st.sampled_from([1, 2]),
    kernel=st.sampled_from(["reference", "packed", "auto"]),
    max_n=st.integers(min_value=2, max_value=4),
)
def test_ranks_cached_equals_recomputed(workers, kernel, max_n):
    params = {"m_ns": list(range(1, max_n + 1)), "e_ns": [2, 4]}
    request = EngineRequest("ranks", params, kernel=kernel, workers=workers)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold = execute(request, cache=cache)
        warm = execute(request, cache=cache)
        bare = execute(request)
    assert not cold.cached and warm.cached
    assert canonical_json(warm.payload) == canonical_json(cold.payload)
    assert canonical_json(bare.payload) == canonical_json(cold.payload)


@settings(max_examples=4, **COMMON)
@given(
    cold_workers=st.sampled_from([1, 2]),
    warm_workers=st.sampled_from([1, 2]),
    n=st.integers(min_value=3, max_value=4),
)
def test_exhaustive_cache_is_workers_invariant(cold_workers, warm_workers, n):
    """Any worker count warms the entry; any other worker count hits it."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold = execute(
            EngineRequest("exhaustive", {"n": n}, workers=cold_workers), cache=cache
        )
        warm = execute(
            EngineRequest("exhaustive", {"n": n}, workers=warm_workers), cache=cache
        )
    assert warm.cached and warm.key == cold.key
    assert canonical_json(warm.payload) == canonical_json(cold.payload)


@settings(max_examples=4, **COMMON)
@given(
    workers=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=3),
    trials=st.integers(min_value=1, max_value=2),
)
def test_fault_sweep_cached_equals_recomputed(workers, seed, trials):
    params = {
        "algorithms": ["flooding"],
        "kinds": ["bit_flip", "erasure"],
        "rates": [0.0, 0.1],
        "n": 6,
        "trials": trials,
        "seed": seed,
    }
    request = EngineRequest("fault-sweep", params, workers=workers)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold = execute(request, cache=cache)
        warm = execute(request, cache=cache)
        bare = execute(request)
    assert warm.cached
    assert canonical_json(warm.payload) == canonical_json(cold.payload)
    assert canonical_json(bare.payload) == canonical_json(cold.payload)
