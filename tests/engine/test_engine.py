"""The engine seam: dispatch parity with the legacy layers, cache semantics."""

import json

import pytest

from repro.cache import ResultCache
from repro.cache.keys import canonical_json
from repro.engine import (
    CACHEABLE_KINDS,
    ENGINE_KINDS,
    EngineOptions,
    EngineRequest,
    execute,
    normalize_params,
)
from repro.errors import EngineError


class TestDispatchParity:
    """execute() returns exactly what the legacy call paths computed."""

    def test_exhaustive_matches_direct_call(self):
        from repro.lowerbounds import universal_bound_id_oblivious

        result = execute(EngineRequest("exhaustive", {"n": 4}))
        report = universal_bound_id_oblivious(4)
        assert result.payload == {
            "n": 4,
            "class_size": report.class_size,
            "minimum_forced_error": report.minimum_forced_error,
            "worst_assignment": list(report.worst_assignment),
            "is_constant": report.is_constant,
        }
        assert not result.cached and result.key is None

    def test_ranks_grid_matches_direct_ranks(self):
        from repro.partitions import bell_number, perfect_matching_count
        from repro.partitions.matrices import e_matrix_rank, m_matrix_rank

        result = execute(EngineRequest("ranks", {"m_ns": [1, 2, 3], "e_ns": [2, 4]}))
        assert result.payload["m_rows"] == [
            {"n": n, "rank": m_matrix_rank(n), "predicted": bell_number(n)}
            for n in (1, 2, 3)
        ]
        assert result.payload["e_rows"] == [
            {"n": n, "rank": e_matrix_rank(n), "predicted": perfect_matching_count(n)}
            for n in (2, 4)
        ]

    def test_fault_sweep_matches_direct_call_with_zeroed_clock(self):
        from repro.resilience import fault_sweep

        params = {
            "algorithms": ["flooding"],
            "kinds": ["bit_flip"],
            "rates": [0.0, 0.1],
            "n": 6,
            "trials": 2,
            "seed": 0,
        }
        result = execute(EngineRequest("fault-sweep", params))
        direct = fault_sweep(
            algorithms=("flooding",), kinds=("bit_flip",), rates=(0.0, 0.1),
            n=6, trials=2, seed=0,
        ).as_payload()
        direct["created_unix"] = 0.0
        direct["wall_time_seconds"] = 0.0
        assert result.payload == json.loads(canonical_json(direct))

    def test_run_kind_produces_the_session_payload_shape(self):
        result = execute(
            EngineRequest("run", {"algorithm": "flooding", "n": 6})
        )
        assert result.payload["decision"] == "YES"
        assert result.payload["all_finished"] is True
        assert result.payload["faults_injected"] == 0

    def test_payload_is_json_shaped_even_without_a_cache(self):
        # tuples -> lists structurally, so cold and warm objects compare ==
        result = execute(EngineRequest("exhaustive", {"n": 4}))
        assert result.payload == json.loads(canonical_json(result.payload))


class TestValidation:
    def test_unknown_kind_is_an_engine_error(self):
        with pytest.raises(EngineError):
            execute(EngineRequest("nope", {}))

    def test_bad_params_are_engine_errors(self):
        with pytest.raises(EngineError):
            normalize_params("ranks", {"ns": []})
        with pytest.raises(EngineError):
            normalize_params("ranks", {"m_ns": [], "e_ns": []})
        with pytest.raises(EngineError):
            normalize_params("ranks", {"e_ns": [3]})  # odd E_n size
        with pytest.raises(EngineError):
            normalize_params("exhaustive", {})  # n is required

    def test_kind_lists_are_coherent(self):
        assert set(CACHEABLE_KINDS) == set(ENGINE_KINDS) - {"bench"}


class TestWholeRequestCache:
    def test_warm_hit_is_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("exhaustive", {"n": 4})
        cold = execute(request, cache=cache)
        warm = execute(request, cache=cache)
        assert not cold.cached and warm.cached
        assert warm.key == cold.key
        assert canonical_json(warm.payload) == canonical_json(cold.payload)
        assert cache.hits == 1 and cache.stored >= 1

    def test_cache_off_equals_cache_on_payloads(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("ranks", {"m_ns": [1, 2], "e_ns": [2]})
        with_cache = execute(request, cache=cache)
        without = execute(request)
        assert without.payload == with_cache.payload
        assert without.key is None  # no key derivation on the legacy path

    def test_workers_do_not_split_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cold = execute(EngineRequest("exhaustive", {"n": 4}, workers=1), cache=cache)
        warm = execute(EngineRequest("exhaustive", {"n": 4}, workers=2), cache=cache)
        assert warm.cached and warm.key == cold.key
        assert warm.payload == cold.payload

    def test_kernel_does_split_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        params = {"m_ns": [1, 2], "e_ns": [2]}
        ref = execute(EngineRequest("ranks", params, kernel="reference"), cache=cache)
        packed = execute(EngineRequest("ranks", params, kernel="packed"), cache=cache)
        assert ref.key != packed.key
        assert not packed.cached  # distinct entry, so the first packed run misses
        assert packed.payload == ref.payload  # ... but the results agree

    def test_disabled_cache_never_derives_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), enabled=False)
        result = execute(EngineRequest("exhaustive", {"n": 4}), cache=cache)
        assert result.key is None and not result.cached
        assert cache.counters() == {
            "hits": 0, "misses": 0, "stored": 0, "bytes_saved": 0, "corrupt": 0,
        }

    def test_corrupt_entry_recomputes_and_never_serves(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("exhaustive", {"n": 4})
        cold = execute(request, cache=cache)
        path = os.path.join(
            cache.objects_dir, cold.key[:2], cold.key + ".json"
        )
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["payload"]["class_size"] = 999  # a lie the digest catches
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        warm = execute(request, cache=cache)
        assert not warm.cached  # recomputed, the lie was never served
        assert warm.payload == cold.payload
        assert cache.corrupt == 1
        # the recompute overwrote the bad entry; the next run hits cleanly
        assert execute(request, cache=cache).cached

    def test_session_recording_bypasses_the_cache(self, tmp_path):
        from repro.replay import SessionStore

        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("exhaustive", {"n": 4})
        execute(request, cache=cache)  # warm the entry
        store = SessionStore(str(tmp_path / "s.jsonl"))
        store.start("exhaustive", {"n": 4})
        recorded = execute(
            request, cache=cache, options=EngineOptions(session=store)
        )
        store.finish(complete=True)
        assert not recorded.cached  # a session documents a real execution
        assert recorded.key is None


class TestShardGranularity:
    def test_shards_survive_whole_request_eviction(self, tmp_path):
        """Delete the request entry; the shard entries rebuild it compute-free."""
        import os

        from repro.obs.metrics import MetricsRegistry, use_registry

        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("exhaustive", {"n": 4}, workers=2)
        cold = execute(request, cache=cache)
        os.unlink(os.path.join(cache.objects_dir, cold.key[:2], cold.key + ".json"))
        registry = MetricsRegistry()
        with use_registry(registry):
            rebuilt = execute(request, cache=cache)
        counters = registry.snapshot()["counters"]
        assert not rebuilt.cached  # the request entry was gone...
        assert rebuilt.payload == cold.payload  # ...but the result is identical
        assert counters["exhaustive.shards_cached"] > 0
        assert counters.get("exhaustive.assignments_enumerated", 0) == 0

    def test_shard_hits_work_without_a_metrics_registry(self, tmp_path):
        """The CLI runs with no registry installed; shard hits must not
        assume one (regression: exhaustive.shards_cached ticked through
        a None registry)."""
        import os

        cache = ResultCache(str(tmp_path / "c"))
        request = EngineRequest("exhaustive", {"n": 4}, workers=2)
        cold = execute(request, cache=cache)
        os.unlink(os.path.join(cache.objects_dir, cold.key[:2], cold.key + ".json"))
        rebuilt = execute(request, cache=cache)  # no use_registry() here
        assert rebuilt.payload == cold.payload

    def test_overlapping_sweep_grids_share_cells(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_registry

        cache = ResultCache(str(tmp_path / "c"))
        base = {
            "algorithms": ["flooding"], "kinds": ["bit_flip"],
            "rates": [0.0, 0.1], "n": 6, "trials": 2, "seed": 0,
        }
        execute(EngineRequest("fault-sweep", base), cache=cache)
        wider = dict(base, rates=[0.0, 0.1, 0.2])  # tail-extends the grid
        registry = MetricsRegistry()
        with use_registry(registry):
            result = execute(EngineRequest("fault-sweep", wider), cache=cache)
        counters = registry.snapshot()["counters"]
        assert not result.cached  # different request key...
        assert counters["resilience.cells_cached"] == 2  # ...shared cells
        assert counters["resilience.trials_run"] == 2  # only the new rate ran
