"""Tests for the RCC(b, r) range model and the transpose separation."""

import random

import pytest

from repro.core import BCCInstance, PublicCoin
from repro.core.range_model import RangeModel, RangeNodeAlgorithm, RangeSimulator
from repro.algorithms.transpose import (
    broadcast_lower_bound_rounds,
    transpose_correct,
    transpose_factory,
)
from repro.errors import AlgorithmContractError, SimulationError
from repro.graphs import one_cycle


def _instance(n):
    return BCCInstance.kt1_from_graph(one_cycle(n))


def _random_inputs(n, seed):
    rng = random.Random(seed)
    return {
        i: {j: rng.choice("01") for j in range(n) if j != i} for i in range(n)
    }


class _EchoRange(RangeNodeAlgorithm):
    """Sends '1' on the lowest port, silence elsewhere."""

    def send(self, round_index):
        low = min(self.knowledge.ports)
        return {"1": [low]}

    def receive(self, round_index, messages):
        self.seen = dict(messages)

    def output(self):
        return self.seen


class TestRangeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            RangeModel(message_range=0)
        with pytest.raises(ValueError):
            RangeModel(bandwidth=0)

    def test_classification(self):
        assert RangeModel(message_range=1).is_broadcast()
        assert RangeModel(message_range=7).is_full_clique(8)
        assert not RangeModel(message_range=3).is_full_clique(8)


class TestRangeSimulator:
    def test_point_to_point_delivery(self):
        n = 5
        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=2))
        res = sim.run(_instance(n), _EchoRange, 1)
        # vertex with ID u sends '1' only toward its lowest port (smallest
        # other ID); everyone else hears silence from u
        for v in range(n):
            seen = res.outputs[v]
            for sender, msg in seen.items():
                lowest_of_sender = min(
                    x for x in range(n) if x != sender
                )
                expected = "1" if v == lowest_of_sender else ""
                assert msg == expected, (v, sender)

    def test_range_enforced(self):
        class ThreeMessages(RangeNodeAlgorithm):
            def send(self, t):
                ports = sorted(self.knowledge.ports)
                return {"1": [ports[0]], "0": [ports[1]], "": ports[2:]}

            def receive(self, t, m):
                pass

            def output(self):
                return None

        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=2))
        with pytest.raises(AlgorithmContractError):
            sim.run(_instance(5), ThreeMessages, 1)

    def test_double_assignment_rejected(self):
        class DoubleAssign(RangeNodeAlgorithm):
            def send(self, t):
                p = min(self.knowledge.ports)
                return {"1": [p], "0": [p]}

            def receive(self, t, m):
                pass

            def output(self):
                return None

        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=2))
        with pytest.raises(AlgorithmContractError):
            sim.run(_instance(4), DoubleAssign, 1)

    def test_kt_mismatch(self):
        sim = RangeSimulator(RangeModel(kt=0, message_range=2))
        with pytest.raises(SimulationError):
            sim.run(_instance(4), _EchoRange, 1)

    def test_plain_string_is_broadcast(self):
        class Shout(RangeNodeAlgorithm):
            def send(self, t):
                return "1"

            def receive(self, t, m):
                self.m = m

            def output(self):
                return set(self.m.values())

        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=1))
        res = sim.run(_instance(4), Shout, 1)
        assert all(out == {"1"} for out in res.outputs)
        assert res.distinct_messages_used == 1


class TestTransposeSeparation:
    def test_one_round_with_range_two(self):
        n = 6
        inputs = _random_inputs(n, 3)
        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=2))
        res = sim.run(_instance(n), transpose_factory(inputs, use_range=True), 2)
        assert res.rounds_executed == 1
        outputs_by_id = {res.instance.vertex_id(v): res.outputs[v] for v in range(n)}
        assert transpose_correct(inputs, outputs_by_id)
        assert res.distinct_messages_used <= 2

    def test_broadcast_needs_n_minus_1_rounds(self):
        n = 6
        inputs = _random_inputs(n, 4)
        sim = RangeSimulator(RangeModel(bandwidth=1, kt=1, message_range=1))
        res = sim.run(_instance(n), transpose_factory(inputs, use_range=False), 2 * n)
        assert res.rounds_executed == broadcast_lower_bound_rounds(n, 1) == n - 1
        outputs_by_id = {res.instance.vertex_id(v): res.outputs[v] for v in range(n)}
        assert transpose_correct(inputs, outputs_by_id)

    def test_wider_bandwidth_shrinks_broadcast_rounds(self):
        n = 9
        inputs = _random_inputs(n, 5)
        sim = RangeSimulator(RangeModel(bandwidth=4, kt=1, message_range=1))
        res = sim.run(_instance(n), transpose_factory(inputs, use_range=False), 2 * n)
        assert res.rounds_executed == broadcast_lower_bound_rounds(n, 4) == 2
        outputs_by_id = {res.instance.vertex_id(v): res.outputs[v] for v in range(n)}
        assert transpose_correct(inputs, outputs_by_id)

    def test_lower_bound_formula(self):
        assert broadcast_lower_bound_rounds(10, 1) == 9
        assert broadcast_lower_bound_rounds(10, 3) == 3

    def test_transpose_requires_kt1(self):
        inputs = _random_inputs(4, 0)
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        sim = RangeSimulator(RangeModel(bandwidth=1, kt=0, message_range=2))
        with pytest.raises(ValueError):
            sim.run(inst, transpose_factory(inputs, True), 1)
