"""Direct tests for InitialKnowledge and Transcript primitives."""

import pytest

from repro.core import (
    InitialKnowledge,
    PublicCoin,
    RoundRecord,
    Transcript,
    sent_label,
)


def _knowledge(kt=0, **overrides):
    base = dict(
        vertex_id=3,
        n=5,
        bandwidth=1,
        kt=kt,
        ports=(1, 2, 3, 4),
        input_ports=frozenset({1, 4}),
        all_ids=None if kt == 0 else (0, 1, 2, 3, 4),
        coin=PublicCoin(),
    )
    base.update(overrides)
    return InitialKnowledge(**base)


class TestInitialKnowledge:
    def test_kt0_must_not_have_ids(self):
        with pytest.raises(ValueError):
            _knowledge(kt=0, all_ids=(0, 1, 2, 3, 4))

    def test_kt1_must_have_ids(self):
        with pytest.raises(ValueError):
            _knowledge(kt=1, all_ids=None)

    def test_input_degree(self):
        assert _knowledge().input_degree == 2

    def test_neighbor_ids_kt1_only(self):
        k = _knowledge(kt=1)
        assert k.neighbor_ids() == frozenset({1, 4})
        with pytest.raises(ValueError):
            _knowledge(kt=0).neighbor_ids()

    def test_comparable_view_excludes_coin(self):
        a = _knowledge(coin=PublicCoin("a"))
        b = _knowledge(coin=PublicCoin("b"))
        assert a.comparable_view() == b.comparable_view()

    def test_comparable_view_sees_input_ports(self):
        a = _knowledge()
        b = _knowledge(input_ports=frozenset({2, 3}))
        assert a.comparable_view() != b.comparable_view()

    def test_frozen(self):
        with pytest.raises(Exception):
            _knowledge().n = 7  # type: ignore[misc]


class TestTranscript:
    @staticmethod
    def _transcript():
        t = Transcript()
        t.append(RoundRecord(sent="1", received={1: "0", 2: ""}))
        t.append(RoundRecord(sent="", received={1: "1", 2: "1"}))
        t.append(RoundRecord(sent="0", received={1: "", 2: "0"}))
        return t

    def test_rounds_and_records(self):
        t = self._transcript()
        assert t.rounds == len(t) == 3
        assert t.record(2).sent == ""
        with pytest.raises(IndexError):
            t.record(0)
        with pytest.raises(IndexError):
            t.record(4)

    def test_sent_sequence_and_string(self):
        t = self._transcript()
        assert t.sent_sequence() == ("1", "", "0")
        assert t.sent_string() == "1⊥0"

    def test_bit_accounting(self):
        t = self._transcript()
        assert t.bits_sent() == 2
        assert t.bits_received() == 4

    def test_comparable_prefix(self):
        t = self._transcript()
        assert t.prefix_comparable(2) == t.comparable()[:2]
        assert len(t.prefix_comparable(99)) == 3

    def test_received_key_canonical(self):
        a = RoundRecord(sent="1", received={2: "0", 1: "1"})
        b = RoundRecord(sent="1", received={1: "1", 2: "0"})
        assert a.received_key() == b.received_key()
        assert a.comparable() == b.comparable()

    def test_sent_label(self):
        head = Transcript()
        head.append(RoundRecord(sent="1", received={}))
        head.append(RoundRecord(sent="", received={}))
        tail = Transcript()
        tail.append(RoundRecord(sent="0", received={}))
        tail.append(RoundRecord(sent="0", received={}))
        assert sent_label(head, tail) == "1⊥00"
