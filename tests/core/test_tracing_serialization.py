"""Tests for execution tracing and instance serialization."""

import random

import pytest

from repro.core import (
    BCC1_KT0,
    ConstantAlgorithm,
    Simulator,
    first_divergence,
    instance_from_dict,
    instance_from_json,
    instance_to_dict,
    instance_to_json,
    render_diff,
    render_run,
    render_vertex,
)
from repro.crossing import cross
from repro.errors import InvalidInstanceError
from repro.instances import one_cycle_instance, two_cycle_instance

SIM = Simulator(BCC1_KT0)


class TestRendering:
    def test_render_run_shape(self):
        inst = one_cycle_instance(5)
        res = SIM.run(inst, ConstantAlgorithm, 3)
        text = render_run(res)
        assert "round" in text
        assert text.count("\n") >= 6  # header + rule + 3 rounds + rule + out
        assert "1" in text

    def test_render_run_truncation(self):
        inst = one_cycle_instance(4)
        res = SIM.run(inst, ConstantAlgorithm, 5)
        short = render_run(res, max_rounds=2)
        assert "3 |" not in short

    def test_render_vertex(self):
        inst = one_cycle_instance(4)
        res = SIM.run(inst, ConstantAlgorithm, 2)
        text = render_vertex(res, 2)
        assert "vertex index 2" in text
        assert "round 1" in text and "round 2" in text
        assert "output" in text

    def test_silent_rendered_as_bottom(self):
        from repro.core import SilentAlgorithm

        inst = one_cycle_instance(4)
        res = SIM.run(inst, SilentAlgorithm, 1)
        assert "⊥" in render_run(res)


class TestDiff:
    def test_identical_runs(self):
        inst = one_cycle_instance(6)
        a = SIM.run(inst, ConstantAlgorithm, 3)
        b = SIM.run(inst, ConstantAlgorithm, 3)
        assert first_divergence(a, b) is None
        assert "identical" in render_diff(a, b)

    def test_divergent_runs_located(self):
        from repro.core import FunctionalAlgorithm, YES

        def id_factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: str(self.knowledge.vertex_id % 2),
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        inst = one_cycle_instance(8)
        crossed = cross(inst, (0, 1), (4, 5))
        a = SIM.run(inst, id_factory, 2)
        b = SIM.run(crossed, id_factory, 2)
        # ID-parity broadcasts are instance-independent: histories equal
        assert first_divergence(a, b) is None

    def test_divergence_on_different_behavior(self):
        from repro.core import FunctionalAlgorithm, YES

        def degree_of_port_one():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: "1" if 1 in self.knowledge.input_ports else "0",
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        a = SIM.run(one_cycle_instance(6), degree_of_port_one, 1)
        b = SIM.run(two_cycle_instance(6, 3), degree_of_port_one, 1)
        divergence = first_divergence(a, b)
        if divergence is not None:
            t, _v = divergence
            assert t == 1
        assert "diff" in render_diff(a, b)

    def test_width_mismatch_reported_not_identical(self):
        """Regression: equal round counts but different n used to be
        silently reported as identical (divergences at vertices >=
        min(n_a, n_b) were ignored)."""
        a = SIM.run(one_cycle_instance(6), ConstantAlgorithm, 2)
        b = SIM.run(one_cycle_instance(8), ConstantAlgorithm, 2)
        assert a.rounds_executed == b.rounds_executed  # common prefix agrees
        assert first_divergence(a, b) == (1, -2)
        assert "run widths" in render_diff(a, b)
        assert "identical" not in render_diff(a, b)

    def test_width_mismatch_even_with_zero_rounds(self):
        a = SIM.run(one_cycle_instance(5), ConstantAlgorithm, 0)
        b = SIM.run(one_cycle_instance(7), ConstantAlgorithm, 0)
        assert first_divergence(a, b) == (1, -2)

    def test_length_mismatch_still_reported(self):
        a = SIM.run(one_cycle_instance(6), ConstantAlgorithm, 2)
        b = SIM.run(one_cycle_instance(6), ConstantAlgorithm, 4)
        assert first_divergence(a, b) == (3, -1)
        assert "run lengths" in render_diff(a, b)

    def test_content_divergence_beats_shape_sentinels(self):
        from repro.core import FunctionalAlgorithm, YES

        def id_broadcast():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: str(self.knowledge.vertex_id % 2),
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        a = SIM.run(one_cycle_instance(6), id_broadcast, 1)
        b = SIM.run(one_cycle_instance(8), ConstantAlgorithm, 1)
        t, v = first_divergence(a, b)
        assert t == 1 and v >= 0  # a real per-vertex divergence wins


class TestSerialization:
    def test_round_trip_kt0(self):
        inst = one_cycle_instance(7, rng=random.Random(3))
        assert instance_from_dict(instance_to_dict(inst)) == inst

    def test_round_trip_kt1(self):
        inst = one_cycle_instance(6, kt=1, ids=[5, 9, 11, 20, 21, 30])
        assert instance_from_json(instance_to_json(inst)) == inst

    def test_round_trip_crossed_instance(self):
        inst = one_cycle_instance(9)
        crossed = cross(inst, (0, 1), (4, 5))
        assert instance_from_json(instance_to_json(crossed)) == crossed

    def test_bad_format_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"format": "something-else"})

    def test_bad_version_rejected(self):
        data = instance_to_dict(one_cycle_instance(4))
        data["version"] = 99
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_corrupt_wiring_rejected(self):
        data = instance_to_dict(one_cycle_instance(4))
        data["peers"][0]["1"] = 0  # port now points at the vertex itself
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_json_is_stable(self):
        inst = one_cycle_instance(5)
        assert instance_to_json(inst) == instance_to_json(inst)
