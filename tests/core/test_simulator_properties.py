"""Hypothesis property tests for the round engine's global invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BCC1_KT0,
    BCC1_KT1,
    FunctionalAlgorithm,
    PublicCoin,
    Simulator,
    YES,
)
from repro.instances import random_multi_cycle_instance, random_one_cycle_instance


def _coin_chatter_factory():
    """A message pattern rich enough to exercise all alphabet characters."""

    def broadcast(self, t):
        r = self.knowledge.coin.substream(str(self.knowledge.vertex_id)).randint(
            f"r{t}", 0, 2
        )
        return ["", "0", "1"][r]

    return lambda: FunctionalAlgorithm(
        broadcast=broadcast,
        receive=lambda self, t, m: None,
        output=lambda self: YES,
    )


@st.composite
def run_configs(draw):
    n = draw(st.integers(min_value=6, max_value=14))
    kt = draw(st.sampled_from([0, 1]))
    rounds = draw(st.integers(min_value=0, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=9999))
    return n, kt, rounds, seed


class TestGlobalInvariants:
    @given(run_configs())
    @settings(max_examples=40, deadline=None)
    def test_conservation_of_bits(self, config):
        """Every broadcast bit is received exactly n - 1 times."""
        n, kt, rounds, seed = config
        rng = random.Random(seed)
        inst = random_one_cycle_instance(n, kt, rng, shuffle_ports=(kt == 0))
        sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
        res = sim.run(inst, _coin_chatter_factory(), rounds, coin=PublicCoin(str(seed)))
        sent = res.total_bits_broadcast()
        received = sum(t.bits_received() for t in res.transcripts)
        assert received == (n - 1) * sent

    @given(run_configs())
    @settings(max_examples=40, deadline=None)
    def test_history_matches_transcripts(self, config):
        n, kt, rounds, seed = config
        rng = random.Random(seed)
        inst = random_one_cycle_instance(n, kt, rng)
        sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
        res = sim.run(inst, _coin_chatter_factory(), rounds, coin=PublicCoin(str(seed)))
        for t in range(res.rounds_executed):
            for v in range(n):
                assert res.broadcast_history[t][v] == res.transcripts[v].record(t + 1).sent

    @given(run_configs())
    @settings(max_examples=30, deadline=None)
    def test_received_messages_respect_wiring(self, config):
        """The message vertex v records on port p is exactly what the peer
        behind p broadcast that round."""
        n, kt, rounds, seed = config
        rng = random.Random(seed)
        inst = random_one_cycle_instance(n, kt, rng, shuffle_ports=(kt == 0))
        sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
        res = sim.run(inst, _coin_chatter_factory(), rounds, coin=PublicCoin(str(seed)))
        for t in range(res.rounds_executed):
            for v in range(n):
                for port, msg in res.transcripts[v].record(t + 1).received.items():
                    peer = inst.peer_of_port(v, port)
                    assert msg == res.broadcast_history[t][peer]

    @given(run_configs())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, config):
        n, kt, rounds, seed = config
        rng = random.Random(seed)
        inst = random_multi_cycle_instance(max(n, 6), 2, kt, rng)
        sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
        coin = PublicCoin(f"det-{seed}")
        a = sim.run(inst, _coin_chatter_factory(), rounds, coin=coin)
        b = sim.run(inst, _coin_chatter_factory(), rounds, coin=coin)
        assert a.broadcast_history == b.broadcast_history
        assert a.outputs == b.outputs

    @given(run_configs())
    @settings(max_examples=25, deadline=None)
    def test_sent_string_alphabet(self, config):
        n, kt, rounds, seed = config
        rng = random.Random(seed)
        inst = random_one_cycle_instance(n, kt, rng)
        sim = Simulator(BCC1_KT0 if kt == 0 else BCC1_KT1)
        res = sim.run(inst, _coin_chatter_factory(), rounds, coin=PublicCoin(str(seed)))
        for v in range(n):
            s = res.transcripts[v].sent_string()
            assert len(s) == res.rounds_executed
            assert set(s) <= {"0", "1", "⊥"}
