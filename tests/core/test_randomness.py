"""Tests for the public-coin random source."""

from repro.core import PublicCoin


class TestDeterminism:
    def test_same_seed_same_bits(self):
        a = PublicCoin("s")
        b = PublicCoin("s")
        assert a.bits("k", 100) == b.bits("k", 100)
        assert a == b

    def test_different_seeds_differ(self):
        assert PublicCoin("s1").bits("k", 64) != PublicCoin("s2").bits("k", 64)

    def test_different_keys_differ(self):
        c = PublicCoin()
        assert c.bits("a", 64) != c.bits("b", 64)

    def test_substream_derivation(self):
        c = PublicCoin("root")
        s1 = c.substream("phase1")
        s2 = c.substream("phase2")
        assert s1 != s2
        assert s1.bits("k", 32) == PublicCoin("root/phase1").bits("k", 32)


class TestDistributions:
    def test_bits_shape(self):
        bits = PublicCoin().bits("k", 500)
        assert len(bits) == 500
        assert set(bits) <= {0, 1}
        # crude balance check on a long stream
        assert 150 < sum(bits) < 350

    def test_zero_bits(self):
        assert PublicCoin().bits("k", 0) == []

    def test_negative_count_raises(self):
        try:
            PublicCoin().bits("k", -1)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_randint_range(self):
        c = PublicCoin()
        values = {c.randint(f"k{i}", 3, 7) for i in range(200)}
        assert values == {3, 4, 5, 6, 7}

    def test_randint_singleton(self):
        assert PublicCoin().randint("k", 5, 5) == 5

    def test_randint_empty_range(self):
        try:
            PublicCoin().randint("k", 5, 4)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_random_unit_interval(self):
        c = PublicCoin()
        for i in range(50):
            x = c.random(f"k{i}")
            assert 0.0 <= x < 1.0

    def test_hashable(self):
        assert len({PublicCoin("a"), PublicCoin("a"), PublicCoin("b")}) == 2
