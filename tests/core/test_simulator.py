"""Tests for the synchronous round engine."""

import pytest

from repro.core import (
    BCC1_KT0,
    BCC1_KT1,
    BCCInstance,
    BCCModel,
    ConstantAlgorithm,
    FunctionalAlgorithm,
    NO,
    NodeAlgorithm,
    PublicCoin,
    SilentAlgorithm,
    Simulator,
    YES,
    decision_of_run,
)
from repro.errors import AlgorithmContractError, SimulationError
from repro.graphs import one_cycle, two_cycles


class EchoDegree(NodeAlgorithm):
    """Broadcasts '1' iff this vertex has input degree 2; collects messages."""

    def setup(self, knowledge):
        super().setup(knowledge)
        self.seen = []

    def broadcast(self, round_index):
        return "1" if self.knowledge.input_degree == 2 else "0"

    def receive(self, round_index, messages):
        self.seen.append(dict(messages))

    def output(self):
        return YES


class TestRunBasics:
    def test_zero_rounds(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT0).run(inst, SilentAlgorithm, 0)
        assert res.rounds_executed == 0
        assert res.broadcast_history == ()
        assert decision_of_run(res) == YES

    def test_transcripts_align_with_history(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(5))
        res = Simulator(BCC1_KT0).run(inst, EchoDegree, 3)
        assert res.rounds_executed == 3
        for v in range(5):
            assert res.transcripts[v].rounds == 3
            for t in range(1, 4):
                assert res.transcripts[v].record(t).sent == res.broadcast_history[t - 1][v]

    def test_messages_routed_by_port(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT1).run(inst, EchoDegree, 1)
        # in KT-1 the port label is the sender's ID
        rec = res.transcripts[0].record(1).received
        assert set(rec.keys()) == {1, 2, 3}
        assert all(m == "1" for m in rec.values())

    def test_every_vertex_hears_n_minus_1(self):
        inst = BCCInstance.kt0_from_graph(two_cycles(8, 4))
        res = Simulator(BCC1_KT0).run(inst, ConstantAlgorithm, 2)
        for v in range(8):
            assert len(res.transcripts[v].record(1).received) == 7

    def test_public_coin_shared(self):
        captured = []

        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: str(self.knowledge.coin.bit("r1")),
                receive=lambda self, t, m: captured.append(sorted(m.values())),
                output=lambda self: YES,
            )

        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT0).run(inst, factory, 1, coin=PublicCoin("x"))
        # all vertices drew the same public bit
        assert len(set(res.broadcast_history[0])) == 1

    def test_same_coin_reproducible(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))

        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: str(self.knowledge.coin.bit(f"r{t}")),
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        sim = Simulator(BCC1_KT0)
        r1 = sim.run(inst, factory, 4, coin=PublicCoin("seed-a"))
        r2 = sim.run(inst, factory, 4, coin=PublicCoin("seed-a"))
        assert r1.broadcast_history == r2.broadcast_history


class TestContracts:
    def test_kt_mismatch(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(4))
        with pytest.raises(SimulationError):
            Simulator(BCC1_KT0).run(inst, SilentAlgorithm, 1)

    def test_negative_rounds(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        with pytest.raises(SimulationError):
            Simulator(BCC1_KT0).run(inst, SilentAlgorithm, -1)

    def test_bandwidth_enforced(self):
        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: "01",
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        with pytest.raises(AlgorithmContractError):
            Simulator(BCC1_KT0).run(inst, factory, 1)

    def test_knowledge_hides_global_ids_in_kt0(self):
        seen = {}

        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: seen.setdefault("k", self.knowledge) and "",
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        Simulator(BCC1_KT0).run(inst, factory, 1)
        assert seen["k"].all_ids is None
        assert seen["k"].kt == 0

    def test_knowledge_exposes_ids_in_kt1(self):
        sim = Simulator(BCC1_KT1)
        inst = BCCInstance.kt1_from_graph(one_cycle(4), ids=[7, 8, 9, 10])
        k = sim.initial_knowledge(inst, 2, PublicCoin())
        assert k.all_ids == (7, 8, 9, 10)
        assert k.vertex_id == 9
        assert k.neighbor_ids() == frozenset({8, 10})


class TestEarlyTermination:
    @staticmethod
    def _stops_after(k):
        class StopsAfter(NodeAlgorithm):
            def setup(self, knowledge):
                super().setup(knowledge)
                self.rounds_seen = 0

            def broadcast(self, t):
                return "1"

            def receive(self, t, messages):
                self.rounds_seen += 1

            def finished(self):
                return self.rounds_seen >= k

            def output(self):
                return YES

        return StopsAfter

    def test_stops_early(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT0).run(inst, self._stops_after(2), 10)
        assert res.rounds_executed == 2
        assert res.all_finished

    def test_run_until_done_ok(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT0).run_until_done(inst, self._stops_after(3), 5)
        assert res.rounds_executed == 3

    def test_run_until_done_raises_on_budget(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        with pytest.raises(SimulationError):
            Simulator(BCC1_KT0).run_until_done(inst, self._stops_after(9), 5)


class TestAccounting:
    def test_bits_counted(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(5))
        res = Simulator(BCC1_KT0).run(inst, ConstantAlgorithm, 3)
        assert res.total_bits_broadcast() == 5 * 3
        assert res.transcripts[0].bits_sent() == 3
        assert res.transcripts[0].bits_received() == 4 * 3

    def test_silent_bits_zero(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(5))
        res = Simulator(BCC1_KT0).run(inst, SilentAlgorithm, 3)
        assert res.total_bits_broadcast() == 0

    def test_decision_no(self):
        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: "",
                receive=lambda self, t, m: None,
                output=lambda self: NO if self.knowledge.vertex_id == 0 else YES,
            )

        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        res = Simulator(BCC1_KT0).run(inst, factory, 1)
        assert decision_of_run(res) == NO
