"""Tests for BCCInstance construction, wiring, and invariants."""

import random

import pytest

from repro.core import BCCInstance
from repro.errors import InvalidInstanceError
from repro.graphs import one_cycle, two_cycles


class TestKT1Construction:
    def test_ports_are_peer_ids(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(5))
        for v in range(5):
            for u in range(5):
                if u != v:
                    assert inst.port_to_peer(v, u) == inst.vertex_id(u)

    def test_custom_ids(self):
        ids = [10, 20, 30, 40, 50]
        inst = BCCInstance.kt1_from_graph(one_cycle(5), ids=ids)
        assert inst.vertex_id(2) == 30
        assert inst.index_of_id(40) == 3
        assert inst.port_to_peer(0, 3) == 40

    def test_wrong_id_count(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance.kt1_from_graph(one_cycle(5), ids=[1, 2, 3])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance.kt1_from_graph(one_cycle(4), ids=[1, 1, 2, 3])

    def test_input_ports_are_neighbor_ids(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(5))
        assert inst.input_ports(0) == frozenset({1, 4})


class TestKT0Construction:
    def test_port_labels_are_1_to_n_minus_1(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(6))
        for v in range(6):
            assert inst.port_labels(v) == tuple(range(1, 6))

    def test_rotation_wiring_is_consistent(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(6))
        for v in range(6):
            for port in range(1, 6):
                u = inst.peer_of_port(v, port)
                assert inst.port_to_peer(v, u) == port

    def test_shuffled_wiring_valid(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(7), rng=random.Random(3))
        for v in range(7):
            peers = {inst.peer_of_port(v, p) for p in range(1, 7)}
            assert peers == set(range(7)) - {v}

    def test_input_degree(self):
        inst = BCCInstance.kt0_from_graph(two_cycles(8, 4))
        for v in range(8):
            assert inst.input_degree(v) == 2
            assert len(inst.input_ports(v)) == 2

    def test_input_neighbors(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(5))
        assert inst.input_neighbors(0) == frozenset({1, 4})

    def test_input_graph_round_trip(self):
        g = two_cycles(9, 4)
        inst = BCCInstance.kt0_from_graph(g)
        assert inst.input_graph() == g


class TestValidation:
    def test_too_small(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance(0, [0], [{}], [])

    def test_bad_port_label_set_kt0(self):
        # labels must be 1..n-1; use 0..n-2 instead
        peers = [{0: 1, 1: 2}, {0: 0, 1: 2}, {0: 0, 1: 1}]
        with pytest.raises(InvalidInstanceError):
            BCCInstance(0, [0, 1, 2], peers, [])

    def test_kt1_port_must_match_peer_id(self):
        # swap two port labels so port ID(x) reaches y
        peers = [{1: 2, 2: 1}, {0: 0, 2: 2}, {0: 0, 1: 1}]
        with pytest.raises(InvalidInstanceError):
            BCCInstance(1, [0, 1, 2], peers, [])

    def test_ports_must_reach_all_peers(self):
        peers = [{1: 1, 2: 1}, {1: 0, 2: 2}, {1: 0, 2: 1}]
        with pytest.raises(InvalidInstanceError):
            BCCInstance(0, [0, 1, 2], peers, [])

    def test_input_edge_out_of_range(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance.kt0_from_graph(one_cycle(4)).replace(input_edges=[(0, 9)])

    def test_negative_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance.kt1_from_graph(one_cycle(3), ids=[-1, 0, 1])

    def test_non_index_vertex_set_rejected(self):
        from repro.graphs import Graph

        g = Graph([5, 6, 7], [(5, 6), (6, 7), (7, 5)])
        with pytest.raises(InvalidInstanceError):
            BCCInstance.kt0_from_graph(g)


class TestReplaceEqualityHash:
    def test_replace_input_edges(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(5))
        other = inst.replace(input_edges=[(0, 1)])
        assert other.input_edges == frozenset({(0, 1)})
        assert inst.input_edges != other.input_edges
        # wiring is unchanged
        for v in range(5):
            for p in range(1, 5):
                assert inst.peer_of_port(v, p) == other.peer_of_port(v, p)

    def test_equality_and_hash(self):
        a = BCCInstance.kt0_from_graph(one_cycle(5))
        b = BCCInstance.kt0_from_graph(one_cycle(5))
        assert a == b and hash(a) == hash(b)
        c = a.replace(input_edges=[(0, 2)])
        assert a != c

    def test_has_input_edge(self):
        inst = BCCInstance.kt0_from_graph(one_cycle(4))
        assert inst.has_input_edge(0, 1) and inst.has_input_edge(1, 0)
        assert not inst.has_input_edge(0, 2)
