"""Tests for the BCC model configuration and message alphabet."""

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, SILENT, SILENT_CHAR, BCCModel, message_to_char
from repro.errors import AlgorithmContractError


class TestModelValidation:
    def test_defaults(self):
        m = BCCModel()
        assert m.bandwidth == 1 and m.kt == 0

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            BCCModel(bandwidth=0)

    def test_bad_kt(self):
        with pytest.raises(ValueError):
            BCCModel(kt=2)

    def test_canonical_models(self):
        assert BCC1_KT0.kt == 0 and BCC1_KT1.kt == 1
        assert BCC1_KT0.bandwidth == BCC1_KT1.bandwidth == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            BCC1_KT0.bandwidth = 2  # type: ignore[misc]


class TestMessageValidation:
    def test_accepts_silence(self):
        assert BCC1_KT0.validate_message(SILENT) == ""

    def test_accepts_single_bits(self):
        assert BCC1_KT0.validate_message("0") == "0"
        assert BCC1_KT0.validate_message("1") == "1"

    def test_rejects_too_long(self):
        with pytest.raises(AlgorithmContractError):
            BCC1_KT0.validate_message("01")

    def test_rejects_bad_characters(self):
        with pytest.raises(AlgorithmContractError):
            BCC1_KT0.validate_message("x")

    def test_rejects_non_string(self):
        with pytest.raises(AlgorithmContractError):
            BCC1_KT0.validate_message(1)  # type: ignore[arg-type]

    def test_wide_bandwidth(self):
        m = BCCModel(bandwidth=4)
        assert m.validate_message("0101") == "0101"
        with pytest.raises(AlgorithmContractError):
            m.validate_message("01010")


class TestAlphabet:
    def test_alphabet_size_b1(self):
        # {0, 1, silence}
        assert BCC1_KT0.alphabet_size() == 3

    def test_alphabet_size_b2(self):
        # {"", "0", "1", "00", "01", "10", "11"}
        assert BCCModel(bandwidth=2).alphabet_size() == 7

    def test_message_to_char(self):
        assert message_to_char("") == SILENT_CHAR
        assert message_to_char("0") == "0"
        assert message_to_char("1") == "1"
