"""Tests for Bell/Stirling counting and partition enumeration."""

import math
import random

import pytest

from repro.partitions import (
    SetPartition,
    bell_number,
    bell_numbers_upto,
    double_factorial_odd,
    enumerate_partitions,
    enumerate_perfect_matchings,
    enumerate_rgs,
    log2_bell,
    perfect_matching_count,
    random_perfect_matching,
    stirling2,
)

KNOWN_BELL = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975]


class TestBellNumbers:
    def test_known_values(self):
        assert bell_numbers_upto(10) == KNOWN_BELL

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bell_number(-1)

    def test_bell_is_sum_of_stirlings(self):
        for n in range(1, 9):
            assert bell_number(n) == sum(stirling2(n, k) for k in range(n + 1))

    def test_stirling_base_cases(self):
        assert stirling2(0, 0) == 1
        assert stirling2(5, 0) == 0
        assert stirling2(5, 5) == 1
        assert stirling2(5, 1) == 1
        assert stirling2(4, 2) == 7

    def test_log2_bell_growth(self):
        # log2 B_n = Theta(n log n): check the normalized value is stable
        vals = [log2_bell(n) / (n * math.log2(n)) for n in (10, 20, 40)]
        assert all(0.3 < v < 1.1 for v in vals)


class TestPerfectMatchingCounts:
    def test_known_values(self):
        assert [perfect_matching_count(n) for n in (0, 2, 4, 6, 8, 10)] == [
            1,
            1,
            3,
            15,
            105,
            945,
        ]

    def test_equals_double_factorial(self):
        for n in (2, 4, 6, 8, 10, 12):
            assert perfect_matching_count(n) == double_factorial_odd(n - 1)

    def test_odd_rejected(self):
        with pytest.raises(ValueError):
            perfect_matching_count(5)


class TestEnumeration:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 6])
    def test_rgs_count(self, n):
        assert sum(1 for _ in enumerate_rgs(n)) == bell_number(n)

    def test_rgs_validity(self):
        for rgs in enumerate_rgs(5):
            assert rgs[0] == 0
            for i in range(1, 5):
                assert rgs[i] <= max(rgs[:i]) + 1

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_partition_count_and_uniqueness(self, n):
        parts = list(enumerate_partitions(n))
        assert len(parts) == bell_number(n)
        assert len(set(parts)) == len(parts)

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_perfect_matching_count_and_shape(self, n):
        matchings = list(enumerate_perfect_matchings(n))
        assert len(matchings) == perfect_matching_count(n)
        assert len(set(matchings)) == len(matchings)
        assert all(m.is_perfect_matching() for m in matchings)

    def test_perfect_matchings_odd_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_perfect_matchings(5))

    def test_block_count_distribution_matches_stirling(self):
        from collections import Counter

        counts = Counter(p.num_blocks for p in enumerate_partitions(6))
        for k in range(1, 7):
            assert counts[k] == stirling2(6, k)


class TestRandomPerfectMatching:
    def test_uniform_on_n4(self):
        rng = random.Random(3)
        counts = {}
        trials = 3000
        for _ in range(trials):
            m = random_perfect_matching(4, rng)
            counts[m] = counts.get(m, 0) + 1
        assert len(counts) == 3
        for c in counts.values():
            assert abs(c / trials - 1 / 3) < 0.04

    def test_shape(self):
        m = random_perfect_matching(10, random.Random(0))
        assert m.is_perfect_matching()
        assert m.n == 10
