"""Tests for Möbius / Whitney machinery of the partition lattice [DW75]."""

import math

import pytest

from repro.partitions import (
    SetPartition,
    bell_number,
    characteristic_polynomial,
    interval,
    mobius,
    mobius_bottom_top,
    predicted_characteristic_polynomial,
    predicted_mobius_bottom_top,
    predicted_mobius_to_top,
    enumerate_partitions,
    stirling2,
    whitney_numbers_second_kind,
    whitney_sum_is_bell,
)


class TestInterval:
    def test_full_interval_is_lattice(self):
        n = 4
        full = interval(SetPartition.finest(n), SetPartition.coarsest(n))
        assert len(full) == bell_number(n)

    def test_point_interval(self):
        x = SetPartition.from_string(4, "(1,2)(3,4)")
        assert interval(x, x) == [x]

    def test_empty_interval_rejected(self):
        x = SetPartition.from_string(4, "(1,2)(3,4)")
        y = SetPartition.from_string(4, "(1,3)(2,4)")
        with pytest.raises(ValueError):
            interval(x, y)

    def test_upper_interval_size_is_bell_of_blocks(self):
        """[x, 1] is isomorphic to Pi_b where b = #blocks of x."""
        x = SetPartition.from_string(5, "(1,2)(3,4)(5)")
        assert len(interval(x, SetPartition.coarsest(5))) == bell_number(3)


class TestMobius:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_bottom_top_closed_form(self, n):
        assert mobius_bottom_top(n) == predicted_mobius_bottom_top(n)
        assert predicted_mobius_bottom_top(n) == (-1) ** (n - 1) * math.factorial(n - 1)

    def test_reflexive(self):
        x = SetPartition.from_string(4, "(1,2)(3)(4)")
        assert mobius(x, x) == 1

    def test_incomparable_is_zero(self):
        x = SetPartition.from_string(4, "(1,2)(3,4)")
        y = SetPartition.from_string(4, "(1,3)(2,4)")
        assert mobius(x, y) == 0

    def test_upper_interval_closed_form(self):
        """mu(x, 1) = (-1)^{b-1} (b-1)! for every x (checked over all of
        Pi_4)."""
        top = SetPartition.coarsest(4)
        for x in enumerate_partitions(4):
            assert mobius(x, top) == predicted_mobius_to_top(x)

    def test_mobius_sum_vanishes(self):
        """The defining identity: sum over [0, 1] of mu(0, z) = 0."""
        n = 4
        bottom = SetPartition.finest(n)
        total = sum(mobius(bottom, z) for z in enumerate_partitions(n))
        assert total == 0


class TestWhitney:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_whitney_are_stirling(self, n):
        w = whitney_numbers_second_kind(n)
        assert w == [stirling2(n, n - k) for k in range(n)]
        assert w[0] == 1  # only the finest partition has rank 0

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_whitney_sum(self, n):
        assert whitney_sum_is_bell(n)


class TestCharacteristicPolynomial:
    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("t", [0, 1, 2, 5, 7])
    def test_falling_factorial_identity(self, n, t):
        assert characteristic_polynomial(n, t) == predicted_characteristic_polynomial(n, t)
