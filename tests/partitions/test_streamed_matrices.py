"""The streamed block pipeline == the dense pipeline, bit for bit.

Streaming changes where rows live (packed bitsets / sparse dicts built
block-by-block from partition pairs) but not what they are: ranks,
budget ticks, and worker-count invariance must all match the dense
list-of-lists pipeline on every family, kernel mode, and block size.
Also covers the shared memoized enumeration and its cache-hit counter.
"""

import pytest

from repro.errors import BudgetExceededError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.partitions import (
    DEFAULT_BLOCK_ROWS,
    DEFAULT_PRIMES,
    STREAM_ROW_THRESHOLD,
    build_e_matrix,
    build_m_matrix,
    clear_enumeration_cache,
    e_matrix_rank,
    m_matrix_rank,
    matchings_for,
    partition_matrix,
    partitions_for,
    rank_mod_p,
    stream_matrix_rows,
    streamed_matrix_rank,
    streamed_matrix_rank_mod_p,
)
from repro.partitions.matrices import _use_streamed
from repro.resilience import Budget


class TestStreamMatrixRows:
    @pytest.mark.parametrize("family,n", [("m", 4), ("e", 6)])
    @pytest.mark.parametrize("block_rows", [1, 3, 1000])
    def test_blocks_reassemble_the_dense_matrix(self, family, n, block_rows):
        table = partitions_for(n) if family == "m" else matchings_for(n)
        dense = partition_matrix(table)
        seen_rows = []
        next_start = 0
        for start, rows in stream_matrix_rows(n, family, block_rows=block_rows):
            assert start == next_start
            next_start += len(rows)
            seen_rows.extend(rows)
        assert next_start == len(table)
        for cols_idx, dense_row in zip(seen_rows, dense):
            assert list(cols_idx) == [c for c, v in enumerate(dense_row) if v]

    def test_workers_do_not_change_the_blocks(self):
        serial = list(stream_matrix_rows(4, "m", block_rows=4, workers=1))
        fanned = list(stream_matrix_rows(4, "m", block_rows=4, workers=2))
        assert fanned == serial

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            list(stream_matrix_rows(4, "x"))
        with pytest.raises(ValueError):
            list(stream_matrix_rows(4, "m", block_rows=0))
        with pytest.raises(ValueError):
            list(stream_matrix_rows(4, "m", workers=0))


class TestStreamedRanks:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("kernel", ["auto", "packed", "four-russians", "sparse"])
    def test_m_rank_matches_dense(self, n, kernel):
        dense = m_matrix_rank(n, streamed=False)
        assert streamed_matrix_rank(n, "m", kernel=kernel, block_rows=7) == dense

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_e_rank_matches_dense(self, n):
        dense = e_matrix_rank(n, streamed=False)
        assert streamed_matrix_rank(n, "e", block_rows=5) == dense

    @pytest.mark.parametrize("p", [2, DEFAULT_PRIMES[0]])
    def test_mod_p_matches_dense(self, p):
        _parts, matrix = build_m_matrix(4)
        assert streamed_matrix_rank_mod_p(4, p, "m") == rank_mod_p(
            matrix, p, kernel="reference"
        )

    def test_workers_do_not_change_the_rank(self):
        assert streamed_matrix_rank(4, "m", workers=2, block_rows=3) == (
            streamed_matrix_rank(4, "m", workers=1, block_rows=3)
        )

    def test_reference_kernel_is_rejected(self):
        with pytest.raises(ValueError):
            streamed_matrix_rank_mod_p(4, 2, "m", kernel="reference")

    def test_empty_family(self):
        # n = 0 has one (empty) partition; rank of the 1x1 all-ones matrix
        assert streamed_matrix_rank(0, "m") == m_matrix_rank(0, streamed=False)


class TestStreamedBudgetParity:
    def test_tick_counts_match_dense_reference(self):
        p = DEFAULT_PRIMES[0]
        _parts, matrix = build_m_matrix(4)
        b_s, b_d = Budget(max_units=10_000), Budget(max_units=10_000)
        assert streamed_matrix_rank_mod_p(4, p, "m", budget=b_s) == rank_mod_p(
            matrix, p, b_d, kernel="reference"
        )
        assert b_s.units_done == b_d.units_done

    def test_exhaustion_boundary_matches_dense(self):
        probe = Budget(max_units=10_000)
        streamed_matrix_rank_mod_p(4, 2, "m", budget=probe)
        cutoff = probe.units_done - 1
        assert cutoff >= 1
        with pytest.raises(BudgetExceededError):
            streamed_matrix_rank_mod_p(4, 2, "m", budget=Budget(max_units=cutoff))
        _parts, matrix = build_m_matrix(4)
        with pytest.raises(BudgetExceededError):
            rank_mod_p(matrix, 2, Budget(max_units=cutoff), kernel="reference")


class TestEntryPointWiring:
    def test_forced_streamed_matches_dense(self):
        assert m_matrix_rank(5, streamed=True, block_rows=13) == m_matrix_rank(
            5, streamed=False
        )
        assert e_matrix_rank(6, streamed=True) == e_matrix_rank(6, streamed=False)

    def test_reference_plus_streamed_raises(self):
        with pytest.raises(ValueError):
            m_matrix_rank(4, kernel="reference", streamed=True)

    def test_auto_threshold(self):
        assert not _use_streamed(None, STREAM_ROW_THRESHOLD - 1, "auto")
        assert _use_streamed(None, STREAM_ROW_THRESHOLD, "auto")
        # reference never auto-streams; explicit choice always wins
        assert not _use_streamed(None, STREAM_ROW_THRESHOLD, "reference")
        assert _use_streamed(True, 1, "auto")
        assert not _use_streamed(False, 10**9, "auto")

    def test_default_block_rows_sane(self):
        assert 1 <= DEFAULT_BLOCK_ROWS <= STREAM_ROW_THRESHOLD


class TestMemoizedEnumeration:
    def test_partitions_cache_hit_counter(self):
        clear_enumeration_cache()
        registry = MetricsRegistry()
        first = partitions_for(5, registry)
        assert registry.counter("partitions.enumeration_cache_hits").value == 0
        second = partitions_for(5, registry)
        assert second is first  # the cached tuple, not a recomputation
        assert registry.counter("partitions.enumeration_cache_hits").value == 1
        partitions_for(4, registry)  # a different n is a miss
        assert registry.counter("partitions.enumeration_cache_hits").value == 1
        clear_enumeration_cache()

    def test_matchings_cache_hit_counter(self):
        clear_enumeration_cache()
        registry = MetricsRegistry()
        first = matchings_for(6, registry)
        second = matchings_for(6, registry)
        assert second is first
        assert registry.counter("partitions.enumeration_cache_hits").value == 1
        clear_enumeration_cache()

    def test_m_and_e_rank_share_the_enumeration(self):
        clear_enumeration_cache()
        registry = MetricsRegistry()
        with use_registry(registry):
            m_matrix_rank(4, streamed=False)
            first_hits = registry.counter("partitions.enumeration_cache_hits").value
            m_matrix_rank(4, streamed=False)  # second call reuses the table
            assert (
                registry.counter("partitions.enumeration_cache_hits").value
                > first_hits
            )
        clear_enumeration_cache()

    def test_clear_forces_recompute(self):
        clear_enumeration_cache()
        registry = MetricsRegistry()
        partitions_for(4, registry)
        clear_enumeration_cache()
        partitions_for(4, registry)
        assert registry.counter("partitions.enumeration_cache_hits").value == 0
        clear_enumeration_cache()
