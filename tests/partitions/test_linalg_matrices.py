"""Tests for exact rank machinery and the M_n / E_n theorems."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitions import (
    bell_number,
    build_e_matrix,
    build_m_matrix,
    e_matrix_is_full_rank,
    e_matrix_rank,
    is_full_rank,
    m_matrix_is_full_rank,
    m_matrix_rank,
    partition_cc_lower_bound,
    perfect_matching_count,
    rank_bareiss,
    rank_exact,
    rank_mod_p,
    two_partition_cc_lower_bound,
)


class TestRankEngines:
    def test_identity(self):
        eye = [[1 if i == j else 0 for j in range(5)] for i in range(5)]
        assert rank_bareiss(eye) == 5
        assert rank_mod_p(eye, 1_000_003) == 5
        assert rank_exact(eye) == 5

    def test_zero_matrix(self):
        z = [[0] * 4 for _ in range(4)]
        assert rank_bareiss(z) == 0
        assert rank_mod_p(z, 1_000_003) == 0

    def test_rank_deficient(self):
        m = [[1, 2, 3], [2, 4, 6], [1, 0, 1]]
        assert rank_bareiss(m) == 2
        assert rank_exact(m) == 2

    def test_rectangular(self):
        m = [[1, 0, 0, 1], [0, 1, 0, 1]]
        assert rank_bareiss(m) == 2
        assert rank_mod_p(m, 1_000_003) == 2

    def test_empty(self):
        assert rank_bareiss([]) == 0
        assert rank_exact([]) == 0

    def test_mod_p_char_trap(self):
        """A matrix singular mod p but not over Q: rank_exact must recover."""
        p = 7
        m = [[p, 0], [0, 1]]
        assert rank_mod_p(m, p) == 1
        assert rank_bareiss(m) == 2
        assert rank_exact(m, primes=(7, 1_000_003)) == 2

    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=4, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bareiss_agrees_with_mod_p(self, rows):
        exact = rank_bareiss(rows)
        modular = rank_mod_p(rows, 1_000_003)
        assert modular <= exact
        # with entries this small, a million-ish prime never loses rank
        assert modular == exact

    def test_is_full_rank(self):
        assert is_full_rank([[1, 0], [1, 1]])
        assert not is_full_rank([[1, 1], [1, 1]])


class TestTheorem23:
    """rank(M_n) = B_n (Dowling-Wilson / Theorem 2.3)."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_m_rank_equals_bell(self, n):
        assert m_matrix_rank(n) == bell_number(n)

    def test_m6_full_rank_certificate(self):
        assert m_matrix_is_full_rank(6)

    def test_m_matrix_symmetric(self):
        _, m = build_m_matrix(4)
        for i in range(len(m)):
            for j in range(len(m)):
                assert m[i][j] == m[j][i]

    def test_m_matrix_top_row(self):
        parts, m = build_m_matrix(4)
        top_index = next(i for i, p in enumerate(parts) if p.is_coarsest())
        assert all(m[top_index][j] == 1 for j in range(len(parts)))

    def test_m_matrix_bottom_row(self):
        parts, m = build_m_matrix(4)
        bottom = next(i for i, p in enumerate(parts) if p.is_finest())
        top = next(i for i, p in enumerate(parts) if p.is_coarsest())
        for j in range(len(parts)):
            assert m[bottom][j] == (1 if j == top else 0)


class TestLemma41:
    """rank(E_n) = n!/(2^{n/2} (n/2)!)."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_e_rank_exact(self, n):
        assert e_matrix_rank(n) == perfect_matching_count(n)

    def test_e8_full_rank_certificate(self):
        assert e_matrix_is_full_rank(8)

    def test_e_is_submatrix_of_m(self):
        from repro.partitions import enumerate_partitions, joins_to_top

        matchings, e = build_e_matrix(4)
        for i, pa in enumerate(matchings):
            for j, pb in enumerate(matchings):
                assert e[i][j] == (1 if joins_to_top(pa, pb) else 0)

    def test_principal_submatrix_of_full_rank_is_full_rank(self):
        """The general linear-algebra fact in the proof of Lemma 4.1, on a
        random full-rank integer matrix and random principal submatrices."""
        rng = random.Random(5)
        d = 8
        while True:
            a = [[rng.randint(-3, 3) for _ in range(d)] for _ in range(d)]
            if rank_bareiss(a) == d:
                break
        for _ in range(10):
            size = rng.randint(1, d)
            idx = sorted(rng.sample(range(d), size))
            sub = [[a[i][j] for j in idx] for i in idx]
            assert rank_bareiss(sub) == size


class TestCCBounds:
    def test_partition_bound_growth(self):
        # Omega(n log n): bound / (n log2 n) stays bounded away from 0
        for n in (8, 16, 32):
            import math

            assert partition_cc_lower_bound(n) > 0.3 * n * math.log2(n)

    def test_two_partition_bound(self):
        import math

        assert two_partition_cc_lower_bound(8) == pytest.approx(math.log2(105))

    def test_two_partition_below_partition(self):
        for n in (4, 6, 8, 10):
            assert two_partition_cc_lower_bound(n) <= partition_cc_lower_bound(n)
