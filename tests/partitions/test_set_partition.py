"""Unit and property tests for SetPartition and the lattice operations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partitions import SetPartition, joins_to_top, random_partition


def sp(n, text):
    return SetPartition.from_string(n, text)


@st.composite
def partitions(draw, max_n=7):
    n = draw(st.integers(min_value=1, max_value=max_n))
    rgs = [0]
    for _ in range(n - 1):
        rgs.append(draw(st.integers(0, max(rgs) + 1)))
    return SetPartition.from_rgs(rgs)


@st.composite
def partition_pairs(draw, max_n=7):
    n = draw(st.integers(min_value=1, max_value=max_n))

    def one():
        rgs = [0]
        for _ in range(n - 1):
            rgs.append(draw(st.integers(0, max(rgs) + 1)))
        return SetPartition.from_rgs(rgs)

    return one(), one()


class TestConstruction:
    def test_canonical_form(self):
        a = SetPartition(5, [[3, 4], [1, 2], [5]])
        b = SetPartition(5, [[2, 1], [5], [4, 3]])
        assert a == b and hash(a) == hash(b)
        assert repr(a) == "(1,2)(3,4)(5)"

    def test_from_string(self):
        p = sp(5, "(1,2)(3,4)(5)")
        assert p.blocks == ((1, 2), (3, 4), (5,))

    def test_from_string_malformed(self):
        with pytest.raises(PartitionError):
            SetPartition.from_string(3, "1,2)(3")
        with pytest.raises(PartitionError):
            SetPartition.from_string(3, "(1,x)(2,3)")

    def test_overlap_rejected(self):
        with pytest.raises(PartitionError):
            SetPartition(4, [[1, 2], [2, 3], [4]])

    def test_cover_required(self):
        with pytest.raises(PartitionError):
            SetPartition(4, [[1, 2], [3]])

    def test_out_of_range(self):
        with pytest.raises(PartitionError):
            SetPartition(3, [[1, 2], [3, 4]])

    def test_finest_coarsest(self):
        assert SetPartition.finest(4).num_blocks == 4
        assert SetPartition.coarsest(4).num_blocks == 1
        assert SetPartition.finest(4).is_finest()
        assert SetPartition.coarsest(4).is_coarsest()

    def test_rgs_round_trip(self):
        p = sp(6, "(1,3)(2,5,6)(4)")
        assert SetPartition.from_rgs(p.rgs()) == p


class TestQueries:
    def test_block_containing(self):
        p = sp(5, "(1,2)(3,4)(5)")
        assert p.block_containing(4) == (3, 4)

    def test_same_block(self):
        p = sp(5, "(1,2)(3,4)(5)")
        assert p.same_block(1, 2)
        assert not p.same_block(2, 3)

    def test_block_sizes(self):
        assert sp(5, "(1,2)(3,4)(5)").block_sizes() == (1, 2, 2)

    def test_is_perfect_matching(self):
        assert sp(4, "(1,3)(2,4)").is_perfect_matching()
        assert not sp(4, "(1,2,3)(4)").is_perfect_matching()


class TestPaperExamples:
    """The worked examples from Section 1.1 of the paper."""

    def test_join_examples(self):
        pa = sp(5, "(1,2)(3,4)(5)")
        pb = sp(5, "(1,2,4)(3)(5)")
        pc = sp(5, "(1,2,4)(3,5)")
        assert pa.join(pb) == sp(5, "(1,2,3,4)(5)")
        assert pa.join(pc) == sp(5, "(1,2,3,4,5)")
        assert not joins_to_top(pa, pb)
        assert joins_to_top(pa, pc)

    def test_refinement_example(self):
        # (1,2)(3,4)(5) is a refinement of (1,2)(3,4,5)
        assert sp(5, "(1,2)(3,4)(5)").refines(sp(5, "(1,2)(3,4,5)"))
        assert not sp(5, "(1,2)(3,4,5)").refines(sp(5, "(1,2)(3,4)(5)"))


class TestLatticeLaws:
    @given(partition_pairs())
    @settings(max_examples=100, deadline=None)
    def test_join_commutative(self, pair):
        a, b = pair
        assert a.join(b) == b.join(a)

    @given(partition_pairs())
    @settings(max_examples=100, deadline=None)
    def test_meet_commutative(self, pair):
        a, b = pair
        assert a.meet(b) == b.meet(a)

    @given(partitions())
    @settings(max_examples=50, deadline=None)
    def test_join_meet_idempotent(self, p):
        assert p.join(p) == p
        assert p.meet(p) == p

    @given(partition_pairs())
    @settings(max_examples=100, deadline=None)
    def test_absorption(self, pair):
        a, b = pair
        assert a.join(a.meet(b)) == a
        assert a.meet(a.join(b)) == a

    @given(partition_pairs())
    @settings(max_examples=100, deadline=None)
    def test_both_refine_join(self, pair):
        a, b = pair
        j = a.join(b)
        assert a.refines(j) and b.refines(j)

    @given(partition_pairs())
    @settings(max_examples=100, deadline=None)
    def test_meet_refines_both(self, pair):
        a, b = pair
        m = a.meet(b)
        assert m.refines(a) and m.refines(b)

    @given(partition_pairs())
    @settings(max_examples=60, deadline=None)
    def test_join_is_finest_upper_bound(self, pair):
        """Minimality of the join (the property Theorem 4.3's proof uses):
        any partition coarser than both a and b is coarser than a ∨ b."""
        from repro.partitions import enumerate_partitions

        a, b = pair
        if a.n > 5:
            return
        j = a.join(b)
        for q in enumerate_partitions(a.n):
            if a.refines(q) and b.refines(q):
                assert j.refines(q)

    @given(partitions())
    @settings(max_examples=50, deadline=None)
    def test_extremes(self, p):
        bottom = SetPartition.finest(p.n)
        top = SetPartition.coarsest(p.n)
        assert p.join(bottom) == p
        assert p.join(top) == top
        assert p.meet(bottom) == bottom
        assert p.meet(top) == p

    def test_mixed_ground_sets_rejected(self):
        with pytest.raises(PartitionError):
            SetPartition.finest(3).join(SetPartition.finest(4))


class TestRandomPartition:
    def test_uniformity_small(self):
        """Exact-uniform sampler: chi-square-free sanity check on n=3 where
        B_3 = 5; each partition should appear with frequency ~ 1/5."""
        rng = random.Random(17)
        counts = {}
        trials = 5000
        for _ in range(trials):
            p = random_partition(3, rng)
            counts[p] = counts.get(p, 0) + 1
        assert len(counts) == 5
        for c in counts.values():
            assert abs(c / trials - 0.2) < 0.03

    def test_operators(self):
        a = sp(4, "(1,2)(3)(4)")
        b = sp(4, "(2,3)(1)(4)")
        assert (a | b) == sp(4, "(1,2,3)(4)")
        assert (a & b) == SetPartition.finest(4)
        assert a <= (a | b)
