"""Monoid laws for the shard merges: the algebra behind order-invariance."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    MAX_INT,
    MIN_KEYED,
    SUM_COUNTS,
    merge_concat,
    merge_counts,
    merge_min_keyed,
)

keyed = st.one_of(
    st.none(),
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    ),
)


@given(a=keyed, b=keyed, c=keyed)
@settings(max_examples=200, deadline=None)
def test_min_keyed_is_associative_and_commutative(a, b, c):
    assert merge_min_keyed(merge_min_keyed(a, b), c) == merge_min_keyed(
        a, merge_min_keyed(b, c)
    )
    assert merge_min_keyed(a, b) == merge_min_keyed(b, a)
    assert merge_min_keyed(a, None) == a
    assert merge_min_keyed(None, a) == a


@given(values=st.lists(keyed, max_size=20))
@settings(max_examples=100, deadline=None)
def test_min_keyed_fold_matches_global_min(values):
    folded = MIN_KEYED.fold(values)
    candidates = [v for v in values if v is not None]
    assert folded == (min(candidates) if candidates else None)


def test_min_keyed_ties_break_toward_lowest_index():
    # The serial loop updates on strict improvement only, so the first
    # (= lowest-index) candidate at the minimum error must win no matter
    # which shard reports first.
    assert merge_min_keyed((0.25, 7), (0.25, 3)) == (0.25, 3)
    assert merge_min_keyed((0.25, 3), (0.25, 7)) == (0.25, 3)


count_dicts = st.dictionaries(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    st.integers(min_value=1, max_value=100),
    max_size=8,
)


@given(parts=st.lists(count_dicts, max_size=6))
@settings(max_examples=100, deadline=None)
def test_sum_counts_fold_matches_counter_sum(parts):
    expected = Counter()
    for part in parts:
        expected.update(part)
    # fold on deep copies: merge_counts mutates its accumulator
    folded = SUM_COUNTS.fold([dict(p) for p in parts])
    assert folded == dict(expected)


@given(parts=st.lists(count_dicts, min_size=2, max_size=6))
@settings(max_examples=50, deadline=None)
def test_sum_counts_is_order_invariant(parts):
    forward = SUM_COUNTS.fold([dict(p) for p in parts])
    backward = SUM_COUNTS.fold([dict(p) for p in reversed(parts)])
    assert forward == backward


def test_merge_counts_mutates_left():
    a = {"x": 1}
    out = merge_counts(a, {"x": 2, "y": 3})
    assert out is a and a == {"x": 3, "y": 3}


@given(values=st.lists(st.integers(min_value=0, max_value=10**9), max_size=20))
@settings(max_examples=100, deadline=None)
def test_max_int_fold(values):
    assert MAX_INT.fold(values) == max(values, default=0)


def test_merge_concat_is_shard_ordered_and_skips_none():
    assert merge_concat([[1, 2], None, [3], []]) == [1, 2, 3]
    assert merge_concat([]) == []


def test_fold_skips_none_entries():
    assert MIN_KEYED.fold([None, (0.5, 2), None, (0.5, 1)]) == (0.5, 1)
    assert MAX_INT.fold([None, 3, None]) == 3


class TestMonoidRegistry:
    def test_builtin_monoids_registered(self):
        from repro.parallel.merge import get_monoid, monoid_names

        names = monoid_names()
        for name in ("min_keyed", "sum_counts", "max_int"):
            assert name in names
            assert get_monoid(name) is not None

    def test_sketch_monoids_register_on_import(self):
        import repro.obs.sketches  # noqa: F401  (registration side effect)
        from repro.parallel.merge import monoid_names

        names = monoid_names()
        for name in (
            "sketch.quantile",
            "sketch.topk",
            "sketch.moments",
            "sketch.population",
        ):
            assert name in names
        assert names == sorted(names)

    def test_unknown_name_raises_with_known_list(self):
        import pytest

        from repro.parallel.merge import get_monoid

        with pytest.raises(KeyError, match="no monoid registered"):
            get_monoid("sketch.hyperloglog")

    def test_reregistering_same_object_is_idempotent(self):
        from repro.parallel.merge import MAX_INT, register_monoid

        assert register_monoid("max_int", MAX_INT) is MAX_INT

    def test_conflicting_registration_rejected(self):
        import pytest

        from repro.parallel.merge import MAX_INT, Monoid, register_monoid

        other = Monoid(identity=lambda: 0, combine=max)
        with pytest.raises(ValueError, match="already registered"):
            register_monoid("max_int", other)
        # the original stays installed
        from repro.parallel.merge import get_monoid

        assert get_monoid("max_int") is MAX_INT
