"""ShardPlan invariants: coverage, balance, determinism, budget splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import Shard, ShardBudget, ShardPlan, derive_seed, split_budget
from repro.resilience import Budget

totals = st.integers(min_value=0, max_value=500)
shard_counts = st.integers(min_value=1, max_value=40)
seeds = st.integers(min_value=0, max_value=2**32)


@given(total=totals, k=shard_counts, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_plan_covers_range_contiguously(total, k, seed):
    plan = ShardPlan(total, k, base_seed=seed)
    shards = plan.shards()
    assert sum(s.size for s in shards) == total
    cursor = 0
    for s in shards:
        assert s.start == cursor
        assert s.stop > s.start  # never an empty shard
        cursor = s.stop
    assert cursor == total


@given(total=totals, k=shard_counts)
@settings(max_examples=100, deadline=None)
def test_plan_is_balanced(total, k):
    sizes = [s.size for s in ShardPlan(total, k).shards()]
    if sizes:
        assert max(sizes) - min(sizes) <= 1
        assert len(sizes) == min(k, total)


@given(total=totals, k=shard_counts, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_plan_is_deterministic(total, k, seed):
    a = ShardPlan(total, k, base_seed=seed).shards()
    b = ShardPlan(total, k, base_seed=seed).shards()
    assert a == b


@given(total=totals, k=shard_counts, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_from_starts_roundtrip(total, k, seed):
    plan = ShardPlan(total, k, base_seed=seed)
    rebuilt = ShardPlan.from_starts(plan.total, plan.starts, base_seed=seed)
    assert rebuilt.shards() == plan.shards()


def test_from_starts_rejects_malformed():
    with pytest.raises(ValueError):
        ShardPlan.from_starts(10, [1, 5])  # must begin at 0
    with pytest.raises(ValueError):
        ShardPlan.from_starts(10, [0, 5, 5])  # strictly increasing
    with pytest.raises(ValueError):
        ShardPlan.from_starts(10, [0, 12])  # start outside range
    with pytest.raises(ValueError):
        ShardPlan.from_starts(0, [0])  # empty space has no shards
    assert ShardPlan.from_starts(0, []).shards() == []


def test_seed_derivation_is_pure_arithmetic():
    # SHA-256 based: stable across processes and platforms, in [0, 2^63).
    assert derive_seed(7, 0) == derive_seed(7, 0)
    assert derive_seed(7, 0) != derive_seed(7, 1)
    assert derive_seed(7, 0) != derive_seed(8, 0)
    assert 0 <= derive_seed(7, 3) < 2**63
    plan = ShardPlan(10, 3, base_seed=7)
    assert [s.seed for s in plan.shards()] == [derive_seed(7, i) for i in range(3)]


def test_for_workers_clamps_to_total():
    assert ShardPlan.for_workers(3, workers=4).num_shards == 3
    assert ShardPlan.for_workers(1000, workers=4).num_shards == 16
    with pytest.raises(ValueError):
        ShardPlan.for_workers(10, workers=0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardPlan(-1, 2)
    with pytest.raises(ValueError):
        ShardPlan(10, 0)
    with pytest.raises(ValueError):
        Shard(index=0, start=5, stop=3, seed=0)


# ----------------------------------------------------------------------
# budget splitting
# ----------------------------------------------------------------------
def test_split_budget_none_parent():
    assert split_budget(None, [3, 4, 5]) == [None, None, None]


@given(
    units=st.integers(min_value=1, max_value=400),
    sizes=st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_split_budget_conserves_units(units, sizes):
    budget = Budget(max_units=units)
    shards = split_budget(budget, sizes)
    allocations = [sb.max_units for sb in shards]
    # never hand a shard more than its work; never mint new units
    assert all(0 <= a <= size for a, size in zip(allocations, sizes))
    assert sum(allocations) == min(units, sum(sizes))


def test_split_budget_surplus_cascades():
    # 2 shards of size 10, 15 units: even split (8, 7) would strand a
    # unit on the second shard's small size -- cascade fills instead.
    shards = split_budget(Budget(max_units=15), [10, 10])
    assert [sb.max_units for sb in shards] == [8, 7]
    shards = split_budget(Budget(max_units=100), [3, 10])
    assert [sb.max_units for sb in shards] == [3, 10]


def test_split_budget_exhausted_parent_yields_zero_unit_shards():
    from repro.errors import BudgetExceededError

    budget = Budget(max_units=2)
    budget.tick()
    with pytest.raises(BudgetExceededError):
        budget.tick()  # consumes the final unit and trips
    assert budget.remaining_units() == 0
    shards = split_budget(budget, [5, 5])
    assert all(sb.max_units == 0 for sb in shards)


def test_shard_budget_to_budget():
    assert ShardBudget(max_units=None, wall_seconds=None).to_budget() is None
    b = ShardBudget(max_units=5, wall_seconds=None).to_budget()
    assert b is not None and b.remaining_units() == 5
