"""Serial ≡ parallel for every ``--workers`` hot path, bit for bit.

The contract under test is the whole point of :mod:`repro.parallel`:
``workers=1`` is the original in-process loop (golden), and every
``workers > 1`` / vectorized execution returns the *identical* report --
same floats, same tie-breaks, same RNG stream consumption, same budget
accounting -- so parallelism can never change a paper-facing number.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.information import estimate_protocol_information
from repro.lowerbounds import universal_bound_id_oblivious
from repro.lowerbounds.vectorized import HAVE_NUMPY
from repro.partitions import build_m_matrix, rank_exact, rank_mod_p, rank_multi_prime
from repro.resilience import Budget, fault_sweep
from repro.twoparty import TrivialPartitionCompProtocol

WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# exhaustive universal-bound search
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_exhaustive_identical_across_worker_counts(workers):
    serial = universal_bound_id_oblivious(4, alphabet=("", "0", "1"))
    report = universal_bound_id_oblivious(
        4, alphabet=("", "0", "1"), workers=workers, vectorize=False
    )
    assert report == serial


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@pytest.mark.parametrize("n", [3, 4])
def test_exhaustive_vectorized_identical(n):
    serial = universal_bound_id_oblivious(n, alphabet=("", "0", "1"))
    vectorized = universal_bound_id_oblivious(
        n, alphabet=("", "0", "1"), vectorize=True
    )
    assert vectorized == serial


def test_exhaustive_workers_one_is_the_golden_serial_path():
    # workers=1 + vectorize=False must be the byte-identical original
    # loop: same report object contents as the no-argument call.
    assert universal_bound_id_oblivious(
        4, workers=1, vectorize=False
    ) == universal_bound_id_oblivious(4)


@given(workers=st.sampled_from(WORKER_COUNTS), n=st.integers(3, 4))
@settings(max_examples=8, deadline=None)
def test_exhaustive_serial_parallel_property(workers, n):
    serial = universal_bound_id_oblivious(n, alphabet=("0", "1"))
    assert (
        universal_bound_id_oblivious(
            n, alphabet=("0", "1"), workers=workers, vectorize=False
        )
        == serial
    )


def test_exhaustive_budget_raise_parity_and_resume(tmp_path):
    """Mid-fan-out budget exhaustion checkpoints and resumes exactly."""
    n, alphabet = 4, ("", "0", "1")
    total = len(alphabet) ** n
    serial = universal_bound_id_oblivious(n, alphabet=alphabet)

    ckpt = str(tmp_path / "exhaustive.shards.json")
    with pytest.raises(BudgetExceededError) as excinfo:
        universal_bound_id_oblivious(
            n,
            alphabet=alphabet,
            workers=2,
            vectorize=False,
            budget=Budget(max_units=total // 3),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
    assert excinfo.value.checkpoint_path == ckpt
    # resume under a different worker count: still the serial report
    resumed = universal_bound_id_oblivious(
        n, alphabet=alphabet, workers=4, vectorize=False, resume=ckpt
    )
    assert resumed == serial
    # budget == total work raises in both paths (tick-after semantics)...
    with pytest.raises(BudgetExceededError):
        universal_bound_id_oblivious(n, alphabet=alphabet, budget=Budget(max_units=total))
    with pytest.raises(BudgetExceededError):
        universal_bound_id_oblivious(
            n,
            alphabet=alphabet,
            workers=2,
            vectorize=False,
            budget=Budget(max_units=total),
        )
    # ...and budget == total + 1 completes in both.
    assert (
        universal_bound_id_oblivious(
            n, alphabet=alphabet, budget=Budget(max_units=total + 1)
        )
        == serial
    )
    assert (
        universal_bound_id_oblivious(
            n,
            alphabet=alphabet,
            workers=2,
            vectorize=False,
            budget=Budget(max_units=total + 1),
        )
        == serial
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
def test_exhaustive_resume_crosses_kernels(tmp_path):
    """A python-scan checkpoint resumes under the vectorized kernel."""
    n, alphabet = 4, ("0", "1")
    serial = universal_bound_id_oblivious(n, alphabet=alphabet)
    ckpt = str(tmp_path / "cross.json")
    with pytest.raises(BudgetExceededError):
        universal_bound_id_oblivious(
            n,
            alphabet=alphabet,
            workers=2,
            vectorize=False,
            budget=Budget(max_units=5),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
    resumed = universal_bound_id_oblivious(
        n, alphabet=alphabet, workers=1, vectorize=True, resume=ckpt
    )
    assert resumed == serial


# ----------------------------------------------------------------------
# sampled information estimator
# ----------------------------------------------------------------------
def _sampling_report(workers, samples=60, seed=11, n=4, **kwargs):
    rng = random.Random(seed)
    if workers is not None:
        kwargs["workers"] = workers
    report = estimate_protocol_information(
        TrivialPartitionCompProtocol(n), n, samples, rng, **kwargs
    )
    return report, rng.getstate()


def test_sampling_workers_one_is_the_golden_lean_path():
    # workers=1 must be the byte-identical original lean loop.
    golden, golden_rng = _sampling_report(None)
    lean, lean_rng = _sampling_report(1)
    assert lean == golden
    assert lean_rng == golden_rng


@pytest.mark.parametrize("workers", (2, 4))
def test_sampling_identical_across_worker_counts(workers):
    # The documented contract: sharded == serial *resilient* path, bit
    # for bit (both sum the joint in sorted key order); the lean serial
    # path may differ in float summation order only.
    serial, serial_rng = _sampling_report(1, budget=Budget(max_units=10_000))
    lean, lean_rng = _sampling_report(1)
    parallel, parallel_rng = _sampling_report(workers)
    assert parallel == serial
    assert parallel.information_estimate == pytest.approx(
        lean.information_estimate, rel=1e-12
    )
    # the parent rng consumed the identical stream (pre-drawn inputs)
    assert parallel_rng == serial_rng == lean_rng


def test_sampling_budget_resume_mid_fan_out(tmp_path):
    serial, _ = _sampling_report(1, budget=Budget(max_units=10_000))
    ckpt = str(tmp_path / "sampling.shards.json")
    with pytest.raises(BudgetExceededError):
        _sampling_report(
            2,
            budget=Budget(max_units=20),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
    resumed_rng = random.Random(11)
    resumed = estimate_protocol_information(
        TrivialPartitionCompProtocol(4),
        4,
        60,
        resumed_rng,
        workers=4,
        resume=ckpt,
    )
    assert resumed == serial


def test_sampling_resume_rejects_mismatched_seed(tmp_path):
    from repro.errors import CheckpointError

    ckpt = str(tmp_path / "sampling.shards.json")
    with pytest.raises(BudgetExceededError):
        _sampling_report(
            2,
            budget=Budget(max_units=20),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
    # a different seed draws different inputs: the params digest differs
    with pytest.raises(CheckpointError):
        estimate_protocol_information(
            TrivialPartitionCompProtocol(4),
            4,
            60,
            random.Random(999),
            workers=2,
            resume=ckpt,
        )


# ----------------------------------------------------------------------
# multi-prime rank
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_rank_identical_across_worker_counts(workers):
    _parts, matrix = build_m_matrix(4)
    serial = rank_multi_prime(matrix, workers=1)
    assert rank_multi_prime(matrix, workers=workers) == serial
    assert rank_exact(matrix, workers=workers) == rank_exact(matrix)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_rank_budget_accounting_matches_serial(workers):
    _parts, matrix = build_m_matrix(4)
    cols = len(matrix[0])
    primes = (1_000_003, 999_983)
    total_ticks = len(primes) * cols
    # exactly at the boundary: serial raises iff budget <= total ticks
    serial_budget = Budget(max_units=total_ticks + 1)
    serial = rank_multi_prime(matrix, primes, budget=serial_budget, workers=1)
    parallel_budget = Budget(max_units=total_ticks + 1)
    assert (
        rank_multi_prime(matrix, primes, budget=parallel_budget, workers=workers)
        == serial
    )
    assert parallel_budget.units_done == serial_budget.units_done
    with pytest.raises(BudgetExceededError):
        rank_multi_prime(
            matrix, primes, budget=Budget(max_units=total_ticks), workers=workers
        )
    with pytest.raises(BudgetExceededError):
        rank_multi_prime(
            matrix, primes, budget=Budget(max_units=total_ticks), workers=1
        )


@given(
    rows=st.integers(2, 6),
    cols=st.integers(2, 6),
    seed=st.integers(0, 10_000),
    workers=st.sampled_from((2, 3)),
)
@settings(max_examples=10, deadline=None)
def test_rank_serial_parallel_property(rows, cols, seed, workers):
    rng = random.Random(seed)
    matrix = [[rng.randint(0, 1) for _ in range(cols)] for _ in range(rows)]
    primes = (1_000_003, 999_983, 2_147_483_647)
    assert rank_multi_prime(matrix, primes, workers=workers) == max(
        rank_mod_p(matrix, p) for p in primes
    )


# ----------------------------------------------------------------------
# fault sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fault_sweep_identical_across_worker_counts(workers):
    kwargs = dict(
        algorithms=("neighbor_exchange",),
        kinds=("bit_flip", "erasure"),
        rates=(0.0, 0.2),
        n=6,
        trials=2,
        seed=3,
    )
    serial = fault_sweep(**kwargs)
    parallel = fault_sweep(workers=workers, **kwargs)
    # wall_time_seconds is the only legitimately nondeterministic field
    assert parallel.curves == serial.curves
    assert (parallel.n, parallel.trials, parallel.seed) == (
        serial.n,
        serial.trials,
        serial.seed,
    )


def test_fault_sweep_metrics_match_serial():
    from repro.obs.metrics import MetricsRegistry

    kwargs = dict(
        algorithms=("neighbor_exchange",),
        kinds=("crash",),
        rates=(0.0, 0.3),
        n=6,
        trials=2,
        seed=5,
    )
    serial_registry = MetricsRegistry()
    fault_sweep(metrics=serial_registry, **kwargs)
    parallel_registry = MetricsRegistry()
    fault_sweep(metrics=parallel_registry, workers=4, **kwargs)
    for name in ("resilience.trials_run", "resilience.faults_injected"):
        assert (
            parallel_registry.counter(name).value
            == serial_registry.counter(name).value
        )
