"""ParallelExecutor: serial/pooled equivalence, spans, metrics, failures."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder, use_recorder
from repro.parallel import ParallelExecutor, resolve_workers
from repro.parallel.executor import default_workers


# -- module-level task functions (pooled workers must pickle them) -----
def _square(x):
    return x * x


def _spanned_square(x):
    from repro.obs.spans import span

    with span("task.square", x=x):
        return x * x


def _boom(x):
    if x == 2:
        raise RuntimeError("shard 2 exploded")
    return x


def test_resolve_workers():
    assert resolve_workers(3) == 3
    assert resolve_workers(None) == default_workers()
    assert resolve_workers(0) == default_workers()
    with pytest.raises(ValueError):
        resolve_workers(-1)
    with pytest.raises(ValueError):
        ParallelExecutor(workers=0)


def test_serial_map_preserves_payload_order():
    seen = []
    out = ParallelExecutor(workers=1).map(
        _square, [3, 1, 2], on_result=lambda i, v: seen.append((i, v))
    )
    assert out == [9, 1, 4]
    assert seen == [(0, 9), (1, 1), (2, 4)]  # payload order in serial path


@pytest.mark.parametrize("workers", [2, 4])
def test_pooled_map_matches_serial(workers):
    payloads = list(range(7))
    serial = ParallelExecutor(workers=1).map(_square, payloads)
    pooled = ParallelExecutor(workers=workers).map(_square, payloads)
    assert pooled == serial  # results in payload order, not completion order


def test_pooled_on_result_sees_every_shard_once():
    seen = {}
    ParallelExecutor(workers=2).map(
        _square, [1, 2, 3, 4], on_result=lambda i, v: seen.__setitem__(i, v)
    )
    assert seen == {0: 1, 1: 4, 2: 9, 3: 16}


def test_single_payload_short_circuits_to_serial():
    # len(payloads) <= 1 never spawns a pool regardless of workers.
    assert ParallelExecutor(workers=8).map(_square, [5]) == [25]
    assert ParallelExecutor(workers=8).map(_square, []) == []


@pytest.mark.parametrize("workers", [1, 2])
def test_task_exception_propagates(workers):
    with pytest.raises(RuntimeError, match="shard 2 exploded"):
        ParallelExecutor(workers=workers).map(_boom, [0, 1, 2, 3])


@pytest.mark.parametrize("workers", [1, 2])
def test_metrics_record_dispatch_and_completion(workers):
    registry = MetricsRegistry()
    ParallelExecutor(workers=workers, metrics=registry).map(_square, [1, 2, 3])
    assert registry.counter("parallel.shards_dispatched").value == 3
    assert registry.counter("parallel.shards_completed").value == 3
    assert registry.histogram("parallel.shard_seconds").count == 3
    utilization = registry.gauge("parallel.worker_utilization").value
    assert 0.0 <= utilization <= 1.0 + 1e-9


@pytest.mark.parametrize("workers", [1, 2])
def test_span_tree_covers_every_shard(workers):
    recorder = SpanRecorder()
    with use_recorder(recorder):
        ParallelExecutor(workers=workers).map(_spanned_square, [1, 2, 3])
    roots = recorder.roots
    assert [r.name for r in roots] == ["parallel.map"]
    shard_spans = [c for c in roots[0].children if c.name == "parallel.shard"]
    assert len(shard_spans) == 3
    # worker-side spans are stitched under their shard in both paths
    for shard_span in shard_spans:
        names = [child.name for child in shard_span.children]
        assert "task.square" in names


def test_reduce_folds_in_shard_order_and_times_merge():
    registry = MetricsRegistry()
    executor = ParallelExecutor(workers=1, metrics=registry)
    out = executor.reduce(lambda acc, v: acc + [v], [1, None, 2, 3], initial=[])
    assert out == [1, 2, 3]  # shard order, None skipped
    assert registry.histogram("parallel.merge_seconds").count == 1
