"""CLI error handling: clean exit codes, one-line messages, no tracebacks."""

import json

import pytest

from repro import cli
from repro.errors import InvalidInstanceError


def _run(capsys, *argv):
    code = cli.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestUserErrorsExitTwo:
    def test_missing_resume_checkpoint(self, capsys, tmp_path):
        code, _out, err = _run(
            capsys, "exhaustive", "--resume", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_bad_sample_count(self, capsys):
        code, _out, err = _run(capsys, "sampling", "--samples", "1")
        assert code == 2
        assert err.startswith("error: ")

    def test_fault_sweep_n_too_small(self, capsys):
        code, _out, err = _run(capsys, "fault-sweep", "--n", "3", "--trials", "2")
        assert code == 2
        assert "n >= 6" in err

    def test_repro_error_from_experiment(self, capsys, monkeypatch):
        def _boom(_args):
            raise InvalidInstanceError("bad instance for the test")

        monkeypatch.setattr(cli, "_cmd_ratio", _boom)
        parser = cli.build_parser()
        args = parser.parse_args(["ratio"])
        args.func = _boom
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        monkeypatch.setattr(parser, "parse_args", lambda argv=None: args)
        code, _out, err = _run(capsys, "ratio")
        assert code == 2
        assert err == "error: bad instance for the test\n"

    def test_unknown_subcommand_still_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            cli.main(["no-such-command"])
        assert exc_info.value.code == 2


class TestInterruptExits130:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        parser = cli.build_parser()
        args = parser.parse_args(["ratio"])

        def _interrupt(_args):
            raise KeyboardInterrupt

        args.func = _interrupt
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        monkeypatch.setattr(parser, "parse_args", lambda argv=None: args)
        code, _out, err = _run(capsys, "ratio")
        assert code == 130
        assert err == "interrupted\n"

    def test_interrupt_mid_exhaustive_names_checkpoint(self, capsys, tmp_path, monkeypatch):
        path = str(tmp_path / "ck.json")

        def _fake_search(*_a, **kwargs):
            # simulate the engine flushing its checkpoint then propagating
            from repro.resilience import write_checkpoint

            write_checkpoint(
                kwargs["checkpoint_path"],
                "exhaustive",
                {"n": 6, "alphabet": ["", "0", "1"]},
                {"next_index": 5},
            )
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.lowerbounds.exhaustive.universal_bound_id_oblivious", _fake_search
        )
        code, _out, err = _run(capsys, "exhaustive", "--checkpoint", path)
        assert code == 130
        assert path in err
        assert "--resume" in err


class TestBudgetExitsThree:
    def test_exhaustive_budget_prints_partial(self, capsys, tmp_path):
        path = str(tmp_path / "ck.json")
        code, out, err = _run(
            capsys,
            "exhaustive",
            "--n",
            "6",
            "--max-assignments",
            "100",
            "--checkpoint",
            path,
            "--json",
        )
        assert code == 3
        assert "budget exhausted" in err
        assert f"--resume {path}" in err
        payload = json.loads(out)
        assert payload["rows"][0][-1] == "partial (budget exhausted)"

    def test_budget_then_resume_completes(self, capsys, tmp_path):
        path = str(tmp_path / "ck.json")
        code, _out, _err = _run(
            capsys, "exhaustive", "--max-assignments", "100", "--checkpoint", path
        )
        assert code == 3
        code, out, _err = _run(capsys, "exhaustive", "--resume", path, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["rows"][0][-1] == "complete"
        # the resumed minimum matches a fresh uninterrupted run
        code, fresh_out, _err = _run(capsys, "exhaustive", "--json")
        assert json.loads(fresh_out)["rows"][0][:5] == payload["rows"][0][:5]


class TestNewSubcommandSmoke:
    def test_sampling_json(self, capsys):
        code, out, _err = _run(
            capsys, "sampling", "--n", "4", "--samples", "50", "--seed", "1", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["rows"][0][1] == 50

    def test_fault_sweep_quick_with_out_file(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        code, _out, _err = _run(
            capsys, "fault-sweep", "--quick", "--out", str(out_file), "--json"
        )
        assert code == 0
        from repro.resilience import validate_fault_sweep_payload

        payload = json.loads(out_file.read_text())
        assert validate_fault_sweep_payload(payload) == []
