"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crossing" in out and "upper-bounds" in out

    def test_crossing(self, capsys):
        assert main(["crossing", "--n", "10", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.4" in out and "True" in out

    def test_star(self, capsys):
        assert main(["star", "--n", "15", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.5" in out

    def test_forced_error(self, capsys):
        assert main(["forced-error", "--n", "6", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "forced error" in out

    def test_ratio(self, capsys):
        assert main(["ratio", "--max-exp", "3"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.9" in out

    def test_ranks(self, capsys):
        assert main(["ranks", "--max-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2.3" in out

    def test_reduction_correct(self, capsys):
        assert main(["reduction", "--n", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.3" in out

    def test_information(self, capsys):
        assert main(["information", "--n", "4", "--eps", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.5" in out

    def test_upper_bounds(self, capsys):
        assert main(["upper-bounds", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "NeighborExchange" in out and "Peeling" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
