"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crossing" in out and "upper-bounds" in out

    def test_crossing(self, capsys):
        assert main(["crossing", "--n", "10", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.4" in out and "True" in out

    def test_star(self, capsys):
        assert main(["star", "--n", "15", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.5" in out

    def test_forced_error(self, capsys):
        assert main(["forced-error", "--n", "6", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "forced error" in out

    def test_ratio(self, capsys):
        assert main(["ratio", "--max-exp", "3"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.9" in out

    def test_ranks(self, capsys):
        assert main(["ranks", "--max-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2.3" in out

    def test_reduction_correct(self, capsys):
        assert main(["reduction", "--n", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.3" in out

    def test_information(self, capsys):
        assert main(["information", "--n", "4", "--eps", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.5" in out

    def test_upper_bounds(self, capsys):
        assert main(["upper-bounds", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "NeighborExchange" in out and "Peeling" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestObservabilityFlags:
    def test_crossing_json_emits_valid_json(self, capsys):
        assert main(["crossing", "--n", "10", "--rounds", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["title"] == "Figure 1 / Lemma 3.4 (E1)"
        assert payload["headers"][0] == "n"
        assert payload["rows"][0][0] == 10
        assert payload["rows"][0][3] is True  # premise, a real JSON bool

    def test_star_json_emits_valid_json(self, capsys):
        assert main(["star", "--n", "15", "--rounds", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert "Theorem 3.5" in payload["title"]

    def test_ranks_json_rows_match_table_shape(self, capsys):
        assert main(["ranks", "--max-n", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert len(payload["headers"]) == 4
        assert all(len(row) == 4 for row in payload["rows"])

    def test_crossing_trace_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = str(tmp_path / "t.jsonl")
        assert main(["crossing", "--n", "8", "--rounds", "2", "--trace", path]) == 0
        events = read_trace(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "trace_start"
        # Lemma 3.4 check runs the simulator on both instances
        assert kinds.count("run_start") == 2
        assert kinds.count("run_end") == 2
        assert any(e["event"] == "round" for e in events)

    def test_reduction_trace_records_turns(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = str(tmp_path / "red.jsonl")
        assert main(["reduction", "--n", "6", "--seed", "3", "--trace", path]) == 0
        events = read_trace(path)
        kinds = [e["event"] for e in events]
        assert "protocol_start" in kinds and "protocol_end" in kinds
        turns = [e for e in events if e["event"] == "turn"]
        assert turns and all(e["bits"] >= 1 for e in turns)
        end = [e for e in events if e["event"] == "protocol_end"][0]
        assert end["correct"] is True

    def test_list_mentions_bench_and_report(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bench" in out and "report" in out


class TestWorkersFlag:
    """``--workers`` fans out without changing any paper-facing number."""

    def test_exhaustive_workers_identical_to_serial(self, capsys):
        assert main(["exhaustive", "--n", "4", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out.strip())
        assert main(["exhaustive", "--n", "4", "--workers", "2",
                     "--no-vectorize", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out.strip())
        assert parallel == serial

    def test_exhaustive_workers_auto(self, capsys):
        # 0 = one process per CPU; still the same deterministic report
        assert main(["exhaustive", "--n", "4", "--workers", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["rows"][0][-1] == "complete"

    def test_exhaustive_vectorize_flag_identical(self, capsys):
        pytest.importorskip("numpy")
        assert main(["exhaustive", "--n", "4", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out.strip())
        assert main(["exhaustive", "--n", "4", "--vectorize", "--json"]) == 0
        assert json.loads(capsys.readouterr().out.strip()) == serial

    def test_sampling_workers_identical_across_counts(self, capsys):
        # every workers>1 count shards the same plan: identical output
        outs = []
        for w in ("2", "4"):
            assert main(["sampling", "--n", "4", "--samples", "40",
                         "--workers", w, "--json"]) == 0
            outs.append(json.loads(capsys.readouterr().out.strip()))
        assert outs[0] == outs[1]
        assert outs[0]["rows"][0][-1] == "complete"

    def test_fault_sweep_workers_identical_to_serial(self, capsys):
        base = ["fault-sweep", "--n", "6", "--trials", "2",
                "--rates", "0.0", "0.2", "--kinds", "crash",
                "--algorithms", "neighbor_exchange", "--json"]
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out.strip())
        assert main(base + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out.strip())
        assert parallel == serial  # curves are rate-deterministic

    def test_negative_workers_exits_two(self, capsys):
        assert main(["exhaustive", "--n", "3", "--workers", "-2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_workers_lands_in_history_record(self, tmp_path, capsys):
        from repro.obs import read_history

        out = str(tmp_path / "results")
        hist = str(tmp_path / "hist.jsonl")
        assert main(["bench", "--quick", "--only", "crossing", "--workers", "2",
                     "--out-dir", out, "--history", hist]) == 0
        (record,) = read_history(hist)
        assert record["workers"] == 2


class TestKernelFlag:
    """``--kernel`` switches engines without changing any paper-facing number."""

    def test_ranks_packed_identical_to_reference(self, capsys):
        assert main(["ranks", "--max-n", "4", "--kernel", "reference",
                     "--json"]) == 0
        reference = json.loads(capsys.readouterr().out.strip())
        assert main(["ranks", "--max-n", "4", "--kernel", "packed",
                     "--json"]) == 0
        packed = json.loads(capsys.readouterr().out.strip())
        assert packed == reference

    def test_ranks_kernel_with_workers_identical(self, capsys):
        assert main(["ranks", "--max-n", "4", "--json"]) == 0
        default = json.loads(capsys.readouterr().out.strip())
        assert main(["ranks", "--max-n", "4", "--workers", "2",
                     "--kernel", "packed", "--json"]) == 0
        fanned = json.loads(capsys.readouterr().out.strip())
        assert fanned == default

    def test_unknown_kernel_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["ranks", "--max-n", "3", "--kernel", "fast"])
        assert exc.value.code == 2
        assert "--kernel" in capsys.readouterr().err

    def test_ranks_new_kernels_and_streaming_identical(self, capsys):
        assert main(["ranks", "--max-n", "4", "--kernel", "reference",
                     "--json"]) == 0
        reference = json.loads(capsys.readouterr().out.strip())
        for flags in (
            ["--kernel", "four-russians"],
            ["--kernel", "sparse"],
            ["--kernel", "four-russians", "--streamed", "on",
             "--block-rows", "3"],
            ["--kernel", "sparse", "--streamed", "on"],
            ["--streamed", "off"],
        ):
            assert main(["ranks", "--max-n", "4", "--json", *flags]) == 0
            assert json.loads(capsys.readouterr().out.strip()) == reference

    def test_ranks_streamed_reference_exits_two(self, capsys):
        assert main(["ranks", "--max-n", "3", "--kernel", "reference",
                     "--streamed", "on"]) == 2
        assert "streamed" in capsys.readouterr().err

    def test_ranks_zero_block_rows_exits_two(self, capsys):
        # 0 is falsy: a naive `or DEFAULT_BLOCK_ROWS` would silently
        # accept it instead of rejecting it
        assert main(["ranks", "--max-n", "3", "--block-rows", "0"]) == 2
        assert "--block-rows" in capsys.readouterr().err

    def test_bench_kernel_lands_in_history_record(self, tmp_path, capsys):
        from repro.obs import read_history

        out = str(tmp_path / "results")
        hist = str(tmp_path / "hist.jsonl")
        assert main(["bench", "--quick", "--only", "kernels",
                     "--kernel", "reference", "--out-dir", out,
                     "--history", hist]) == 0
        (record,) = read_history(hist)
        assert record["kernel"] == "reference"
        assert record["workers"] == 1

    def test_bench_kernels_spec_ok_under_packed(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "kernels",
                     "--kernel", "packed", "--out-dir", out]) == 0
        payload = json.loads(
            (tmp_path / "results" / "BENCH_kernels.json").read_text()
        )
        assert payload["ok"] is True
        assert payload["measured"]["results_identical"] is True


class TestCostCheck:
    """``repro cost-check``: measured bits/rounds vs the symbolic specs."""

    def test_quick_check_passes(self, capsys):
        assert main(["cost-check", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "constant_cycle" in out
        assert "two_partition_simulation" in out
        assert "MISMATCH" not in out

    def test_only_filter_and_json(self, capsys):
        assert main(["cost-check", "--quick", "--only",
                     "neighbor_exchange_kt1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        (row,) = payload["rows"]
        name, kind, rounds, vs_rounds, bits, vs_bits, _backend, verdict = row
        assert name == "neighbor_exchange_kt1"
        assert verdict == "ok"
        assert vs_rounds == f"== {rounds}" and vs_bits == f"== {bits}"

    def test_unknown_spec_exits_two(self, capsys):
        assert main(["cost-check", "--only", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "constant_cycle" in err  # the known names are listed

    def test_floor_specs_included(self, capsys):
        assert main(["cost-check", "--quick", "--only",
                     "omega_total_bits_kt1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        (row,) = payload["rows"]
        name, kind, _rounds, _vs_rounds, bits, vs_bits, _backend, verdict = row
        assert name == "omega_total_bits_kt1"
        assert kind == "floor" and verdict == "ok"
        assert vs_bits.startswith(">=")


class TestReportPerVertex:
    """``repro report --per-vertex``: the ledger's per-vertex attribution."""

    def _bench(self, tmp_path):
        out = str(tmp_path / "results")
        assert main(["bench", "--quick", "--only", "simulator",
                     "--out-dir", out]) == 0
        return out

    def test_report_shows_ledger_bits_column(self, tmp_path, capsys):
        out = self._bench(tmp_path)
        capsys.readouterr()
        assert main(["report", "--dir", out]) == 0
        assert "ledger bits" in capsys.readouterr().out

    def test_per_vertex_table_rendered(self, tmp_path, capsys):
        out = self._bench(tmp_path)
        capsys.readouterr()
        assert main(["report", "--dir", out, "--per-vertex"]) == 0
        report = capsys.readouterr().out
        assert "bits sent" in report
        assert "silent rounds" in report
