"""Unit tests for the session store: wire format, validation, recovery."""

import errno
import io
import json

import pytest

from repro.errors import SessionError
from repro.replay import (
    SESSION_SCHEMA_VERSION,
    SessionStore,
    read_session,
    validate_session_events,
)
from repro.resilience import set_retry_sleep


def _record_minimal(sink, steps=3, finish=True):
    store = SessionStore(sink, run_id="fixed")
    store.start("ranks", {"ns": [3]})
    for index in range(steps):
        store.write_step(f"unit/{index}", {"value": index})
    if finish:
        store.write_result({"rows": list(range(steps))})
        store.finish(complete=True)
    return store


class TestRoundTrip:
    def test_write_then_read(self):
        buffer = io.StringIO()
        _record_minimal(buffer)
        session = read_session(io.StringIO(buffer.getvalue()))
        assert session.run_id == "fixed"
        assert session.kind == "ranks"
        assert session.params == {"ns": [3]}
        assert session.session_version == SESSION_SCHEMA_VERSION
        assert session.step_count == 3
        assert session.step(1)["data"] == {"value": 1}
        assert session.result == {"rows": [0, 1, 2]}
        assert session.complete and not session.interrupted

    def test_path_sink(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = _record_minimal(path)
        assert store.closed
        session = read_session(path)
        assert session.complete

    def test_step_index_bounds(self):
        buffer = io.StringIO()
        _record_minimal(buffer)
        session = read_session(io.StringIO(buffer.getvalue()))
        with pytest.raises(SessionError):
            session.step(3)
        with pytest.raises(SessionError):
            session.step(-1)

    def test_write_after_close_rejected(self):
        buffer = io.StringIO()
        store = _record_minimal(buffer)
        with pytest.raises(SessionError):
            store.write_step("late", {})


class TestTornTail:
    def test_truncated_log_is_valid_partial(self):
        buffer = io.StringIO()
        _record_minimal(buffer, steps=3, finish=False)
        # hard kill: last line torn mid-write, no session_end ever
        text = buffer.getvalue()
        torn = text[: text.rindex('{"run_id"') + 25]
        session = read_session(io.StringIO(torn))
        assert not session.complete
        assert session.result is None
        assert session.step_count == 2  # the torn third step is discarded

    def test_interrupt_seals_as_interrupted(self):
        buffer = io.StringIO()
        store = SessionStore(buffer, run_id="fixed")
        store.start("ranks", {"ns": [3]})
        store.write_step("unit/0", {"value": 0})
        store.interrupt()
        store.interrupt()  # idempotent
        session = read_session(io.StringIO(buffer.getvalue()))
        assert session.interrupted and not session.complete
        assert session.step_count == 1


class TestValidation:
    def _events(self, mutate=None):
        buffer = io.StringIO()
        _record_minimal(buffer)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        if mutate:
            mutate(events)
        return events

    def test_clean_log_validates(self):
        assert validate_session_events(self._events()) == []

    def test_non_contiguous_steps_flagged(self):
        def skip(events):
            for event in events:
                if event.get("event") == "step" and event["step"] == 1:
                    event["step"] = 5

        problems = validate_session_events(self._events(skip))
        assert any("contiguous" in p for p in problems)

    def test_second_result_flagged(self):
        def duplicate(events):
            result = next(e for e in events if e["event"] == "result")
            events.insert(events.index(result), dict(result))

        problems = validate_session_events(self._events(duplicate))
        assert any("second result" in p for p in problems)

    def test_event_after_end_flagged(self):
        def trailing(events):
            events.append(dict(events[-2]))  # replay a step after session_end

        problems = validate_session_events(self._events(trailing))
        assert any("after session_end" in p for p in problems)

    def test_newer_session_version_flagged(self):
        def bump(events):
            start = next(e for e in events if e["event"] == "session_start")
            start["session_version"] = SESSION_SCHEMA_VERSION + 1

        problems = validate_session_events(self._events(bump))
        assert any("newer than supported" in p for p in problems)

    def test_read_session_raises_on_invalid(self):
        buffer = io.StringIO()
        _record_minimal(buffer)
        lines = buffer.getvalue().splitlines()
        # drop the session_start line
        lines = [l for l in lines if '"session_start"' not in l]
        with pytest.raises(SessionError):
            read_session(io.StringIO("\n".join(lines) + "\n"))


class _FlakyStream(io.StringIO):
    """Fails the first N write attempts with a transient OSError."""

    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.attempts = 0

    def write(self, text):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise OSError(errno.EINTR, "interrupted system call")
        return super().write(text)


class TestRetryOnWrite:
    def setup_method(self):
        self._previous = set_retry_sleep(None)  # deterministic: no sleeping

    def teardown_method(self):
        set_retry_sleep(self._previous)

    def test_transient_failures_retried(self):
        stream = _FlakyStream(failures=2)
        store = SessionStore(stream, run_id="fixed")
        store.start("ranks", {"ns": [3]})
        store.write_step("unit/0", {"value": 0})
        store.finish()
        session = read_session(io.StringIO(stream.getvalue()))
        assert session.complete and session.step_count == 1

    def test_rollback_keeps_lines_whole(self):
        """A torn partial write is erased before the retry lands."""

        class TornStream(io.StringIO):
            def __init__(self):
                super().__init__()
                self.failed = False

            def write(self, text):
                if not self.failed and '"step"' in text:
                    # write half the line, then fail: the retry must not
                    # leave the fragment in front of the replacement
                    super().write(text[: len(text) // 2])
                    self.failed = True
                    raise OSError(errno.EIO, "flaky disk")
                return super().write(text)

        stream = TornStream()
        store = SessionStore(stream, run_id="fixed")
        store.start("ranks", {"ns": [3]})
        store.write_step("unit/0", {"value": 0})
        store.finish()
        for line in stream.getvalue().splitlines():
            json.loads(line)  # every line must be whole JSON
        session = read_session(io.StringIO(stream.getvalue()))
        assert session.step_count == 1

    def test_persistent_failure_raises(self):
        stream = _FlakyStream(failures=99)
        with pytest.raises(OSError):
            SessionStore(stream, run_id="fixed")  # trace_start never lands


class TestShardSegments:
    def test_merge_is_shard_index_ordered(self):
        buffer = io.StringIO()
        store = SessionStore(buffer, run_id="fixed")
        store.start("fault-sweep", {})
        # completion order 2, 0, 1 -- merge must still be 0, 1, 2
        store.write_shard_step(2, "cell/c", {"value": "c"})
        store.write_shard_step(0, "cell/a", {"value": "a"})
        store.write_shard_step(1, "cell/b", {"value": "b"})
        assert store.merge_shard_steps(3) == 3
        store.finish()
        session = read_session(io.StringIO(buffer.getvalue()))
        assert [s["name"] for s in session.steps] == ["cell/a", "cell/b", "cell/c"]

    def test_path_segments_cleaned_up(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = SessionStore(path, run_id="fixed")
        store.start("fault-sweep", {})
        store.write_shard_step(0, "cell/a", {"value": 1})
        segment = store.shard_segment_path(0)
        import os

        assert os.path.exists(segment)
        store.merge_shard_steps(1)
        assert not os.path.exists(segment)
        store.finish()
        assert read_session(path).step_count == 1
