"""Property tests: live execution ≡ replay, and delivery determinism.

Two invariant families drive the whole record/replay design:

* **live ≡ replay** -- for every engine kind and every parameter point
  (clean, faulted, adversarially delivered, worker-sharded), recording
  an execution and re-executing its header produce the same steps and
  the same result;
* **seed determinism** -- the adversarial delivery schedule is a pure
  function of (seed, traffic): same seed same events, and the policy
  knobs (delay / duplicate / reorder) actually bite when enabled.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NetworkPlan
from repro.replay import record_session, replay_session

SETTINGS = dict(max_examples=8, deadline=None)

ALGORITHMS = ("neighbor_exchange", "flooding", "boruvka", "sketch")


def _assert_replay_matches(kind, params):
    buffer = io.StringIO()
    record_session(kind, params, buffer)
    report = replay_session(io.StringIO(buffer.getvalue()))
    assert report.matched, report.describe()


class TestLiveEqualsReplay:
    @settings(**SETTINGS)
    @given(
        algorithm=st.sampled_from(ALGORITHMS),
        n=st.integers(min_value=5, max_value=8),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        bit_flip=st.sampled_from([0.0, 0.05, 0.2]),
        crash=st.sampled_from([0.0, 0.05]),
    )
    def test_faulted_runs(self, algorithm, n, fault_seed, bit_flip, crash):
        params = {"algorithm": algorithm, "n": n}
        if bit_flip or crash:
            params["faults"] = {
                "seed": fault_seed,
                "bit_flip_rate": bit_flip,
                "crash_rate": crash,
            }
        _assert_replay_matches("run", params)

    @settings(**SETTINGS)
    @given(
        net_seed=st.integers(min_value=0, max_value=2**16),
        max_delay=st.integers(min_value=0, max_value=3),
        duplicate=st.sampled_from([0.0, 0.3]),
        reorder=st.booleans(),
    )
    def test_networked_runs(self, net_seed, max_delay, duplicate, reorder):
        params = {
            "algorithm": "flooding",
            "n": 6,
            "network": {
                "seed": net_seed,
                "max_delay": max_delay,
                "duplicate_rate": duplicate,
                "reorder": reorder,
            },
        }
        _assert_replay_matches("run", params)

    @settings(max_examples=4, deadline=None)
    @given(n=st.integers(min_value=3, max_value=4))
    def test_exhaustive(self, n):
        _assert_replay_matches("exhaustive", {"n": n, "workers": 1})

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        eps=st.sampled_from([0.0, 0.3]),
    )
    def test_sampling(self, seed, eps):
        _assert_replay_matches(
            "sampling",
            {"n": 4, "eps": eps, "samples": 40, "seed": seed, "workers": 1},
        )

    @settings(max_examples=4, deadline=None)
    @given(ns=st.lists(st.integers(min_value=3, max_value=5), min_size=1, max_size=2))
    def test_ranks(self, ns):
        _assert_replay_matches(
            "ranks", {"ns": ns, "kernel": "auto", "workers": 1}
        )

    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from([1, 2]),
    )
    def test_fault_sweep_including_workers(self, seed, workers):
        _assert_replay_matches(
            "fault-sweep",
            {
                "algorithms": ["neighbor_exchange"],
                "kinds": ["bit_flip"],
                "rates": [0.0, 0.1],
                "n": 6,
                "trials": 2,
                "seed": seed,
                "workers": workers,
            },
        )


class TestDeliveryDeterminism:
    def _events(self, seed, max_delay=2, duplicate=0.3, reorder=True):
        from repro.replay import execute_run

        result = execute_run(
            {
                "algorithm": "flooding",
                "n": 6,
                "network": {
                    "seed": seed,
                    "max_delay": max_delay,
                    "duplicate_rate": duplicate,
                    "reorder": reorder,
                },
            }
        )
        return tuple(e.as_dict() for e in result.network_events)

    @settings(**SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_same_schedule(self, seed):
        assert self._events(seed) == self._events(seed)

    @settings(**SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_policies_bite_when_enabled(self, seed):
        events = self._events(seed, max_delay=3, duplicate=0.5, reorder=True)
        kinds = {e["kind"] for e in events}
        assert "delayed" in kinds  # delay 1..3 over dozens of deliveries

    def test_disabled_policies_stay_silent(self):
        plan = NetworkPlan(seed=7)
        assert plan.is_pristine
        assert self._events(seed=7, max_delay=0, duplicate=0.0, reorder=False) == ()
