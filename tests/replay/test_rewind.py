"""The session cursor: rewind/step navigation and counterfactual branches."""

import io

import pytest

from repro.errors import ReplayDivergenceError, SessionError
from repro.replay import SessionCursor, record_session

PARAMS = {
    "algorithm": "flooding",
    "n": 6,
    "faults": {"seed": 4, "bit_flip_rate": 0.1},
}


@pytest.fixture(scope="module")
def recorded():
    buffer = io.StringIO()
    record_session("run", PARAMS, buffer)
    return buffer.getvalue()


def _cursor(recorded):
    return SessionCursor(io.StringIO(recorded))


class TestNavigation:
    def test_rewind_lands_on_step(self, recorded):
        cursor = _cursor(recorded)
        step = cursor.rewind(2)
        assert step["step"] == 2
        assert cursor.position == 2

    def test_step_advances(self, recorded):
        cursor = _cursor(recorded)
        cursor.rewind(1)
        first = cursor.step()
        second = cursor.step()
        assert (first["step"], second["step"]) == (1, 2)
        assert cursor.position == 3

    def test_walk_to_exhaustion(self, recorded):
        cursor = _cursor(recorded)
        count = 0
        while not cursor.exhausted:
            cursor.step()
            count += 1
        assert count == cursor.session.step_count
        with pytest.raises(SessionError):
            cursor.step()

    def test_rewind_out_of_range(self, recorded):
        cursor = _cursor(recorded)
        with pytest.raises(SessionError):
            cursor.rewind(cursor.session.step_count)
        with pytest.raises(SessionError):
            cursor.rewind(-1)

    def test_steps_carry_round_state(self, recorded):
        cursor = _cursor(recorded)
        step = cursor.rewind(0)
        assert step["t"] == 1
        assert len(step["broadcasts"]) == PARAMS["n"]
        assert len(step["digests"]) == PARAMS["n"]
        assert step["rng"]["faults"] is not None  # faulted run records its RNG


class TestBranch:
    def test_pure_replay_branch_agrees(self, recorded):
        cursor = _cursor(recorded)
        cursor.rewind(3)
        branched = cursor.branch()
        assert branched.step_count == cursor.session.step_count
        assert branched.steps == cursor.session.steps

    def test_future_only_override_passes_prefix_check(self, recorded):
        cursor = _cursor(recorded)
        cursor.rewind(3)
        # same adversary, but silenced after the rewind point: the past
        # (steps 0..2) is untouched, so the prefix check must pass
        overrides = {"faults": {"seed": 4, "bit_flip_rate": 0.1, "last_round": 3}}
        branched = cursor.branch(overrides)
        assert branched.steps[:3] == cursor.session.steps[:3]

    def test_changed_past_raises_divergence(self, recorded):
        cursor = _cursor(recorded)
        cursor.rewind(3)
        with pytest.raises(ReplayDivergenceError) as excinfo:
            cursor.branch({"faults": {"seed": 99, "bit_flip_rate": 0.5}})
        assert excinfo.value.divergence is not None
        assert excinfo.value.divergence.location.startswith("step ")

    def test_sink_written_only_on_success(self, recorded, tmp_path):
        import os

        cursor = _cursor(recorded)
        cursor.rewind(2)
        good = str(tmp_path / "good.jsonl")
        cursor.branch({}, sink=good)
        assert os.path.exists(good)
        bad = str(tmp_path / "bad.jsonl")
        with pytest.raises(ReplayDivergenceError):
            cursor.branch({"faults": {"seed": 99, "bit_flip_rate": 0.5}}, sink=bad)
        assert not os.path.exists(bad)
