"""Golden byte-identity: record -> replay must reproduce everything.

The acceptance bar for the whole layer: for clean, faulted, and
adversarially-delivered executions, a re-execution from the session
header reproduces the session log byte-for-byte (modulo the wall-clock
``ts`` envelope stamp), the RunResult-derived payload exactly, and the
cost summary exactly -- serially and under ``workers=2``.
"""

import io
import json

import pytest

from repro.costs import cost_summary_from_broadcasts
from repro.replay import execute_run, read_session, record_session, replay_session

CLEAN = {"algorithm": "flooding", "n": 7}
FAULTED = {
    "algorithm": "boruvka",
    "n": 7,
    "instance": "two_cycle",
    "split": 3,
    "faults": {"seed": 5, "bit_flip_rate": 0.08, "crash_rate": 0.02},
}
REORDERED = {
    "algorithm": "neighbor_exchange",
    "n": 6,
    "network": {"seed": 11, "max_delay": 2, "duplicate_rate": 0.2, "reorder": True},
}
SCENARIOS = [("clean", CLEAN), ("faulted", FAULTED), ("reordered", REORDERED)]


def _canonical_lines(text):
    """Session-log lines with the wall-clock stamp dropped."""
    return [
        json.dumps(
            {k: v for k, v in json.loads(line).items() if k != "ts"},
            sort_keys=True,
        )
        for line in text.splitlines()
        if line.strip()
    ]


class TestByteIdenticalRecordings:
    @pytest.mark.parametrize("name,params", SCENARIOS)
    def test_two_recordings_identical(self, name, params):
        first, second = io.StringIO(), io.StringIO()
        payload_a, _ = record_session("run", params, first, run_id="golden")
        payload_b, _ = record_session("run", params, second, run_id="golden")
        assert payload_a == payload_b
        assert _canonical_lines(first.getvalue()) == _canonical_lines(
            second.getvalue()
        )

    @pytest.mark.parametrize("name,params", SCENARIOS)
    def test_replay_matches(self, name, params):
        buffer = io.StringIO()
        record_session("run", params, buffer)
        report = replay_session(io.StringIO(buffer.getvalue()))
        assert report.matched, report.describe()
        assert report.result_compared

    @pytest.mark.parametrize("name,params", SCENARIOS)
    def test_run_results_bit_identical(self, name, params):
        a = execute_run(params)
        b = execute_run(params)
        assert a.outputs == b.outputs
        assert a.broadcast_history == b.broadcast_history
        assert a.fault_events == b.fault_events
        assert a.network_events == b.network_events
        assert a.cost_summary == b.cost_summary
        assert [t.comparable() for t in a.transcripts] == [
            t.comparable() for t in b.transcripts
        ]


class TestCostParity:
    @pytest.mark.parametrize("name,params", SCENARIOS)
    def test_recorded_summary_matches_step_log(self, name, params):
        buffer = io.StringIO()
        payload, _ = record_session("run", params, buffer)
        session = read_session(io.StringIO(buffer.getvalue()))
        rebuilt = cost_summary_from_broadcasts(
            [step["broadcasts"] for step in session.steps]
        )
        assert rebuilt == payload["cost_summary"]


class TestWorkersInvariance:
    def _sweep_params(self, workers):
        return {
            "algorithms": ["neighbor_exchange", "flooding"],
            "kinds": ["bit_flip", "erasure"],
            "rates": [0.0, 0.1],
            "n": 6,
            "trials": 2,
            "seed": 0,
            "workers": workers,
        }

    def test_fault_sweep_session_independent_of_workers(self):
        serial, parallel = io.StringIO(), io.StringIO()
        payload_1, _ = record_session(
            "fault-sweep", self._sweep_params(1), serial, run_id="golden"
        )
        payload_2, _ = record_session(
            "fault-sweep", self._sweep_params(2), parallel, run_id="golden"
        )
        session_1 = read_session(io.StringIO(serial.getvalue()))
        session_2 = read_session(io.StringIO(parallel.getvalue()))
        assert session_1.steps == session_2.steps
        # payloads agree on everything but the recorded worker count
        payload_1.pop("workers", None)
        payload_2.pop("workers", None)
        assert payload_1 == payload_2

    def test_fault_sweep_replay_matches_under_workers(self):
        buffer = io.StringIO()
        record_session("fault-sweep", self._sweep_params(2), buffer)
        report = replay_session(io.StringIO(buffer.getvalue()))
        assert report.matched, report.describe()


class TestBatchKinds:
    @pytest.mark.parametrize(
        "kind,params",
        [
            ("exhaustive", {"n": 4, "workers": 1}),
            ("sampling", {"n": 4, "eps": 0.3, "samples": 60, "seed": 2, "workers": 1}),
            ("ranks", {"ns": [3, 4], "kernel": "auto", "workers": 1}),
        ],
    )
    def test_record_replay_round_trip(self, kind, params):
        buffer = io.StringIO()
        payload, _ = record_session(kind, params, buffer)
        report = replay_session(io.StringIO(buffer.getvalue()))
        assert report.matched, report.describe()
        assert report.replayed.result == payload
