"""Replay verification: divergences are found, located, and reported."""

import io
import json

import pytest

from repro.replay import (
    compare_sessions,
    read_session,
    record_session,
    replay_session,
)

PARAMS = {
    "algorithm": "flooding",
    "n": 6,
    "faults": {"seed": 4, "bit_flip_rate": 0.1},
}


def _recorded_text(params=PARAMS, kind="run"):
    buffer = io.StringIO()
    record_session(kind, params, buffer)
    return buffer.getvalue()


def _tamper(text, predicate, mutate):
    lines = text.splitlines()
    for index, line in enumerate(lines):
        event = json.loads(line)
        if predicate(event):
            mutate(event)
            lines[index] = json.dumps(event)
            break
    else:
        raise AssertionError("tamper target not found")
    return "\n".join(lines) + "\n"


class TestTamperDetection:
    def test_clean_log_matches(self):
        report = replay_session(io.StringIO(_recorded_text()))
        assert report.matched and report.result_compared

    def test_tampered_broadcast_located(self):
        def flip(event):
            event["broadcasts"][0] = "9"

        text = _tamper(
            _recorded_text(),
            lambda e: e.get("event") == "step" and e.get("step") == 2,
            flip,
        )
        report = replay_session(io.StringIO(text))
        assert not report.matched
        assert report.divergence.location == "step 2"
        assert report.divergence.field == "broadcasts"

    def test_tampered_digest_located(self):
        def corrupt(event):
            event["digests"][1] = "0" * 64

        text = _tamper(
            _recorded_text(),
            lambda e: e.get("event") == "step" and e.get("step") == 1,
            corrupt,
        )
        report = replay_session(io.StringIO(text))
        assert not report.matched
        assert report.divergence.location == "step 1"
        assert report.divergence.field == "digests"

    def test_tampered_result_located(self):
        def inflate(event):
            event["payload"]["total_bits"] += 1

        text = _tamper(
            _recorded_text(), lambda e: e.get("event") == "result", inflate
        )
        report = replay_session(io.StringIO(text))
        assert not report.matched
        assert report.divergence.location == "result"
        assert report.divergence.field == "total_bits"

    def test_earliest_divergence_wins(self):
        def flip(event):
            event["broadcasts"][0] = "9"

        text = _recorded_text()
        text = _tamper(
            text, lambda e: e.get("event") == "step" and e.get("step") == 3, flip
        )
        text = _tamper(
            text, lambda e: e.get("event") == "step" and e.get("step") == 1, flip
        )
        report = replay_session(io.StringIO(text))
        assert report.divergence.location == "step 1"


class TestPartialSessions:
    def test_truncated_recording_replays_as_prefix(self):
        text = _recorded_text()
        # keep header + first two steps only (simulates a hard kill)
        kept = []
        steps = 0
        for line in text.splitlines():
            event = json.loads(line)
            if event.get("event") == "step":
                steps += 1
                if steps > 2:
                    break
            kept.append(line)
        report = replay_session(io.StringIO("\n".join(kept) + "\n"))
        assert report.partial
        assert report.matched
        assert report.steps_compared == 2
        assert not report.result_compared

    def test_truncated_but_tampered_still_diverges(self):
        def flip(event):
            event["broadcasts"][0] = "9"

        text = _tamper(
            _recorded_text(),
            lambda e: e.get("event") == "step" and e.get("step") == 0,
            flip,
        )
        kept = [
            line
            for line in text.splitlines()
            if json.loads(line).get("event") != "session_end"
        ]
        report = replay_session(io.StringIO("\n".join(kept) + "\n"))
        assert report.partial and not report.matched


class TestReportShape:
    def test_describe_names_the_divergence(self):
        def flip(event):
            event["broadcasts"][0] = "9"

        text = _tamper(
            _recorded_text(),
            lambda e: e.get("event") == "step" and e.get("step") == 0,
            flip,
        )
        report = replay_session(io.StringIO(text))
        described = report.describe()
        assert "DIVERGED" in described
        assert "step 0.broadcasts" in described

    def test_compare_sessions_accepts_parsed_inputs(self):
        text = _recorded_text()
        a = read_session(io.StringIO(text))
        b = read_session(io.StringIO(text))
        assert compare_sessions(a, b).matched
