"""Kill-mid-run: an interrupted recording leaves a replayable session.

The child process records a fault sweep and sends *itself* SIGTERM after
a fixed number of steps -- deterministic, no sleep/poll races -- going
through the exact production path: ``graceful_interrupts`` turns the
signal into ``KeyboardInterrupt``, the registered flush hook seals the
session log with an ``interrupted`` ``session_end``, and the process
exits 130. The parent then replays the truncated session and must get a
clean partial match over the recorded prefix.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.replay import read_session, replay_session

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PARAMS = (
    "{'algorithms': ['neighbor_exchange', 'flooding'], 'kinds': ['bit_flip'],"
    " 'rates': [0.0, 0.05, 0.1], 'n': 6, 'trials': 2, 'seed': 0, 'workers': 1}"
)

CHILD = textwrap.dedent(
    f"""
    import os, signal, sys
    sys.path.insert(0, {SRC!r})
    from repro.replay import SessionStore
    from repro.replay.engines import execute_record
    from repro.resilience import graceful_interrupts

    params = {PARAMS}
    store = SessionStore(sys.argv[1])
    store.start("fault-sweep", params)
    recorded = store.write_step
    count = [0]

    def terminating_write(name, data):
        recorded(name, data)
        count[0] += 1
        if count[0] == 3:
            os.kill(os.getpid(), signal.SIGTERM)  # the "kill" arrives mid-run

    store.write_step = terminating_write
    try:
        with graceful_interrupts():
            execute_record("fault-sweep", params, session=store)
    except KeyboardInterrupt:
        sys.exit(130)
    sys.exit(0)  # unreachable if the kill landed
    """
)


@pytest.fixture(scope="module")
def killed_session(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("killed") / "session.jsonl")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, path],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 130, proc.stderr
    return path


class TestKilledMidRun:
    def test_log_is_sealed_as_interrupted(self, killed_session):
        session = read_session(killed_session)
        assert session.interrupted and not session.complete
        assert session.result is None
        assert session.step_count == 3  # exactly the steps before the kill

    def test_truncated_session_replays_as_prefix(self, killed_session):
        report = replay_session(killed_session)
        assert report.partial
        assert report.matched, report.describe()
        assert report.steps_compared == 3
        # the replay ran to completion; the recording is its strict prefix
        assert report.steps_replayed > report.steps_compared
