"""Hypothesis property tests on cycle covers and cover-level crossings."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_cycle, random_union_of_cycles
from repro.indist import cover_from_edges, cross_cover, crossing_neighbors
from repro.instances import CycleCover


@st.composite
def random_covers(draw):
    n = draw(st.integers(min_value=6, max_value=12))
    k = draw(st.integers(min_value=1, max_value=max(1, n // 4)))
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    if k == 1:
        g = random_cycle(n, rng)
    else:
        g = random_union_of_cycles(n, k, rng)
    edges = frozenset((min(u, v), max(u, v)) for u, v in g.edges())
    return cover_from_edges(n, edges)


class TestCoverRoundTrip:
    @given(random_covers())
    @settings(max_examples=60, deadline=None)
    def test_edges_to_cover_to_edges(self, cover):
        rebuilt = cover_from_edges(cover.n, cover.edges)
        assert rebuilt == cover
        assert rebuilt.cycle_lengths() == cover.cycle_lengths()

    @given(random_covers())
    @settings(max_examples=60, deadline=None)
    def test_structure_invariants(self, cover):
        assert sum(cover.cycle_lengths()) == cover.n
        assert len(cover.edges) == cover.n  # 2-regular: n edges
        g = cover.to_graph()
        assert g.is_regular(2)
        assert len(g.connected_components()) == cover.num_cycles


class TestCrossingProperties:
    @given(random_covers())
    @settings(max_examples=50, deadline=None)
    def test_crossing_preserves_2_regularity(self, cover):
        for nbr in list(crossing_neighbors(cover))[:10]:
            assert len(nbr.edges) == cover.n
            assert nbr.to_graph().is_regular(2)

    @given(random_covers())
    @settings(max_examples=50, deadline=None)
    def test_crossing_changes_exactly_two_edges(self, cover):
        for nbr in list(crossing_neighbors(cover))[:10]:
            assert len(cover.edges - nbr.edges) == 2
            assert len(nbr.edges - cover.edges) == 2

    @given(random_covers())
    @settings(max_examples=50, deadline=None)
    def test_crossing_is_reversible(self, cover):
        """Any cover reachable by one crossing can reach back."""
        for nbr in list(crossing_neighbors(cover))[:5]:
            assert cover in crossing_neighbors(nbr)

    @given(random_covers())
    @settings(max_examples=40, deadline=None)
    def test_component_count_changes_by_at_most_one(self, cover):
        for nbr in list(crossing_neighbors(cover))[:10]:
            assert abs(nbr.num_cycles - cover.num_cycles) <= 1
