"""Tests for cycle instance builders."""

import random

import pytest

from repro.instances import (
    multi_cycle_instance,
    one_cycle_instance,
    random_multi_cycle_instance,
    random_one_cycle_instance,
    two_cycle_instance,
)


class TestOneCycleInstance:
    def test_default_order_kt0(self):
        inst = one_cycle_instance(6, kt=0)
        assert inst.kt == 0
        assert inst.input_graph().is_connected()
        assert all(inst.input_degree(v) == 2 for v in range(6))

    def test_kt1(self):
        inst = one_cycle_instance(6, kt=1)
        assert inst.kt == 1
        assert inst.input_ports(0) == frozenset({1, 5})

    def test_custom_order(self):
        inst = one_cycle_instance(5, order=[0, 2, 4, 1, 3])
        assert inst.has_input_edge(0, 2)
        assert inst.has_input_edge(3, 0)
        assert not inst.has_input_edge(0, 1)

    def test_custom_ids(self):
        inst = one_cycle_instance(4, kt=1, ids=[100, 200, 300, 400])
        assert inst.vertex_id(3) == 400

    def test_shuffled_ports_still_valid(self):
        inst = one_cycle_instance(7, kt=0, rng=random.Random(5))
        for v in range(7):
            assert set(inst.port_labels(v)) == set(range(1, 7))


class TestTwoAndMultiCycle:
    def test_two_cycle_split(self):
        inst = two_cycle_instance(9, 4)
        comps = inst.input_graph().connected_components()
        assert sorted(len(c) for c in comps) == [4, 5]

    def test_multi_cycle(self):
        inst = multi_cycle_instance([[0, 1, 2], [3, 4, 5, 6], [7, 8, 9]])
        comps = inst.input_graph().connected_components()
        assert sorted(len(c) for c in comps) == [3, 3, 4]

    def test_multi_cycle_must_cover_indices(self):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            multi_cycle_instance([[0, 1, 2], [4, 5, 6]])  # index 3 missing

    def test_random_one_cycle(self):
        rng = random.Random(2)
        inst = random_one_cycle_instance(8, kt=0, rng=rng)
        assert inst.input_graph().is_connected()
        assert inst.input_graph().is_regular(2)

    def test_random_multi_cycle(self):
        rng = random.Random(2)
        inst = random_multi_cycle_instance(12, 3, kt=1, rng=rng)
        assert len(inst.input_graph().connected_components()) == 3
