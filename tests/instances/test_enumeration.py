"""Tests for exhaustive enumeration of V1 / V2 against closed forms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import (
    CycleCover,
    count_cycles_on_set,
    count_one_cycle_covers,
    count_two_cycle_covers,
    count_two_cycle_covers_with_split,
    enumerate_multi_cycle_covers,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
    v2_to_v1_ratio,
)


class TestOneCycleEnumeration:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_count_matches_formula(self, n):
        covers = list(enumerate_one_cycle_covers(n))
        assert len(covers) == count_one_cycle_covers(n) == math.factorial(n - 1) // 2

    def test_no_duplicates(self):
        covers = list(enumerate_one_cycle_covers(6))
        assert len(set(covers)) == len(covers)

    def test_all_are_hamiltonian(self):
        for cover in enumerate_one_cycle_covers(6):
            assert cover.is_one_cycle()
            g = cover.to_graph()
            assert g.is_connected() and g.is_regular(2)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_one_cycle_covers(2))


class TestTwoCycleEnumeration:
    @pytest.mark.parametrize("n", [6, 7, 8, 9])
    def test_count_matches_formula(self, n):
        covers = list(enumerate_two_cycle_covers(n))
        assert len(covers) == count_two_cycle_covers(n)
        assert len(set(covers)) == len(covers)

    def test_structure(self):
        for cover in enumerate_two_cycle_covers(7):
            assert cover.num_cycles == 2
            assert all(l >= 3 for l in cover.cycle_lengths())
            assert sum(cover.cycle_lengths()) == 7

    def test_too_small_yields_nothing(self):
        assert list(enumerate_two_cycle_covers(5)) == []

    def test_split_counts(self):
        # |T_3| for n=8: C(8,3) * 1 * (4!/2) = 672
        assert count_two_cycle_covers_with_split(8, 3) == 672
        # |T_4| for n=8: C(8,4) * 3 * 3 / 2 = 315
        assert count_two_cycle_covers_with_split(8, 4) == 315
        assert count_two_cycle_covers(8) == 672 + 315

    def test_split_counts_sum_to_total(self):
        for n in (7, 9, 10):
            total = sum(
                count_two_cycle_covers_with_split(n, i)
                for i in range(3, n // 2 + 1)
                if n - i >= 3
            )
            assert total == count_two_cycle_covers(n)

    def test_invalid_split_raises(self):
        with pytest.raises(ValueError):
            count_two_cycle_covers_with_split(8, 5)  # smaller cycle must be <= n/2


class TestMultiCycleEnumeration:
    def test_n9_includes_three_cycles(self):
        covers = list(enumerate_multi_cycle_covers(9))
        by_count = {}
        for c in covers:
            by_count.setdefault(c.num_cycles, 0)
            by_count[c.num_cycles] += 1
        assert by_count[1] == count_one_cycle_covers(9)
        assert by_count[2] == count_two_cycle_covers(9)
        # 3 cycles of length 3: partition 9 into three 3-sets, one cycle each:
        # 9! / (3!^3 * 3!) set partitions * 1 cycle per block = 280
        assert by_count[3] == 280

    def test_min_length_respected(self):
        for c in enumerate_multi_cycle_covers(8, min_length=4):
            assert all(l >= 4 for l in c.cycle_lengths())


class TestCycleCover:
    def test_from_cycles_edges(self):
        c = CycleCover.from_cycles(5, ((0, 1, 2, 3, 4),))
        assert (0, 4) in c.edges and (0, 1) in c.edges
        assert len(c.edges) == 5

    def test_equality_by_edge_set(self):
        a = CycleCover.from_cycles(4, ((0, 1, 2, 3),))
        b = CycleCover.from_cycles(4, ((1, 2, 3, 0),))
        assert a == b and hash(a) == hash(b)

    def test_reflection_equal(self):
        a = CycleCover.from_cycles(4, ((0, 1, 2, 3),))
        b = CycleCover.from_cycles(4, ((0, 3, 2, 1),))
        assert a == b

    def test_cycle_lengths_sorted(self):
        c = CycleCover.from_cycles(9, ((0, 1, 2, 3, 4), (5, 6, 7, 8)))
        assert c.cycle_lengths() == (4, 5)


class TestRatio:
    def test_ratio_values(self):
        assert v2_to_v1_ratio(8) == pytest.approx(987 / 2520)

    def test_ratio_grows_like_half_log(self):
        # (|V2|/|V1|) / ln n should approach 1/2 from below as n grows
        r1 = v2_to_v1_ratio(20) / math.log(20)
        r2 = v2_to_v1_ratio(200) / math.log(200)
        assert r1 < r2 < 0.5

    @given(st.integers(min_value=8, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_closed_form_ratio_matches_counts(self, n):
        from repro.indist import predicted_v2_v1_ratio

        exact = count_two_cycle_covers(n) / count_one_cycle_covers(n)
        assert predicted_v2_v1_ratio(n) == pytest.approx(exact, rel=1e-9)
