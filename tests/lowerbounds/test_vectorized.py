"""Vectorized exhaustive kernel: exact float equality with the python scan."""

import itertools

import pytest

from repro.lowerbounds import covers_and_pairs_for, forced_error_of_assignment
from repro.lowerbounds.exhaustive import _scan_shard_python
from repro.lowerbounds.vectorized import (
    HAVE_NUMPY,
    block_scores,
    scan_assignments,
)
from repro.resilience import Budget

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


@needs_numpy
@pytest.mark.parametrize(
    "n,alphabet",
    [(3, ("0", "1")), (3, ("", "0", "1")), (4, ("0", "1")), (4, ("", "0", "1"))],
)
def test_block_scores_bit_identical_over_full_space(n, alphabet):
    """Exact ``==`` on every float, over the entire enumerable space.

    The kernel promises bit-identity, not closeness: it accumulates the
    per-cover error terms with the same elementwise float operations and
    in the same cover order as the serial scorer.
    """
    table = [(c, list(p)) for c, p in covers_and_pairs_for(n)]
    total = len(alphabet) ** n
    errors, fooled = block_scores(n, alphabet, table, 0, total)
    for index, assignment in enumerate(itertools.product(alphabet, repeat=n)):
        expected = forced_error_of_assignment(n, assignment, table)
        assert float(errors[index]) == expected  # exact, no approx


@needs_numpy
@pytest.mark.parametrize("block_size", [1, 3, 1024])
def test_scan_matches_python_scan_exactly(block_size):
    n, alphabet = 4, ("", "0", "1")
    table = [(c, tuple(p)) for c, p in covers_and_pairs_for(n)]
    total = len(alphabet) ** n
    py = _scan_shard_python(n, alphabet, table, 0, total, None)
    vec = scan_assignments(
        n, alphabet, table, 0, total, block_size=block_size
    )
    assert vec == py  # best (error, index), next_index, counts, exhausted


@needs_numpy
def test_scan_respects_shard_slices():
    n, alphabet = 4, ("0", "1")
    table = [(c, tuple(p)) for c, p in covers_and_pairs_for(n)]
    total = len(alphabet) ** n
    cut = total // 3
    left = scan_assignments(n, alphabet, table, 0, cut)
    right = scan_assignments(n, alphabet, table, cut, total)
    assert left[1] == cut and right[1] == total
    assert left[2] + right[2] == total
    full = scan_assignments(n, alphabet, table, 0, total)
    assert full[3] == left[3] + right[3]  # fooled counts are additive


@needs_numpy
def test_scan_budget_semantics_match_python_scan():
    n, alphabet = 3, ("0", "1")
    table = [(c, tuple(p)) for c, p in covers_and_pairs_for(n)]
    total = len(alphabet) ** n
    for units in (1, total - 1, total, total + 5):
        py = _scan_shard_python(
            n, alphabet, table, 0, total, Budget(max_units=units)
        )
        vec = scan_assignments(
            n, alphabet, table, 0, total, budget=Budget(max_units=units),
            block_size=1,
        )
        assert vec == py


def test_scan_requires_numpy_or_raises():
    if HAVE_NUMPY:
        pytest.skip("numpy present; import-error path not reachable")
    with pytest.raises(RuntimeError):
        scan_assignments(3, ("0", "1"), [], 0, 8)


def test_forced_vectorize_without_numpy_degrades_cleanly(monkeypatch):
    """``vectorize=True`` on a numpy-less install silently runs python."""
    import repro.lowerbounds.exhaustive as ex

    monkeypatch.setattr(ex, "HAVE_NUMPY", False)
    report = ex.universal_bound_id_oblivious(3, alphabet=("0", "1"), vectorize=True)
    monkeypatch.undo()
    assert report == ex.universal_bound_id_oblivious(3, alphabet=("0", "1"))
