"""Tests for the KT-0 lower-bound engines (Theorems 3.1 and 3.5)."""

import math

import pytest

from repro.core import (
    BCC1_KT0,
    ConstantAlgorithm,
    NO,
    NodeAlgorithm,
    SilentAlgorithm,
    Simulator,
    YES,
    distributional_error,
)
from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
from repro.instances import one_cycle_instance
from repro.lowerbounds import (
    adversary_defeats,
    find_fooling_pairs,
    fool_algorithm,
    forced_error_curve,
    forced_error_of_algorithm,
    guaranteed_class_size,
    label_class_count,
    minimum_rounds_for_error,
    star_distribution,
    theorem_3_5_error_bound,
    uniform_v1_v2_distribution,
)

SIM = Simulator(BCC1_KT0)


class AlwaysNo(NodeAlgorithm):
    def broadcast(self, t):
        return ""

    def receive(self, t, m):
        pass

    def output(self):
        return NO


class TestTheorem35ClosedForm:
    def test_label_count(self):
        assert label_class_count(0) == 1
        assert label_class_count(2) == 81

    def test_class_size_pigeonhole(self):
        assert guaranteed_class_size(30, 0) == 10
        assert guaranteed_class_size(30, 1) == 2  # ceil(10 / 9)

    def test_error_bound_at_t0(self):
        # at t = 0 all of S is one class: error = 1/2
        assert theorem_3_5_error_bound(30, 0) == pytest.approx(0.5)

    def test_error_decays_with_t(self):
        n = 3**8
        errs = [theorem_3_5_error_bound(n, t) for t in range(5)]
        assert all(errs[i] >= errs[i + 1] for i in range(4))

    def test_minimum_rounds_is_logarithmic(self):
        """The smallest t with bound < 1/n is ~ log3(n)/4: the forced error
        decays as Theta(3^{-4t}), so t must reach (log3 n)/4 before the
        bound dips under 1/n -- the Omega(log n) statement at c = 1."""
        for k in range(4, 20, 2):
            n = 3**k
            t = minimum_rounds_for_error(n, 1.0 / n)
            assert abs(t - k / 4) <= 1.0, (k, t)
        ts = [minimum_rounds_for_error(3**k, 3.0**-k) for k in range(4, 20)]
        assert all(t2 >= t1 for t1, t2 in zip(ts, ts[1:]))
        assert ts[-1] > ts[0]


class TestTheorem35Operational:
    @pytest.mark.parametrize("factory", [SilentAlgorithm, ConstantAlgorithm])
    def test_symmetric_algorithms_fully_fooled(self, factory):
        rep = fool_algorithm(SIM, factory, 15, rounds=3)
        # all of S shares one label, so every pair is fooled
        assert rep.largest_class_size == rep.independent_set_size == 5
        assert rep.all_pairs_indistinguishable
        assert rep.achieved_error == pytest.approx(0.5)

    def test_always_no_errs_on_center(self):
        rep = fool_algorithm(SIM, AlwaysNo, 15, rounds=2)
        assert rep.center_decision == NO
        assert rep.achieved_error == pytest.approx(0.5)

    def test_real_algorithm_escapes_after_enough_rounds(self):
        n = 15
        full = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
        rep = fool_algorithm(SIM, connectivity_factory(2), n, rounds=full)
        # at full rounds, the exchange distinguishes: achieved error must be
        # below the symmetric worst case on the NO side
        assert rep.center_decision == YES
        assert rep.achieved_error < 0.5

    def test_star_distribution_weights(self):
        dist = star_distribution(12)
        assert sum(w for _, _, w in dist) == pytest.approx(1.0)
        assert dist[0][1] == YES and dist[0][2] == 0.5
        assert all(truth == NO for _, truth, _ in dist[1:])

    def test_distributional_error_of_silent(self):
        dist = star_distribution(12)
        err = distributional_error(SIM, dist, SilentAlgorithm, rounds=3)
        assert err == pytest.approx(0.5)


class TestTheorem31Engine:
    def test_silent_algorithm_forced_half(self):
        rep = forced_error_of_algorithm(SIM, SilentAlgorithm, 6, rounds=3)
        assert rep.forced_error == pytest.approx(0.5, abs=1e-9)
        assert rep.yes_on_one_cycles == rep.one_cycle_count

    def test_always_no_forced_half(self):
        rep = forced_error_of_algorithm(SIM, AlwaysNo, 6, rounds=2)
        assert rep.forced_error == pytest.approx(0.5, abs=1e-9)
        assert rep.yes_on_one_cycles == 0

    def test_real_algorithm_curve_decays_to_zero(self):
        n = 6
        full = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
        curve = forced_error_curve(
            SIM, connectivity_factory(2), n, [0, 2, full]
        )
        assert curve[0][1] == pytest.approx(0.5)
        assert curve[-1][1] == pytest.approx(0.0)

    def test_uniform_distribution_weights(self):
        dist = uniform_v1_v2_distribution(6)
        assert sum(w for _, _, w in dist) == pytest.approx(1.0)
        yes_mass = sum(w for _, truth, w in dist if truth == YES)
        assert yes_mass == pytest.approx(0.5)

    def test_distributional_error_matches_forced_error_for_silent(self):
        """For the silent algorithm, the measured distributional error on
        the uniform V1/V2 distribution equals the forced-error prediction:
        it answers YES everywhere, so it errs on exactly the V2 half."""
        dist = uniform_v1_v2_distribution(6)
        err = distributional_error(SIM, dist, SilentAlgorithm, rounds=2)
        assert err == pytest.approx(0.5)


class TestAdversary:
    def test_defeats_silent(self):
        inst = one_cycle_instance(10, kt=0)
        assert adversary_defeats(SIM, SilentAlgorithm, inst, rounds=4)

    def test_fooling_pairs_verified(self):
        inst = one_cycle_instance(10, kt=0)
        pairs = find_fooling_pairs(SIM, ConstantAlgorithm, inst, rounds=3, limit=5)
        assert pairs
        for p in pairs:
            assert p.indistinguishable
            assert p.same_decision
            assert not p.crossed_instance.input_graph().is_connected()

    def test_cannot_defeat_completed_exchange(self):
        n = 10
        inst = one_cycle_instance(n, kt=0)
        full = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
        pairs = find_fooling_pairs(SIM, connectivity_factory(2), inst, rounds=full)
        assert pairs == []

    def test_non_disconnecting_crossings_optional(self):
        inst = one_cycle_instance(8, kt=0)
        pairs = find_fooling_pairs(
            SIM, SilentAlgorithm, inst, rounds=2, require_disconnecting=False
        )
        kinds = {
            p.crossed_instance.input_graph().is_connected() for p in pairs
        }
        assert kinds == {True, False}  # both reversal and split crossings
