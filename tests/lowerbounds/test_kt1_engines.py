"""Tests for the KT-1 lower-bound engines (Theorems 4.4 and 4.5)."""

import math

import pytest

from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
from repro.lowerbounds import (
    components_round_bound,
    connectivity_round_bound,
    information_bound_table,
    measure_bcc_algorithm_information,
    multicycle_round_bound,
    omega_log_constant,
    round_bound_table,
)
from repro.partitions import bell_number, log2_bell, perfect_matching_count


class TestTheorem44:
    def test_connectivity_bound_values(self):
        row = connectivity_round_bound(8)
        assert row.cc_bits == pytest.approx(math.log2(bell_number(8)))
        assert row.bits_per_round == 64  # 2 * 4n
        assert row.round_lower_bound == pytest.approx(row.cc_bits / 64)
        assert row.instance_vertices == 32

    def test_multicycle_bound_values(self):
        row = multicycle_round_bound(8)
        assert row.cc_bits == pytest.approx(math.log2(perfect_matching_count(8)))
        assert row.bits_per_round == 32  # 2 * 2n
        assert row.instance_vertices == 16

    def test_multicycle_odd_rejected(self):
        with pytest.raises(ValueError):
            multicycle_round_bound(7)

    def test_bound_is_omega_log(self):
        """normalized = bound / log2 N must sit in a stable positive band
        and *increase* toward its limit (the bound is ~ (n log n) / n)."""
        ns = [8, 32, 128, 512, 2048]
        lo, hi = omega_log_constant(ns, "two_partition")
        assert lo > 0.02
        rows = round_bound_table(ns, "two_partition")
        normals = [r.normalized for r in rows]
        assert all(b >= a for a, b in zip(normals, normals[1:]))

    def test_round_bound_grows_logarithmically(self):
        from repro.analysis import fit_logarithmic

        ns = [8, 16, 32, 64, 128, 256]
        bounds = [multicycle_round_bound(n).round_lower_bound for n in ns]
        fit = fit_logarithmic([2 * n for n in ns], bounds)
        assert fit.slope > 0 and fit.r_squared > 0.97

    def test_upper_bound_dominates_lower_bound(self):
        """Tightness sandwich: the measured NeighborExchange round count on
        the reduction instances sits above the Theorem 4.4 bound, and both
        are Theta(log N)."""
        for n in (8, 16, 32):
            lower = multicycle_round_bound(n).round_lower_bound
            upper = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
            assert lower <= upper


class TestTheorem45:
    def test_bound_row(self):
        row = components_round_bound(8, error_rate=1 / 3)
        assert row.information_bound_bits == pytest.approx((2 / 3) * log2_bell(8))
        assert row.bits_per_round == 64
        assert row.round_lower_bound == pytest.approx(
            row.information_bound_bits / 64
        )

    def test_table(self):
        rows = information_bound_table([4, 8, 16])
        assert [r.ground_set for r in rows] == [4, 8, 16]
        assert all(r.round_lower_bound > 0 for r in rows)

    def test_measured_information_of_real_algorithm(self):
        """Run a real KT-1 BCC(1) ConnectedComponents algorithm through the
        Section 4.3 simulation over the whole Theorem 4.5 hard
        distribution, and check the measured mutual information equals
        H(P_A) (the algorithm is correct, so the transcript determines
        P_A)."""
        n = 4
        w = id_bit_width(4 * n)
        rounds = neighbor_exchange_rounds(1, n + 1, w)
        report = measure_bcc_algorithm_information(
            components_factory(n + 1, id_bits=w), n, rounds
        )
        assert report.error_rate == 0.0
        assert report.information == pytest.approx(log2_bell(n), abs=1e-9)
        assert report.chain_holds()

    def test_measured_information_lower_bounds_communication(self):
        """The end-to-end Theorem 4.5 inequality on a real algorithm: the
        protocol's bit cost (rounds * 8n) must be >= measured information."""
        from repro.twoparty import simulation_bits_per_round

        n = 4
        w = id_bit_width(4 * n)
        rounds = neighbor_exchange_rounds(1, n + 1, w)
        report = measure_bcc_algorithm_information(
            components_factory(n + 1, id_bits=w), n, rounds
        )
        protocol_bits = rounds * simulation_bits_per_round("partition", n)
        assert protocol_bits >= report.information
