"""Regression tests: the search timer and the memoized pair tables.

The timer bug this pins down: ``_universal_bound_impl`` used to take its
``start = time.perf_counter()`` timestamp conditionally, so the
``exhaustive.search_seconds`` histogram (and the ``instances_per_sec``
gauge derived from the same ``elapsed``) could silently record garbage
depending on which optional features (metrics / budget / checkpoints)
happened to be enabled. The timestamp is now unconditional; these tests
assert a sane elapsed on every path combination.
"""

import pytest

from repro.lowerbounds import (
    clear_pair_cache,
    covers_and_pairs_for,
    universal_bound_id_oblivious,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import Budget

#: Any honest wall time for an n=4 search; a garbage perf_counter delta
#: (e.g. measured from 0.0) would be in the thousands of seconds.
SANE_SECONDS = 60.0


def _search_seconds(registry: MetricsRegistry) -> float:
    hist = registry.histogram("exhaustive.search_seconds")
    assert hist.count == 1
    return hist.sum


@pytest.mark.parametrize(
    "kwargs",
    [
        {},  # metrics-only path
        {"budget": Budget(max_units=10_000)},  # resilient path
        {"workers": 2, "vectorize": False},  # sharded path
    ],
    ids=["metrics_only", "resilient", "sharded"],
)
def test_search_seconds_is_sane_on_every_path(kwargs):
    registry = MetricsRegistry()
    universal_bound_id_oblivious(4, alphabet=("0", "1"), metrics=registry, **kwargs)
    elapsed = _search_seconds(registry)
    assert 0.0 < elapsed < SANE_SECONDS
    rate = registry.gauge("exhaustive.instances_per_sec").value
    assert 0.0 < rate < float("inf")
    # throughput and elapsed must describe the same run
    enumerated = registry.counter("exhaustive.assignments_enumerated").value
    assert rate == pytest.approx(enumerated / elapsed)


# ----------------------------------------------------------------------
# memoized pair precompute
# ----------------------------------------------------------------------
def test_pair_tables_are_memoized_with_hit_counter():
    clear_pair_cache()
    registry = MetricsRegistry()
    first = covers_and_pairs_for(5, registry)
    assert registry.counter("exhaustive.pair_cache_hits").value == 0
    second = covers_and_pairs_for(5, registry)
    assert second is first  # the cached object, not a recomputation
    assert registry.counter("exhaustive.pair_cache_hits").value == 1
    covers_and_pairs_for(5, registry)
    assert registry.counter("exhaustive.pair_cache_hits").value == 2
    # a different n is a miss, not a hit
    covers_and_pairs_for(4, registry)
    assert registry.counter("exhaustive.pair_cache_hits").value == 2
    clear_pair_cache()


def test_repeat_searches_hit_the_pair_cache():
    clear_pair_cache()
    registry = MetricsRegistry()
    universal_bound_id_oblivious(4, alphabet=("0", "1"), metrics=registry)
    universal_bound_id_oblivious(4, alphabet=("", "0", "1"), metrics=registry)
    # second search reuses the n=4 table: one hit, zero recomputes
    assert registry.counter("exhaustive.pair_cache_hits").value == 1
    clear_pair_cache()


def test_clear_pair_cache_forces_recompute():
    clear_pair_cache()
    registry = MetricsRegistry()
    covers_and_pairs_for(4, registry)
    clear_pair_cache()
    covers_and_pairs_for(4, registry)
    assert registry.counter("exhaustive.pair_cache_hits").value == 0
    clear_pair_cache()
