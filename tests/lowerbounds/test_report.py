"""Tests for the one-call full report."""

import pytest

from repro.lowerbounds import FullReport, full_report
from repro.partitions import log2_bell


class TestFullReport:
    def test_default_report(self):
        report = full_report()
        assert report.star_achieved_error == pytest.approx(0.5)
        assert report.star_pairs_verified
        assert report.forced_error == pytest.approx(0.5)
        assert report.rank_round_bound > 0
        assert report.info_bits == pytest.approx(log2_bell(5))
        assert report.info_chain_holds

    def test_rows_shape(self):
        report = full_report(star_n=12, star_rounds=1, forced_n=6, forced_rounds=1)
        rows = report.rows()
        assert len(rows) == 9
        assert all(len(r) == 3 for r in rows)
        results = {r[0] for r in rows}
        assert results == {"Thm 3.5", "Thm 3.1", "Thm 4.4", "Thm 4.5"}

    def test_cli_all(self, capsys):
        from repro.cli import main

        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Thm 4.5" in out and "inequality chain holds" in out
