"""Tests for the exhaustive (universally quantified) class lower bound."""

import pytest

from repro.instances import CycleCover, enumerate_one_cycle_covers
from repro.lowerbounds import (
    disconnecting_pairs,
    forced_error_of_assignment,
    universal_bound_id_oblivious,
)
from repro.indist import one_cycle_degree


class TestDisconnectingPairs:
    def test_count_matches_degree_formula(self):
        """Disconnecting directed pairs = 2 global orientations of each of
        the n(n-5)/2 unordered consistent pairs."""
        for n in (6, 7, 8):
            cover = next(enumerate_one_cycle_covers(n))
            pairs = disconnecting_pairs(cover)
            assert len(pairs) == 2 * one_cycle_degree(n)

    def test_pairs_actually_disconnect(self):
        from repro.indist import cross_cover

        cover = next(enumerate_one_cycle_covers(7))
        for e1, e2 in disconnecting_pairs(cover):
            crossed = cross_cover(cover, e1, e2)
            assert crossed is not None and crossed.num_cycles == 2


class TestAssignmentError:
    @staticmethod
    def _setup(n):
        return [
            (cover, disconnecting_pairs(cover))
            for cover in enumerate_one_cycle_covers(n)
        ]

    def test_constant_assignment_forced_half(self):
        n = 6
        cps = self._setup(n)
        err = forced_error_of_assignment(n, [""] * n, cps)
        assert err == pytest.approx(0.5)
        err1 = forced_error_of_assignment(n, ["1"] * n, cps)
        assert err1 == pytest.approx(0.5)

    def test_distinct_characters_reduce_error(self):
        n = 6
        cps = self._setup(n)
        mixed = forced_error_of_assignment(n, ["", "", "0", "0", "1", "1"], cps)
        assert mixed < 0.5


class TestUniversalBound:
    def test_n6_every_algorithm_errs(self):
        """The headline: min over all 729 ID-oblivious 1-round algorithms
        of the forced error is strictly positive (measured: 1/30)."""
        report = universal_bound_id_oblivious(6)
        assert report.class_size == 729
        assert report.minimum_forced_error == pytest.approx(1 / 30)
        assert report.minimum_forced_error > 0

    def test_binary_alphabet_is_weaker_for_the_algorithm(self):
        """Restricting algorithms to {0, 1} (no silence) leaves them less
        symmetry-breaking power: the universal bound cannot decrease."""
        full = universal_bound_id_oblivious(6)
        binary = universal_bound_id_oblivious(6, alphabet=("0", "1"))
        assert binary.class_size == 64
        assert binary.minimum_forced_error >= full.minimum_forced_error

    def test_worst_assignment_verified_against_direct_engine(self):
        """The analytic per-assignment error must agree with the
        simulator-based forced-error engine run on the same algorithm."""
        from repro.core import BCC1_KT0, FunctionalAlgorithm, Simulator, YES
        from repro.lowerbounds import forced_error_of_algorithm

        n = 6
        report = universal_bound_id_oblivious(n)
        assignment = report.worst_assignment

        def factory():
            return FunctionalAlgorithm(
                broadcast=lambda self, t: assignment[self.knowledge.vertex_id],
                receive=lambda self, t, m: None,
                output=lambda self: YES,
            )

        engine = forced_error_of_algorithm(Simulator(BCC1_KT0), factory, n, rounds=1)
        # the engine charges the always-YES output rule: its error is the
        # full fooled mass, an upper-bound realization of the same pairs;
        # the analytic bound (best output rule) can only be smaller
        assert report.minimum_forced_error <= engine.forced_error + 1e-9
