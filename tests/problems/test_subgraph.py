"""Tests for K4 detection (the [DKO14] contrast problem)."""

import random

import pytest

from repro.core import BCC1_KT1, NO, YES, BCCInstance, Simulator, decision_of_run
from repro.graphs import Graph, complete_graph, gnp_random_graph, one_cycle
from repro.problems import (
    K4Detection,
    contains_k4,
    dko14_round_lower_bound,
    trivial_upper_bound_rounds,
)


class TestContainsK4:
    def test_k4_itself(self):
        assert contains_k4(complete_graph(4))

    def test_k5_contains_k4(self):
        assert contains_k4(complete_graph(5))

    def test_cycle_does_not(self):
        assert not contains_k4(one_cycle(8))

    def test_k4_minus_edge(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        assert not contains_k4(g)

    def test_planted_k4(self):
        g = one_cycle(10)
        for u in (0, 2, 4, 6):
            for v in (0, 2, 4, 6):
                if u < v:
                    g.add_edge(u, v)
        assert contains_k4(g)

    def test_brute_force_agreement(self):
        from itertools import combinations

        rng = random.Random(5)
        for _ in range(15):
            g = gnp_random_graph(8, 0.45, rng)
            brute = any(
                all(g.has_edge(a, b) for a, b in combinations(quad, 2))
                for quad in combinations(range(8), 4)
            )
            assert contains_k4(g) == brute


class TestProblem:
    problem = K4Detection()

    def test_ground_truth(self):
        assert self.problem.ground_truth(
            BCCInstance.kt1_from_graph(complete_graph(5))
        ) == YES
        assert self.problem.ground_truth(
            BCCInstance.kt1_from_graph(one_cycle(6))
        ) == NO

    def test_solved_by_full_adjacency_exchange(self):
        """The trivial Theta(n) upper bound: reconstruct, check locally."""
        from repro.core import NodeAlgorithm
        from repro.algorithms.flooding import FullAdjacencyExchange

        class K4Solver(FullAdjacencyExchange):
            def output(self):
                if self._edges is None:
                    return YES
                g = Graph(self._order, self._edges)
                return YES if contains_k4(g) else NO

        g = complete_graph(6)
        inst = BCCInstance.kt1_from_graph(g)
        res = Simulator(BCC1_KT1).run_until_done(inst, K4Solver, 7)
        assert decision_of_run(res) == YES
        assert res.rounds_executed == trivial_upper_bound_rounds(6)

        g2 = one_cycle(6)
        res2 = Simulator(BCC1_KT1).run_until_done(
            BCCInstance.kt1_from_graph(g2), K4Solver, 7
        )
        assert decision_of_run(res2) == NO


class TestBoundShapes:
    def test_dko14_shape(self):
        # Omega(n / b): linear in n, inverse in b
        assert dko14_round_lower_bound(100, 1) == pytest.approx(100.0)
        assert dko14_round_lower_bound(100, 10) == pytest.approx(10.0)

    def test_contrast_with_connectivity(self):
        """The paper's framing: K4 detection is polynomially hard in
        BCC(1), Connectivity only logarithmically."""
        import math

        n = 1024
        assert dko14_round_lower_bound(n, 1) > 10 * math.log2(n)
