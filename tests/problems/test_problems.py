"""Tests for problem definitions: promises, ground truth, verification."""

from repro.core import NO, YES, BCCInstance
from repro.graphs import Graph, one_cycle, path_graph, two_cycles
from repro.instances import multi_cycle_instance, one_cycle_instance, two_cycle_instance
from repro.problems import (
    ConnectedComponents,
    Connectivity,
    MultiCycle,
    TwoCycle,
    cycle_lengths,
)


def _inst(graph):
    return BCCInstance.kt0_from_graph(graph)


class TestConnectivity:
    problem = Connectivity()

    def test_promise_always_true(self):
        assert self.problem.promise(_inst(path_graph(5)))
        assert self.problem.promise(_inst(Graph(range(4))))

    def test_ground_truth(self):
        assert self.problem.ground_truth(_inst(one_cycle(5))) == YES
        assert self.problem.ground_truth(_inst(two_cycles(8, 4))) == NO
        assert self.problem.ground_truth(_inst(path_graph(6))) == YES

    def test_verify_correct_outputs(self):
        inst = _inst(one_cycle(4))
        assert self.problem.verify(inst, [YES] * 4)
        assert not self.problem.verify(inst, [YES, YES, NO, YES])

    def test_verify_disconnected(self):
        inst = _inst(two_cycles(8, 4))
        assert self.problem.verify(inst, [NO] * 8)
        # one NO suffices under all-YES semantics
        assert self.problem.verify(inst, [YES] * 7 + [NO])
        assert not self.problem.verify(inst, [YES] * 8)

    def test_verify_rejects_garbage_outputs(self):
        inst = _inst(one_cycle(4))
        assert not self.problem.verify(inst, ["maybe"] * 4)


class TestTwoCycle:
    problem = TwoCycle()

    def test_promise_one_cycle(self):
        assert self.problem.promise(one_cycle_instance(6))

    def test_promise_two_cycles(self):
        assert self.problem.promise(two_cycle_instance(8, 4))

    def test_promise_rejects_three_cycles(self):
        inst = multi_cycle_instance([[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        assert not self.problem.promise(inst)

    def test_promise_rejects_non_2_regular(self):
        assert not self.problem.promise(_inst(path_graph(6)))

    def test_ground_truth(self):
        assert self.problem.ground_truth(one_cycle_instance(6)) == YES
        assert self.problem.ground_truth(two_cycle_instance(8, 4)) == NO


class TestMultiCycle:
    problem = MultiCycle()

    def test_promise_one_cycle(self):
        assert self.problem.promise(one_cycle_instance(5))

    def test_promise_many_long_cycles(self):
        inst = multi_cycle_instance([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]])
        assert self.problem.promise(inst)

    def test_promise_rejects_short_cycles(self):
        inst = multi_cycle_instance([[0, 1, 2], [3, 4, 5, 6]])
        assert not self.problem.promise(inst)

    def test_ground_truth(self):
        inst = multi_cycle_instance([[0, 1, 2, 3], [4, 5, 6, 7]])
        assert self.problem.ground_truth(inst) == NO


class TestConnectedComponents:
    problem = ConnectedComponents()

    def test_verify_canonical_labels(self):
        inst = _inst(two_cycles(8, 4))
        labels = [0, 0, 0, 0, 4, 4, 4, 4]
        assert self.problem.verify(inst, labels)

    def test_verify_arbitrary_labels(self):
        inst = _inst(two_cycles(8, 4))
        labels = ["a"] * 4 + ["b"] * 4
        assert self.problem.verify(inst, labels)

    def test_verify_rejects_merged(self):
        inst = _inst(two_cycles(8, 4))
        assert not self.problem.verify(inst, ["x"] * 8)

    def test_verify_rejects_split(self):
        inst = _inst(one_cycle(6))
        assert not self.problem.verify(inst, [0, 0, 0, 1, 1, 1])


class TestCycleLengths:
    def test_lengths(self):
        assert cycle_lengths(two_cycles(9, 4)) == [4, 5]
        assert cycle_lengths(one_cycle(7)) == [7]
