"""Tests for the neighborhood-exchange upper bound (the tightness algorithm)."""

import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, NO, YES, BCCInstance, Simulator, decision_of_run
from repro.algorithms import (
    components_factory,
    connectivity_factory,
    id_bit_width,
    neighbor_exchange_rounds,
)
from repro.graphs import labels_agree_with_components, random_forest
from repro.instances import (
    multi_cycle_instance,
    one_cycle_instance,
    random_multi_cycle_instance,
    random_one_cycle_instance,
    two_cycle_instance,
)
from repro.problems import Connectivity, TwoCycle

SIM0 = Simulator(BCC1_KT0)
SIM1 = Simulator(BCC1_KT1)


class TestCorrectnessOnCycles:
    @pytest.mark.parametrize("kt", [0, 1])
    @pytest.mark.parametrize("n", [6, 9, 13])
    def test_one_cycle_yes(self, kt, n):
        sim = SIM0 if kt == 0 else SIM1
        inst = one_cycle_instance(n, kt=kt)
        res = sim.run_until_done(inst, connectivity_factory(2), 300)
        assert decision_of_run(res) == YES

    @pytest.mark.parametrize("kt", [0, 1])
    def test_two_cycle_no(self, kt):
        sim = SIM0 if kt == 0 else SIM1
        inst = two_cycle_instance(11, 5, kt=kt)
        res = sim.run_until_done(inst, connectivity_factory(2), 300)
        assert decision_of_run(res) == NO

    @pytest.mark.parametrize("kt", [0, 1])
    def test_random_instances(self, kt):
        rng = random.Random(42)
        sim = SIM0 if kt == 0 else SIM1
        problem = Connectivity()
        for _ in range(5):
            inst = random_one_cycle_instance(10, kt, rng, shuffle_ports=(kt == 0))
            res = sim.run_until_done(inst, connectivity_factory(2), 300)
            assert problem.verify(inst, res.outputs)
        for k in (2, 3):
            inst = random_multi_cycle_instance(12, k, kt, rng)
            res = sim.run_until_done(inst, connectivity_factory(2), 300)
            assert problem.verify(inst, res.outputs)

    def test_components_labels_valid(self):
        inst = multi_cycle_instance([[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]], kt=1)
        res = SIM1.run_until_done(inst, components_factory(2), 300)
        labels = {v: res.outputs[v] for v in range(10)}
        assert labels_agree_with_components(inst.input_graph(), labels)

    def test_components_use_min_id(self):
        inst = two_cycle_instance(8, 4, kt=1, ids=[10, 11, 12, 13, 20, 21, 22, 23])
        res = SIM1.run_until_done(inst, components_factory(2), 300)
        assert set(res.outputs) == {10, 20}


class TestRoundComplexity:
    def test_kt1_round_count(self):
        n = 16
        inst = one_cycle_instance(n, kt=1)
        res = SIM1.run_until_done(inst, connectivity_factory(2), 300)
        w = id_bit_width(n - 1)
        assert res.rounds_executed == neighbor_exchange_rounds(1, 2, w) == 2 * w

    def test_kt0_round_count(self):
        n = 16
        inst = one_cycle_instance(n, kt=0)
        res = SIM0.run_until_done(inst, connectivity_factory(2), 300)
        w = id_bit_width(4 * n - 1)
        assert res.rounds_executed == neighbor_exchange_rounds(0, 2, w) == 3 * w

    def test_rounds_are_theta_log_n(self):
        """The measured upper-bound curve is Theta(log n) -- tightness."""
        from repro.analysis import fit_logarithmic

        ns = [8, 16, 32, 64, 128]
        measured = []
        for n in ns:
            inst = one_cycle_instance(n, kt=1)
            res = SIM1.run_until_done(inst, connectivity_factory(2), 10_000)
            measured.append(res.rounds_executed)
        fit = fit_logarithmic(ns, measured)
        assert fit.slope > 0
        assert fit.r_squared > 0.9


class TestHigherDegree:
    def test_forest_with_degree_bound(self):
        rng = random.Random(3)
        g = random_forest(12, 2, rng)
        delta = g.max_degree()
        inst = BCCInstance.kt1_from_graph(g)
        res = SIM1.run_until_done(inst, connectivity_factory(delta), 2000)
        assert decision_of_run(res) == NO  # 2 trees

    def test_bad_max_degree_param(self):
        with pytest.raises(ValueError):
            connectivity_factory(0)()


class TestTruncation:
    def test_truncated_run_outputs_guess(self):
        inst = one_cycle_instance(10, kt=0)
        res = SIM0.run(inst, connectivity_factory(2), 2)
        assert all(out in (YES, NO) for out in res.outputs)

    def test_truncated_components_output_own_id(self):
        inst = one_cycle_instance(6, kt=1)
        res = SIM1.run(inst, components_factory(2), 1)
        assert res.outputs == tuple(range(6))


class TestTwoCyclePromiseProblem:
    def test_solves_two_cycle_problem(self):
        problem = TwoCycle()
        for inst in (one_cycle_instance(12, kt=0), two_cycle_instance(12, 5, kt=0)):
            assert problem.promise(inst)
            res = SIM0.run_until_done(inst, connectivity_factory(2), 300)
            assert problem.verify(inst, res.outputs)
