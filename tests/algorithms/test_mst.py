"""Tests for the distributed Boruvka MST in BCC(Theta(log n))."""

import random

import pytest

from repro.core import BCCInstance, BCCModel, Simulator
from repro.algorithms import boruvka_mst_factory, mst_bandwidth, mst_max_rounds
from repro.graphs import (
    gnp_random_graph,
    is_spanning_forest,
    kruskal,
    one_cycle,
    random_weights,
    two_cycles,
)


def _run_mst(graph, weights, n):
    inst = BCCInstance.kt1_from_graph(graph)
    sim = Simulator(BCCModel(bandwidth=mst_bandwidth(n), kt=1))
    return sim.run_until_done(
        inst, boruvka_mst_factory(weights), mst_max_rounds(n) + 2
    )


def _int_weights(graph, rng):
    return {e: int(w) for e, w in random_weights(graph, rng).items()}


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_kruskal_on_random_graphs(self, seed):
        rng = random.Random(seed)
        n = 11
        g = gnp_random_graph(n, 0.35, rng)
        weights = _int_weights(g, rng)
        res = _run_mst(g, weights, n)
        truth = kruskal(g, {e: float(w) for e, w in weights.items()})
        assert set(res.outputs[0]) == truth

    def test_all_vertices_agree(self):
        rng = random.Random(7)
        n = 10
        g = gnp_random_graph(n, 0.4, rng)
        res = _run_mst(g, _int_weights(g, rng), n)
        assert len(set(res.outputs)) == 1

    def test_cycle_drops_heaviest_edge(self):
        n = 8
        g = one_cycle(n)
        weights = {e: i for i, e in enumerate(sorted((min(u, v), max(u, v)) for u, v in g.edges()))}
        res = _run_mst(g, weights, n)
        forest = set(res.outputs[0])
        heaviest = max(weights, key=lambda e: weights[e])
        assert heaviest not in forest
        assert len(forest) == n - 1

    def test_disconnected_input_gives_forest(self):
        n = 10
        g = two_cycles(n, 4)
        rng = random.Random(3)
        weights = _int_weights(g, rng)
        res = _run_mst(g, weights, n)
        forest = set(res.outputs[0])
        assert len(forest) == n - 2
        assert is_spanning_forest(g, forest)

    def test_ties_broken_consistently(self):
        """All-equal weights: the distributed tie-break (weight, lo, hi)
        must match Kruskal's (weight, edge) order exactly."""
        n = 9
        g = gnp_random_graph(n, 0.5, random.Random(5))
        weights = {(min(u, v), max(u, v)): 1 for u, v in g.edges()}
        res = _run_mst(g, weights, n)
        truth = kruskal(g, {e: 1.0 for e in weights})
        assert set(res.outputs[0]) == truth

    def test_empty_graph(self):
        from repro.graphs import empty_graph

        n = 6
        res = _run_mst(empty_graph(n), {}, n)
        assert set(res.outputs[0]) == set()


class TestComplexityAndContracts:
    def test_logarithmic_phases(self):
        n = 32
        g = one_cycle(n)
        res = _run_mst(g, _int_weights(g, random.Random(1)), n)
        assert res.rounds_executed <= mst_max_rounds(n) + 1

    def test_bandwidth_requirement(self):
        n = 8
        g = one_cycle(n)
        weights = _int_weights(g, random.Random(2))
        inst = BCCInstance.kt1_from_graph(g)
        with pytest.raises(ValueError):
            Simulator(BCCModel(bandwidth=4, kt=1)).run(
                inst, boruvka_mst_factory(weights), 3
            )

    def test_requires_kt1(self):
        from repro.core import BCC1_KT0
        from repro.instances import one_cycle_instance

        with pytest.raises(ValueError):
            Simulator(BCC1_KT0).run(
                one_cycle_instance(6, kt=0), boruvka_mst_factory({}), 2
            )

    def test_missing_weight_rejected(self):
        n = 6
        g = one_cycle(n)
        inst = BCCInstance.kt1_from_graph(g)
        with pytest.raises(ValueError):
            Simulator(BCCModel(bandwidth=mst_bandwidth(n), kt=1)).run(
                inst, boruvka_mst_factory({(0, 1): 3}), 2
            )
