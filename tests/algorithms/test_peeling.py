"""Tests for the bounded-arboricity peeling exchange."""

import math
import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, NO, YES, BCCInstance, Simulator, decision_of_run
from repro.algorithms import (
    peeling_components_factory,
    peeling_connectivity_factory,
    peeling_round_budget,
)
from repro.graphs import (
    Graph,
    bounded_arboricity_graph,
    labels_agree_with_components,
    one_cycle,
    random_forest,
    two_cycles,
)
from repro.instances import one_cycle_instance
from repro.problems import ConnectedComponents

SIM1 = Simulator(BCC1_KT1)


def _run(graph, factory, n, a):
    inst = BCCInstance.kt1_from_graph(graph)
    return inst, SIM1.run_until_done(inst, factory, peeling_round_budget(n, a))


class TestCorrectness:
    def test_connected_forest(self):
        g = random_forest(15, 1, random.Random(2))
        _inst, res = _run(g, peeling_connectivity_factory(1), 15, 1)
        assert decision_of_run(res) == YES

    def test_disconnected_forest(self):
        g = random_forest(15, 3, random.Random(2))
        _inst, res = _run(g, peeling_connectivity_factory(1), 15, 1)
        assert decision_of_run(res) == NO

    def test_cycles(self):
        for g, expected in [(one_cycle(14), YES), (two_cycles(14, 6), NO)]:
            _inst, res = _run(g, peeling_connectivity_factory(2), 14, 2)
            assert decision_of_run(res) == expected

    def test_star_graph_high_degree_hub(self):
        """Arboricity 1, maximum degree n - 1: the regime NeighborExchange
        cannot handle cheaply but peeling can -- the hub peels last, its
        edges all announced by the leaves."""
        n = 16
        star = Graph(range(n), [(0, i) for i in range(1, n)])
        _inst, res = _run(star, peeling_connectivity_factory(1), n, 1)
        assert decision_of_run(res) == YES

    def test_components_on_bounded_arboricity(self):
        rng = random.Random(7)
        problem = ConnectedComponents()
        for _ in range(4):
            g = bounded_arboricity_graph(16, 2, rng)
            inst, res = _run(g, peeling_components_factory(2), 16, 2)
            assert problem.verify(inst, res.outputs)

    def test_empty_graph(self):
        from repro.graphs import empty_graph

        n = 8
        _inst, res = _run(empty_graph(n), peeling_components_factory(1), n, 1)
        assert res.outputs == tuple(range(n))

    def test_labels_are_min_ids(self):
        g = two_cycles(10, 4)
        _inst, res = _run(g, peeling_components_factory(2), 10, 2)
        assert set(res.outputs) == {0, 4}


class TestComplexity:
    def test_rounds_within_budget(self):
        for n in (8, 32, 64):
            g = random_forest(n, 1, random.Random(n))
            _inst, res = _run(g, peeling_connectivity_factory(1), n, 1)
            assert res.rounds_executed <= peeling_round_budget(n, 1)

    def test_polylog_scaling(self):
        """Measured rounds grow polylogarithmically (phases x 4aW)."""
        measured = []
        ns = [8, 32, 128]
        for n in ns:
            g = one_cycle(n)
            _inst, res = _run(g, peeling_components_factory(2), n, 2)
            measured.append(res.rounds_executed)
        # crude polylog check: doubling log n should not double rounds 4x
        for n, r in zip(ns, measured):
            assert r <= 3 * (math.log2(n) + 2) * (1 + 8 * math.ceil(math.log2(n)))

    def test_budget_formula(self):
        assert peeling_round_budget(16, 1) == (4 + 2) * (1 + 4 * 4)


class TestValidation:
    def test_requires_kt1(self):
        inst = one_cycle_instance(8, kt=0)
        with pytest.raises(ValueError):
            Simulator(BCC1_KT0).run(inst, peeling_connectivity_factory(2), 5)

    def test_bad_arboricity(self):
        with pytest.raises(ValueError):
            peeling_connectivity_factory(0)()

    def test_truncated_outputs_guess(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(10))
        res = SIM1.run(inst, peeling_connectivity_factory(2), 2)
        assert all(out in (YES, NO) for out in res.outputs)
        res2 = SIM1.run(inst, peeling_components_factory(2), 2)
        assert res2.outputs == tuple(range(10))
