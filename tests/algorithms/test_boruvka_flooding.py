"""Tests for Boruvka (BCC(log n)) and the full-adjacency baseline."""

import math
import random

import pytest

from repro.core import (
    BCC1_KT1,
    NO,
    YES,
    BCCInstance,
    BCCModel,
    Simulator,
    decision_of_run,
)
from repro.algorithms import (
    boruvka_connectivity_factory,
    boruvka_factory,
    boruvka_max_rounds,
    full_adjacency_components_factory,
    full_adjacency_connectivity_factory,
)
from repro.graphs import component_labels, gnp_random_graph, labels_agree_with_components
from repro.instances import one_cycle_instance, random_multi_cycle_instance, two_cycle_instance
from repro.problems import ConnectedComponents

SIM1 = Simulator(BCC1_KT1)


def _sim_for(n):
    return Simulator(BCCModel(bandwidth=max(1, math.ceil(math.log2(n))), kt=1))


class TestBoruvka:
    def test_one_cycle(self):
        n = 16
        sim = _sim_for(n)
        res = sim.run_until_done(one_cycle_instance(n, kt=1), boruvka_factory(), boruvka_max_rounds(n))
        assert set(res.outputs) == {0}

    def test_two_cycles(self):
        n = 16
        sim = _sim_for(n)
        res = sim.run_until_done(two_cycle_instance(n, 7, kt=1), boruvka_factory(), boruvka_max_rounds(n))
        assert set(res.outputs) == {0, 7}

    def test_random_graphs_match_ground_truth(self):
        rng = random.Random(11)
        problem = ConnectedComponents()
        for _ in range(5):
            g = gnp_random_graph(12, 0.15, rng)
            inst = BCCInstance.kt1_from_graph(g)
            sim = _sim_for(12)
            res = sim.run_until_done(inst, boruvka_factory(), boruvka_max_rounds(12))
            assert problem.verify(inst, res.outputs)

    def test_logarithmic_rounds(self):
        for n in (8, 32, 128):
            sim = _sim_for(n)
            res = sim.run_until_done(
                one_cycle_instance(n, kt=1), boruvka_factory(), boruvka_max_rounds(n)
            )
            assert res.rounds_executed <= boruvka_max_rounds(n)
            # a path-shaped merge still needs at least a couple of phases
            assert res.rounds_executed >= 4

    def test_connectivity_variant(self):
        n = 12
        sim = _sim_for(n)
        res = sim.run_until_done(
            one_cycle_instance(n, kt=1), boruvka_connectivity_factory(), boruvka_max_rounds(n)
        )
        assert decision_of_run(res) == YES
        res2 = sim.run_until_done(
            two_cycle_instance(n, 5, kt=1), boruvka_connectivity_factory(), boruvka_max_rounds(n)
        )
        assert decision_of_run(res2) == NO

    def test_requires_bandwidth(self):
        inst = one_cycle_instance(16, kt=1)
        with pytest.raises(ValueError):
            SIM1.run(inst, boruvka_factory(), 4)  # b = 1 < ID width

    def test_requires_kt1(self):
        from repro.core import BCC1_KT0

        inst = one_cycle_instance(8, kt=0)
        with pytest.raises(ValueError):
            Simulator(BCC1_KT0).run(inst, boruvka_factory(), 4)

    def test_empty_graph_all_singletons(self):
        from repro.graphs import empty_graph

        n = 8
        inst = BCCInstance.kt1_from_graph(empty_graph(n))
        sim = _sim_for(n)
        res = sim.run_until_done(inst, boruvka_factory(), boruvka_max_rounds(n))
        assert res.outputs == tuple(range(n))


class TestFullAdjacency:
    def test_exactly_n_rounds(self):
        n = 14
        res = SIM1.run_until_done(
            one_cycle_instance(n, kt=1), full_adjacency_connectivity_factory(), n + 1
        )
        assert res.rounds_executed == n
        assert decision_of_run(res) == YES

    def test_components_on_random_graph(self):
        rng = random.Random(5)
        g = gnp_random_graph(10, 0.12, rng)
        inst = BCCInstance.kt1_from_graph(g)
        res = SIM1.run_until_done(inst, full_adjacency_components_factory(), 11)
        labels = {v: res.outputs[v] for v in range(10)}
        assert labels_agree_with_components(g, labels)

    def test_multi_cycle(self):
        rng = random.Random(9)
        inst = random_multi_cycle_instance(12, 3, kt=1, rng=rng)
        res = SIM1.run_until_done(inst, full_adjacency_connectivity_factory(), 13)
        assert decision_of_run(res) == NO

    def test_agrees_with_ground_truth_labels(self):
        rng = random.Random(13)
        g = gnp_random_graph(9, 0.2, rng)
        inst = BCCInstance.kt1_from_graph(g)
        res = SIM1.run_until_done(inst, full_adjacency_components_factory(), 10)
        truth = component_labels(g)
        assert {v: res.outputs[v] for v in range(9)} == truth
