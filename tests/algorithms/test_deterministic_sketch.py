"""Tests for the [MT16]-style deterministic syndrome-sketch algorithm."""

import random

import pytest

from repro.core import BCC1_KT0, BCC1_KT1, NO, YES, BCCInstance, Simulator, decision_of_run
from repro.algorithms import (
    NeighborhoodSketch,
    berlekamp_massey,
    mt16_components_factory,
    mt16_connectivity_factory,
    mt16_rounds,
    peel_sketches,
)
from repro.algorithms.deterministic_sketch import PRIME
from repro.graphs import (
    Graph,
    bounded_arboricity_graph,
    labels_agree_with_components,
    one_cycle,
    random_forest,
    two_cycles,
)
from repro.problems import ConnectedComponents

SIM1 = Simulator(BCC1_KT1)


class TestBerlekampMassey:
    def test_fibonacci(self):
        # s_n = s_{n-1} + s_{n-2}: connection poly 1 - x - x^2
        seq = [1, 1, 2, 3, 5, 8, 13, 21]
        c = berlekamp_massey(seq)
        assert len(c) == 3
        assert c[0] == 1
        assert c[1] == PRIME - 1 and c[2] == PRIME - 1

    def test_constant_sequence(self):
        c = berlekamp_massey([7, 7, 7, 7])
        assert len(c) == 2  # s_n = s_{n-1}

    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0]) == [1]


class TestNeighborhoodSketch:
    def test_exact_decode(self):
        ids = list(range(30))
        for support in ([], [5], [0, 29], [1, 2, 3, 4]):
            s = NeighborhoodSketch.of_neighborhood(support, d=4)
            assert s.decode(ids) == sorted(support)

    def test_oversized_support_refused(self):
        ids = list(range(30))
        s = NeighborhoodSketch.of_neighborhood(list(range(5)), d=4)
        assert s.decode(ids) is None

    def test_linearity(self):
        s = NeighborhoodSketch.of_neighborhood([2, 9, 14], d=3)
        s.remove_point(9)
        assert s.decode(list(range(20))) == [2, 14]
        s.remove_point(2)
        s.remove_point(14)
        assert s.is_empty()

    def test_count(self):
        s = NeighborhoodSketch.of_neighborhood([1, 3, 5], d=4)
        assert s.count == 3

    def test_bit_round_trip(self):
        s = NeighborhoodSketch.of_neighborhood([0, 7, 11], d=4)
        t = NeighborhoodSketch.decode_bits(s.encode_bits(), 4)
        assert t.syndromes == s.syndromes

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            NeighborhoodSketch.decode_bits("01", 4)


class TestPeeling:
    def test_recovers_a_path(self):
        nbrs = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        sketches = {v: NeighborhoodSketch.of_neighborhood(n, 4) for v, n in nbrs.items()}
        edges = peel_sketches(sketches, [0, 1, 2, 3], 4)
        assert edges == {(0, 1), (1, 2), (2, 3)}

    def test_hub_peeled_via_linearity(self):
        """A hub of degree 9 with d = 4 cannot be decoded directly; the
        leaves decode first and subtraction empties the hub's sketch."""
        n = 10
        nbrs = {0: list(range(1, n))}
        for i in range(1, n):
            nbrs[i] = [0]
        sketches = {v: NeighborhoodSketch.of_neighborhood(nb, 4) for v, nb in nbrs.items()}
        edges = peel_sketches(sketches, list(range(n)), 4)
        assert edges == {(0, i) for i in range(1, n)}

    def test_dense_graph_fails_gracefully(self):
        from repro.graphs import complete_graph

        g = complete_graph(12)  # arboricity 6 > d/4 = 1
        sketches = {
            v: NeighborhoodSketch.of_neighborhood(sorted(g.neighbors(v)), 4)
            for v in range(12)
        }
        assert peel_sketches(sketches, list(range(12)), 4) is None


class TestAlgorithm:
    @pytest.mark.parametrize(
        "builder,a,expected",
        [
            (lambda: one_cycle(14), 2, YES),
            (lambda: two_cycles(14, 6), 2, NO),
            (lambda: random_forest(15, 1, random.Random(1)), 1, YES),
            (lambda: random_forest(15, 3, random.Random(2)), 1, NO),
        ],
    )
    def test_connectivity(self, builder, a, expected):
        inst = BCCInstance.kt1_from_graph(builder())
        res = SIM1.run_until_done(inst, mt16_connectivity_factory(a), mt16_rounds(a) + 1)
        assert decision_of_run(res) == expected
        assert res.rounds_executed == mt16_rounds(a)

    def test_star_graph(self):
        n = 20
        star = Graph(range(n), [(0, i) for i in range(1, n)])
        inst = BCCInstance.kt1_from_graph(star)
        res = SIM1.run_until_done(inst, mt16_connectivity_factory(1), mt16_rounds(1) + 1)
        assert decision_of_run(res) == YES

    def test_components(self):
        problem = ConnectedComponents()
        rng = random.Random(9)
        for _ in range(3):
            g = bounded_arboricity_graph(14, 2, rng)
            inst = BCCInstance.kt1_from_graph(g)
            res = SIM1.run_until_done(
                inst, mt16_components_factory(2), mt16_rounds(2) + 1
            )
            assert problem.verify(inst, res.outputs)

    def test_round_count_independent_of_n(self):
        """One fixed-size burst: the round count is (8a + 1) * 31 / b,
        independent of n (the field covers IDs up to ~46000)."""
        for n in (8, 20, 40):
            inst = BCCInstance.kt1_from_graph(one_cycle(n))
            res = SIM1.run_until_done(
                inst, mt16_connectivity_factory(2), mt16_rounds(2) + 1
            )
            assert res.rounds_executed == mt16_rounds(2) == 527

    def test_beats_neighbor_exchange_constant(self):
        """Both are Theta(log n)-class; the sketch burst is a fixed 527
        rounds while full-adjacency is n -- crossover near n = 527."""
        assert mt16_rounds(2) == 527

    def test_requires_kt1(self):
        from repro.instances import one_cycle_instance

        with pytest.raises(ValueError):
            Simulator(BCC1_KT0).run(
                one_cycle_instance(8, kt=0), mt16_connectivity_factory(2), 5
            )

    def test_bad_arboricity(self):
        with pytest.raises(ValueError):
            mt16_connectivity_factory(0)()

    def test_violated_promise_fails_closed(self):
        """On a graph violating the arboricity bound the peeling stalls;
        the algorithm finishes in the 'failed' state and outputs a guess
        rather than wrong-but-confident garbage."""
        from repro.graphs import complete_graph

        inst = BCCInstance.kt1_from_graph(complete_graph(10))
        res = SIM1.run_until_done(inst, mt16_connectivity_factory(1), mt16_rounds(1) + 1)
        assert decision_of_run(res) in (YES, NO)
