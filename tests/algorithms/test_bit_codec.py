"""Tests for bit serialization helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    ChunkAssembler,
    decode_fixed,
    encode_fixed,
    id_bit_width,
    pack_symbols,
    rounds_needed,
    schedule_bits,
    unpack_symbols,
)


class TestFixedWidth:
    def test_round_trip(self):
        assert decode_fixed(encode_fixed(13, 6)) == 13

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            encode_fixed(16, 4)
        with pytest.raises(ValueError):
            encode_fixed(-1, 4)

    def test_leading_zeros(self):
        assert encode_fixed(1, 5) == "00001"

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_fixed("01x")
        with pytest.raises(ValueError):
            decode_fixed("")

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, v):
        assert decode_fixed(encode_fixed(v, 16)) == v


class TestIdWidth:
    def test_values(self):
        assert id_bit_width(0) == 1
        assert id_bit_width(1) == 1
        assert id_bit_width(2) == 2
        assert id_bit_width(255) == 8
        assert id_bit_width(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            id_bit_width(-1)


class TestScheduling:
    def test_schedule_chunks(self):
        payload = "110010"
        assert schedule_bits(payload, 2, 1) == "11"
        assert schedule_bits(payload, 2, 3) == "10"
        assert schedule_bits(payload, 2, 4) == ""

    def test_single_bit_pacing(self):
        payload = "101"
        chars = [schedule_bits(payload, 1, t) for t in range(1, 6)]
        assert chars == ["1", "0", "1", "", ""]

    def test_rounds_needed(self):
        assert rounds_needed(0, 4) == 0
        assert rounds_needed(7, 4) == 2
        assert rounds_needed(8, 4) == 2
        assert rounds_needed(9, 4) == 3

    def test_assembler(self):
        asm = ChunkAssembler(6)
        for chunk in ("11", "00", ""):
            asm.feed(chunk)
        assert not asm.complete()
        asm.feed("10")
        assert asm.complete()
        assert asm.value() == int("110010", 2)

    def test_assembler_incomplete_raises(self):
        asm = ChunkAssembler(4)
        asm.feed("01")
        with pytest.raises(ValueError):
            asm.value()


class TestSymbolPacking:
    def test_round_trip(self):
        symbols = ["", "0", "1", "1", "", "0"]
        bits = pack_symbols(symbols)
        assert len(bits) == 12
        assert unpack_symbols(bits, 6) == symbols

    def test_silence_distinct_from_zero(self):
        assert pack_symbols([""]) != pack_symbols(["0"])

    def test_bad_symbol(self):
        with pytest.raises(ValueError):
            pack_symbols(["x"])

    def test_bad_length(self):
        with pytest.raises(ValueError):
            unpack_symbols("000", 2)

    def test_bad_code(self):
        with pytest.raises(ValueError):
            unpack_symbols("01", 1)

    @given(st.lists(st.sampled_from(["", "0", "1"]), min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, symbols):
        assert unpack_symbols(pack_symbols(symbols), len(symbols)) == symbols
