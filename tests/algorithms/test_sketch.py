"""Tests for the AGM linear-sketch connectivity algorithm."""

import random

import pytest

from repro.core import BCCInstance, BCCModel, NO, YES, PublicCoin, Simulator, decision_of_run
from repro.algorithms import (
    AGMSketchComponents,
    SketchSpec,
    agm_components_factory,
    agm_connectivity_factory,
    agm_total_rounds,
    coordinate_to_edge,
    edge_coordinate,
)
from repro.graphs import gnp_random_graph, labels_agree_with_components, one_cycle, two_cycles
from repro.problems import ConnectedComponents

SIM32 = Simulator(BCCModel(bandwidth=32, kt=1))


class TestEdgeCoordinates:
    def test_round_trip(self):
        n = 10
        coord = 0
        for j in range(1, n):
            for i in range(j):
                assert edge_coordinate(i, j, n) == coord
                assert coordinate_to_edge(coord, n) == (i, j)
                coord += 1

    def test_rejects_bad_pairs(self):
        with pytest.raises(ValueError):
            edge_coordinate(3, 3, 10)
        with pytest.raises(ValueError):
            edge_coordinate(5, 2, 10)


class TestSketchSpec:
    def test_single_coordinate_recovery(self):
        spec = SketchSpec(PublicCoin("t"), phase=0, n=8)
        sketch = spec.empty_sketch()
        coord = edge_coordinate(2, 5, 8)
        spec.add_coordinate(sketch, coord, 1)
        assert spec.recover(sketch) == (coord, 1)

    def test_negative_sign_recovery(self):
        spec = SketchSpec(PublicCoin("t"), phase=0, n=8)
        sketch = spec.empty_sketch()
        coord = edge_coordinate(0, 3, 8)
        spec.add_coordinate(sketch, coord, -1)
        assert spec.recover(sketch) == (coord, -1)

    def test_cancellation(self):
        """Adding the same coordinate with both signs cancels exactly --
        the linearity that makes component-summing work."""
        spec = SketchSpec(PublicCoin("t"), phase=0, n=8)
        a = spec.empty_sketch()
        b = spec.empty_sketch()
        coord = edge_coordinate(1, 4, 8)
        spec.add_coordinate(a, coord, 1)
        spec.add_coordinate(b, coord, -1)
        combined = spec.combine(a, b)
        assert all(entry == [0, 0, 0] for entry in combined)

    def test_combine_is_entrywise_sum(self):
        spec = SketchSpec(PublicCoin("t"), phase=0, n=6)
        a, b = spec.empty_sketch(), spec.empty_sketch()
        spec.add_coordinate(a, 0, 1)
        spec.add_coordinate(b, 5, 1)
        c = spec.combine(a, b)
        d = spec.empty_sketch()
        spec.add_coordinate(d, 0, 1)
        spec.add_coordinate(d, 5, 1)
        assert c == d

    def test_encode_decode_round_trip(self):
        spec = SketchSpec(PublicCoin("t"), phase=3, n=8)
        sketch = spec.empty_sketch()
        for coord in (0, 7, 19):
            spec.add_coordinate(sketch, coord, 1)
        assert spec.decode(spec.encode(sketch)) == sketch

    def test_dense_sum_usually_recovers_something(self):
        """With geometric levels, a multi-coordinate sum usually has a
        1-sparse level; verify recovery returns a genuine coordinate."""
        spec = SketchSpec(PublicCoin("dense"), phase=0, n=10)
        sketch = spec.empty_sketch()
        coords = [edge_coordinate(0, j, 10) for j in range(1, 8)]
        for c in coords:
            spec.add_coordinate(sketch, c, 1)
        recovered = spec.recover(sketch)
        if recovered is not None:
            assert recovered[0] in coords

    def test_specs_shared_across_nodes(self):
        a = SketchSpec(PublicCoin("seed"), phase=2, n=12)
        b = SketchSpec(PublicCoin("seed"), phase=2, n=12)
        assert a.base == b.base
        assert [a.level_of(c) for c in range(30)] == [b.level_of(c) for c in range(30)]


class TestAGMAlgorithm:
    def test_cycle_connected(self):
        inst = BCCInstance.kt1_from_graph(one_cycle(10))
        res = SIM32.run_until_done(
            inst, agm_connectivity_factory(), 1000, coin=PublicCoin("agm1")
        )
        assert decision_of_run(res) == YES

    def test_two_cycles_disconnected(self):
        inst = BCCInstance.kt1_from_graph(two_cycles(12, 5))
        res = SIM32.run_until_done(
            inst, agm_connectivity_factory(), 1000, coin=PublicCoin("agm2")
        )
        assert decision_of_run(res) == NO

    def test_random_graphs(self):
        rng = random.Random(23)
        problem = ConnectedComponents()
        for i in range(4):
            g = gnp_random_graph(9, 0.25, rng)
            inst = BCCInstance.kt1_from_graph(g)
            res = SIM32.run_until_done(
                inst, agm_components_factory(), 1000, coin=PublicCoin(f"agm-{i}")
            )
            assert problem.verify(inst, res.outputs)

    def test_round_count_matches_closed_form(self):
        n = 10
        inst = BCCInstance.kt1_from_graph(one_cycle(n))
        res = SIM32.run_until_done(
            inst, agm_components_factory(), 1000, coin=PublicCoin("agm3")
        )
        assert res.rounds_executed == agm_total_rounds(n, 32)

    def test_requires_kt1(self):
        from repro.core import BCC1_KT0
        from repro.instances import one_cycle_instance

        with pytest.raises(ValueError):
            Simulator(BCC1_KT0).run(one_cycle_instance(8, kt=0), agm_components_factory(), 4)

    def test_rounds_scale_inverse_with_bandwidth(self):
        assert agm_total_rounds(16, 64) < agm_total_rounds(16, 8)
